PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke ci clean-cache

# Tier-1 suite (the correctness gate).
test:
	$(PYTHON) -m pytest -x -q

# Tiny parallel sweep: serial vs parallel equivalence + warm-cache rerun.
smoke:
	$(PYTHON) -m repro.exec.smoke

# What CI runs.
ci: test smoke

clean-cache:
	rm -rf benchmarks/results/.cache .repro-cache
