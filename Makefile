PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint typecheck smoke obs-smoke serve-smoke fabric-smoke check bench-engine coverage-check cov-mitigations ci clean-cache

# Tier-1 suite (the correctness gate).
test:
	$(PYTHON) -m pytest -x -q

# Static invariant linter: determinism / rng / env-knob / async /
# telemetry contracts (see docs/static-analysis.md). Zero findings
# outside lint-baseline.json is the gate.
lint:
	$(PYTHON) -m repro.lint

# Optional static type/flake pass; skips cleanly when neither mypy nor
# pyflakes is installed (optional tooling, not a dep — same pattern as
# coverage-check).
typecheck:
	@if $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('mypy') is None)"; then \
		$(PYTHON) -m mypy --ignore-missing-imports src/repro; \
	elif $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('pyflakes') is None)"; then \
		$(PYTHON) -m pyflakes src/repro; \
	else \
		echo "mypy/pyflakes not installed; skipping typecheck"; \
	fi

# Tiny parallel sweep: serial vs parallel equivalence + warm-cache rerun.
smoke:
	$(PYTHON) -m repro.exec.smoke

# Observability layer: tracing demo + stats-snapshot determinism check.
obs-smoke:
	$(PYTHON) examples/tracing_demo.py
	$(PYTHON) -m repro.obs.selfcheck

# Simulation service: boots the daemon, drives three concurrent
# clients (dedup + bit-identical vs serial), then SIGTERM + restart
# resuming the journaled queue (see docs/serving.md).
serve-smoke:
	$(PYTHON) -m repro.serve.smoke

# Multi-node campaign fabric: three serve nodes sharing a remote
# result tier — sharded sweep bit-identical to serial with zero
# duplicate simulations under forced hedging, warm read-through rerun,
# and SIGKILL node-loss failover (see docs/fabric.md).
fabric-smoke:
	$(PYTHON) -m repro.fabric.smoke

# Independent verification: conformance oracle on traced campaign
# points, seeded mutation detection, differential design invariants,
# and a bounded fuzz smoke (see docs/verification.md).
check:
	$(PYTHON) -m repro.check.selfcheck --fuzz-cases 12

# Engine A/B smoke: the fast engine must be no slower than the
# reference and bit-identical on short runs, and must stay within
# BENCH_THRESHOLD of the committed baseline timings. Sub-second smoke
# runs on shared machines jitter ~±20%, so the default gate is wide;
# it still catches losing the fast path (a 2-3x slowdown). Drop
# --smoke for the full Table 4 mix A/B (docs/performance.md quotes
# those numbers).
BENCH_THRESHOLD ?= 0.5
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --smoke \
		--output benchmarks/results/BENCH_engine_current.json
	$(PYTHON) benchmarks/compare.py \
		benchmarks/results/BENCH_engine_smoke.json \
		benchmarks/results/BENCH_engine_current.json \
		--threshold $(BENCH_THRESHOLD)

# Coverage for the verification layer itself; skips cleanly when
# pytest-cov is not installed (it is optional tooling, not a dep).
coverage-check:
	@if $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('pytest_cov') is None)"; then \
		$(PYTHON) -m pytest -q --cov=src/repro/check --cov-report=term tests/check; \
	else \
		echo "pytest-cov not installed; running tests/check without coverage"; \
		$(PYTHON) -m pytest -q tests/check; \
	fi

# Coverage gate for the mitigation family and its verification
# harnesses (registry, differential, fuzzer, corpus, contract suite).
# Like coverage-check it runs the tests uninstrumented when pytest-cov
# is not installed (optional tooling, not a dependency).
cov-mitigations:
	@if $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('pytest_cov') is None)"; then \
		$(PYTHON) -m pytest -q --cov=src/repro/mitigations --cov=src/repro/check \
			--cov-report=term --cov-fail-under=90 tests/mitigations tests/check; \
	else \
		echo "pytest-cov not installed; running tests/mitigations tests/check without coverage"; \
		$(PYTHON) -m pytest -q tests/mitigations tests/check; \
	fi

# What CI runs.
ci: lint typecheck test smoke obs-smoke serve-smoke fabric-smoke check bench-engine cov-mitigations

clean-cache:
	rm -rf benchmarks/results/.cache .repro-cache
