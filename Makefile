PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke obs-smoke ci clean-cache

# Tier-1 suite (the correctness gate).
test:
	$(PYTHON) -m pytest -x -q

# Tiny parallel sweep: serial vs parallel equivalence + warm-cache rerun.
smoke:
	$(PYTHON) -m repro.exec.smoke

# Observability layer: tracing demo + stats-snapshot determinism check.
obs-smoke:
	$(PYTHON) examples/tracing_demo.py
	$(PYTHON) -m repro.obs.selfcheck

# What CI runs.
ci: test smoke obs-smoke

clean-cache:
	rm -rf benchmarks/results/.cache .repro-cache
