"""Trace representation for the core model.

A trace is a stream of :class:`TraceItem` records: "after ``gap``
non-memory instructions, the core issues a memory access to ``address``".
The address is a byte address in the core's virtual space; the system maps
it through the LLC (optionally) and the DRAM address mapper.

Traces can come from the synthetic workload generators
(:mod:`repro.workloads`), from simple text files (one
``gap address [W]`` triple per line), or from any Python iterable — the
core only needs an iterator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceItem:
    """One memory access: preceded by ``gap`` non-memory instructions."""

    gap: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


def parse_trace_line(line: str) -> TraceItem | None:
    """Parse ``gap address [W]``; returns None for blanks/comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) not in (2, 3):
        raise ValueError(f"malformed trace line: {line!r}")
    gap = int(parts[0])
    address = int(parts[1], 0)
    is_write = len(parts) == 3 and parts[2].upper() == "W"
    return TraceItem(gap, address, is_write)


def read_trace(lines: Iterable[str]) -> Iterator[TraceItem]:
    """Stream trace items from text lines."""
    for line in lines:
        item = parse_trace_line(line)
        if item is not None:
            yield item


def load_trace_file(path: str) -> list[TraceItem]:
    """Load a whole trace file into memory."""
    with open(path) as handle:
        return list(read_trace(handle))


def format_trace_item(item: TraceItem) -> str:
    """Render one item in the ``gap address [W]`` file format."""
    suffix = " W" if item.is_write else ""
    return f"{item.gap} 0x{item.address:x}{suffix}"


def write_trace_file(path: str, items: Iterable[TraceItem],
                     header: str | None = None) -> int:
    """Write a trace file; returns the number of items written."""
    count = 0
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for item in items:
            handle.write(format_trace_item(item) + "\n")
            count += 1
    return count


def trace_mpki(items: Iterable[TraceItem]) -> float:
    """Misses per kilo-instruction of a finite trace."""
    accesses = 0
    instructions = 0
    for item in items:
        accesses += 1
        instructions += item.gap + 1
    return 1000.0 * accesses / instructions if instructions else 0.0
