"""Shared last-level cache (Table 3: 8 MB, 16-way, 64 B lines, LRU).

The calibrated Table 4 workloads generate LLC-*miss* streams directly
(their MPKI column already counts LLC misses), so the default system wires
cores straight to the memory controller. The cache is a full substrate
nonetheless: raw access traces can be filtered through it
(``System(..., use_llc=True)``), the cache-behaviour tests exercise it, and
the ``examples/llc_filtering.py`` example shows both modes side by side.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpka(self) -> float:
        """Misses per kilo-access."""
        return 1000.0 * self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache of line addresses."""

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 64):
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        lines = capacity_bytes // line_bytes
        if lines % ways:
            raise ValueError("capacity must divide evenly into ways")
        self.sets = lines // ways
        if self.sets == 0:
            raise ValueError("cache too small for the requested ways")
        self.ways = ways
        self.line_bytes = line_bytes
        # per-set OrderedDict: tag -> dirty flag; LRU at the front
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Look up (and fill on miss). Returns True on hit."""
        index, tag = self._locate(address)
        entries = self._sets[index]
        self.stats.accesses += 1
        if tag in entries:
            self.stats.hits += 1
            entries.move_to_end(tag)
            if is_write:
                entries[tag] = True
            return True
        self.stats.misses += 1
        if len(entries) >= self.ways:
            _, dirty = entries.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        entries[tag] = is_write
        return False

    def contains(self, address: int) -> bool:
        index, tag = self._locate(address)
        return tag in self._sets[index]

    def flush(self) -> int:
        """Drop all lines; returns how many were dirty."""
        dirty = sum(flag for entries in self._sets
                    for flag in entries.values())
        for entries in self._sets:
            entries.clear()
        return dirty
