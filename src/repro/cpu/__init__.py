"""CPU substrate: trace format, ROB-window core model, shared LLC."""

from .cache import CacheStats, SetAssociativeCache
from .core import Core, CoreStats
from .trace import (TraceItem, load_trace_file, parse_trace_line,
                    read_trace, trace_mpki)

__all__ = [
    "CacheStats", "Core", "CoreStats", "SetAssociativeCache", "TraceItem",
    "load_trace_file", "parse_trace_line", "read_trace", "trace_mpki",
]
