"""ROB-window out-of-order core model (paper Table 3: 4 GHz, 4-wide,
256-entry ROB).

This is the standard limit-study approximation of an OoO core for DRAM
studies: the core dispatches instructions at full width (4 IPC) and issues
every LLC miss it encounters, overlapping as many misses as fit inside the
reorder-buffer window. Dispatch stalls only when the *next* instruction is
more than ``rob_entries`` instructions younger than the oldest incomplete
miss — the ROB cannot retire past a pending load.

The model preserves exactly the distinction the paper's results hinge on:

* bandwidth-bound streams (a miss every ~20 instructions) keep ~12 misses
  in flight and hide extra precharge latency, while
* latency-bound workloads (a miss every 100-500 instructions) have an MLP
  near 1 and feel every nanosecond PRAC adds to tRP.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Iterator

from ..config import SystemConfig
from .trace import TraceItem


@dataclass
class CoreStats:
    instructions: int = 0
    requests: int = 0
    finish_ps: int = 0

    def ipc(self, core_ghz: float) -> float:
        """Retired instructions per core cycle."""
        if self.finish_ps <= 0:
            return 0.0
        cycles = self.finish_ps * core_ghz / 1000.0
        return self.instructions / cycles


class Core:
    """One trace-driven core.

    The system drives the core through three entry points:

    * :meth:`next_action` — what the core wants to do next,
    * :meth:`take_request` — commit to issuing the prepared access,
    * :meth:`on_completion` — an outstanding miss returned.
    """

    def __init__(self, core_id: int, trace: Iterator[TraceItem],
                 config: SystemConfig, instruction_limit: int,
                 window: int | None = None):
        self.core_id = core_id
        self.trace = iter(trace)
        self.config = config
        self.instruction_limit = instruction_limit
        self.pspi = config.ps_per_instruction
        #: miss-overlap window in instructions: the ROB, widened by the
        #: workload's prefetch model (WorkloadSpec.mlp_boost)
        self.rob = window if window is not None else config.rob_entries

        self.inst_index = 0  # instructions dispatched so far
        self.dispatch_ps = 0.0  # time the dispatch cursor has reached
        #: outstanding misses: request_id -> instruction index
        self.outstanding: dict[int, int] = {}
        self._order: collections.deque[tuple[int, int]] = collections.deque()
        self._next_item: TraceItem | None = None
        self._exhausted = False
        self._waiting_on: int | None = None
        self._resume_floor = 0.0
        self._last_completion = 0.0
        self.stats = CoreStats()

    # ------------------------------------------------------------------
    def _peek(self) -> TraceItem | None:
        if self._next_item is None and not self._exhausted:
            try:
                self._next_item = next(self.trace)
            except StopIteration:
                self._exhausted = True
        return self._next_item

    def _trace_finished(self) -> bool:
        item = self._peek()
        budget_left = self.instruction_limit - self.inst_index
        return item is None or budget_left <= 0 or item.gap + 1 > budget_left

    def next_action(self) -> tuple[str, float | int]:
        """Returns one of:

        * ``("issue", t)`` — ready to issue the next access at time t (ps),
        * ``("wait", request_id)`` — ROB full; blocked on that miss,
        * ``("finish", t)`` — trace/budget exhausted; core done at time t.
        """
        if self._trace_finished():
            return ("finish", self._finish_time())
        item = self._peek()
        assert item is not None
        next_index = self.inst_index + item.gap + 1
        blocker = self._rob_blocker(next_index)
        if blocker is not None:
            self._waiting_on = blocker
            return ("wait", blocker)
        issue = max(self.dispatch_ps + item.gap * self.pspi,
                    self._resume_floor)
        return ("issue", issue)

    def take_request(self, issue_ps: float) -> TraceItem:
        """Commit the prepared access; advances the dispatch cursor."""
        item = self._next_item
        assert item is not None, "take_request without a pending item"
        self._next_item = None
        self.inst_index += item.gap + 1
        self.dispatch_ps = issue_ps
        self.stats.instructions = self.inst_index
        self.stats.requests += 1
        return item

    def track(self, request_id: int) -> None:
        self.outstanding[request_id] = self.inst_index
        self._order.append((request_id, self.inst_index))

    def on_completion(self, request_id: int, now: int) -> None:
        self.outstanding.pop(request_id, None)
        while self._order and self._order[0][0] not in self.outstanding:
            self._order.popleft()
        self._last_completion = max(self._last_completion, float(now))
        if request_id == self._waiting_on:
            # Dispatch was stalled on this miss; it resumes now.
            self._resume_floor = max(self._resume_floor, float(now))
            self._waiting_on = None

    @property
    def done(self) -> bool:
        return self._trace_finished() and not self.outstanding

    def finalize(self) -> CoreStats:
        budget_left = max(self.instruction_limit - self.inst_index, 0)
        self.stats.instructions = self.inst_index + budget_left
        self.stats.finish_ps = int(self._finish_time())
        return self.stats

    # ------------------------------------------------------------------
    def _rob_blocker(self, next_index: int) -> int | None:
        """Oldest outstanding miss the ROB cannot retire past, if any."""
        if not self._order:
            return None
        oldest_id, oldest_index = self._order[0]
        if next_index - oldest_index >= self.rob:
            return oldest_id
        return None

    def _finish_time(self) -> float:
        """Retirement of the last instruction: the dispatch cursor plus the
        non-memory tail, but never before the last miss returns."""
        budget_left = max(self.instruction_limit - self.inst_index, 0)
        tail = budget_left * self.pspi
        return max(self.dispatch_ps + tail, self._last_completion)
