"""Markov-chain security model for Non-Uniform Probability (Section 8.2).

MoPAC-D with NUP samples a row with probability p/2 while its PRAC counter
is zero and probability p afterwards. The counter's trajectory over A
activations is the Markov chain of Figure 16:

    state 0 --p/2--> state 1 --p--> state 2 --p--> ...

(each state also self-loops with the complementary probability). After A
steps the chain's distribution y gives the probability the row ends with
each number of updates; the critical count C is the largest value whose
cumulative mass stays below the escape budget P_e1 (Eq. 9), and
ATH* = C / p as usual.

With uniform edge probabilities the chain reproduces the binomial model
exactly (the paper's footnote-8 sanity check, covered by our tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csearch import DEFAULT_TTH, MoPACParams, default_p
from .failure import DEFAULT_TRC_NS, epsilon_for
from .moat_model import moat_ath


def counter_distribution(activations: int, p: float,
                         p_first: float | None = None) -> np.ndarray:
    """Distribution of the update count after ``activations`` steps.

    ``p_first`` is the transition probability out of state 0 (p/2 for NUP,
    p for the uniform sanity check). Returns a vector y where ``y[i]`` is
    the probability of exactly i updates.
    """
    if activations < 0:
        raise ValueError("activations must be non-negative")
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    p_first = p / 2 if p_first is None else p_first

    y = np.zeros(activations + 1, dtype=np.float64)
    y[0] = 1.0
    for _ in range(activations):
        moved = np.empty_like(y)
        moved[0] = 0.0
        # state 0 advances with p_first, states >= 1 with p
        moved[1] = y[0] * p_first
        moved[2:] = y[1:-1] * p
        stay = y.copy()
        stay[0] *= 1.0 - p_first
        stay[1:] *= 1.0 - p
        y = stay
        y[1:] += moved[1:]
    return y


def critical_updates_markov(activations: int, p: float, epsilon: float,
                            p_first: float | None = None) -> int:
    """Largest C with P(N <= C) <= epsilon under the NUP chain (Eq. 9)."""
    y = counter_distribution(activations, p, p_first)
    cumulative = np.cumsum(y)
    best = 0
    for c in range(activations + 1):
        if cumulative[c] <= epsilon:
            best = c
        else:
            break
    return best


@dataclass(frozen=True)
class NUPParams:
    """Derived NUP parameters alongside the uniform baseline (Table 11)."""

    trh: int
    p: float
    uniform_ath_star: int
    nup_ath_star: int
    uniform_c: int
    nup_c: int


def mopac_d_nup_params(trh: int, p: float | None = None,
                       tth: int = DEFAULT_TTH,
                       trc_ns: float = DEFAULT_TRC_NS) -> NUPParams:
    """Derive MoPAC-D parameters with and without NUP (Table 11 row).

    Following the paper: the *uniform* column runs the model over
    A' = ATH - TTH (identical to the Table 8 binomial result), while the
    NUP column runs the Markov chain over the full ATH window ("the
    likelihood that the PRAC counter reaches a particular value after
    receiving ATH activations", Section 8.2). Both reproduce the published
    Table 11 values exactly.
    """
    p = default_p(trh) if p is None else p
    ath = moat_ath(trh)
    effective = ath - tth
    if effective <= 0:
        raise ValueError("TTH leaves no activation budget")
    eps = epsilon_for(trh, trc_ns)
    uniform_c = critical_updates_markov(effective, p, eps, p_first=p)
    nup_c = critical_updates_markov(ath, p, eps, p_first=p / 2)
    return NUPParams(
        trh=trh, p=p,
        uniform_ath_star=round(uniform_c / p),
        nup_ath_star=round(nup_c / p),
        uniform_c=uniform_c, nup_c=nup_c,
    )


def markov_params_to_mopac(params: NUPParams) -> MoPACParams:
    """Convert NUP params to the common MoPACParams shape (NUP variant)."""
    ath = moat_ath(params.trh)
    return MoPACParams(
        trh=params.trh, ath=ath, effective_acts=ath,
        p=params.p, critical_updates=params.nup_c,
        ath_star=params.nup_ath_star, epsilon=epsilon_for(params.trh),
        undercount_probability=float(
            np.cumsum(counter_distribution(ath, params.p))[params.nup_c]),
    )
