"""Binomial tail probabilities in log space.

Section 5.3: given that each activation is selected for a counter update
independently with probability ``p``, the number of updates N a row receives
in A activations is Binomial(A, p). MoPAC fails (undercounts) when
N < C, so the quantity of interest is the *lower tail*

    P(N < C) = sum_{i=0}^{C-1} C(A, i) p^i (1-p)^(A-i)          (Eq. 2)

The probabilities involved are ~1e-8 to 1e-17, far below what naive
floating-point summation of pmf terms loses to underflow, so each pmf term
is evaluated with ``math.lgamma`` and the sum is accumulated with
``math.fsum`` for exactness.
"""

from __future__ import annotations

import math
from functools import lru_cache


def log_binomial_pmf(k: int, n: int, p: float) -> float:
    """log P(X = k) for X ~ Binomial(n, p)."""
    if not 0 <= k <= n:
        return -math.inf
    if p <= 0:
        return 0.0 if k == 0 else -math.inf
    if p >= 1:
        return 0.0 if k == n else -math.inf
    log_choose = (math.lgamma(n + 1) - math.lgamma(k + 1)
                  - math.lgamma(n - k + 1))
    return log_choose + k * math.log(p) + (n - k) * math.log1p(-p)


def binomial_pmf(k: int, n: int, p: float) -> float:
    """P(X = k) for X ~ Binomial(n, p)."""
    log_pmf = log_binomial_pmf(k, n, p)
    return 0.0 if log_pmf == -math.inf else math.exp(log_pmf)


@lru_cache(maxsize=4096)
def undercount_probability(critical: int, activations: int,
                           p: float) -> float:
    """P(N < critical) for N ~ Binomial(activations, p) — paper Eq. (2).

    ``critical`` is C, the critical number of counter updates; the result
    is the probability a row activated ``activations`` times receives
    fewer than C updates.
    """
    if critical <= 0:
        return 0.0
    if activations < 0:
        raise ValueError("activations must be non-negative")
    upper = min(critical - 1, activations)
    terms = [binomial_pmf(i, activations, p) for i in range(upper + 1)]
    return min(math.fsum(terms), 1.0)


def survival_probability(critical: int, activations: int, p: float) -> float:
    """P(N >= critical): the row *is* caught with enough updates."""
    return 1.0 - undercount_probability(critical, activations, p)


def binomial_mean(activations: int, p: float) -> float:
    return activations * p


def escape_probability_bernoulli(n_acts: int, p: float) -> float:
    """P(row never selected in n_acts Bernoulli(p) trials) = (1-p)^n.

    Used by the PARA/PrIDE-style baseline models in
    :mod:`repro.security.tolerated`.
    """
    if n_acts < 0:
        raise ValueError("n_acts must be non-negative")
    return math.exp(n_acts * math.log1p(-p)) if 0 < p < 1 else (
        1.0 if p <= 0 else 0.0)
