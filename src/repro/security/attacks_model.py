"""Analytical performance-attack models (Section 7, Tables 9 and 10).

The paper measures memory throughput in activations per tRC and treats one
ABO episode as the equivalent of seven lost activations (350 ns / 46 ns).
If an attack pattern forces one ABO every N activations, the throughput
loss is 7 / (N + 7)  (Figure 14).

Attack-visible ALERT thresholds: ABO fires when a counter *exceeds* the
critical count C, i.e. on the (C+1)-th update, so the attacker observes
ATH*_attack = (C + 1) / p — one update quantum above the design ATH* of
Tables 7/8 (this is why Table 9 lists 84/184/384 where Table 7 lists
80/176/368).

For the multi-bank pattern (Figure 14b) randomisation makes the fastest of
the 32 banks reach the threshold first; the paper's Monte-Carlo estimate of
that factor is alpha ~= 0.55, reproduced here by sampling the minimum of 32
negative-binomial variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csearch import (DEFAULT_TTH, MoPACParams, mopac_c_params,
                      mopac_d_params)

#: ABO stall expressed in activation slots (350 ns / tRC, paper Section 7.1).
ABO_STALL_ACTS = 7

#: Paper's Monte-Carlo result for the 32-bank race factor.
PAPER_ALPHA = 0.55


def estimate_alpha(critical_updates: int, p: float, banks: int = 32,
                   trials: int = 20_000, seed: int = 0xA1FA) -> float:
    """Monte-Carlo estimate of the multi-bank race factor alpha (Sec 7.2).

    Each bank independently accumulates counter updates with probability p
    per activation; the first bank to exceed ``critical_updates`` updates
    triggers the ABO for everyone. The number of per-bank activations to
    reach C+1 updates is NegativeBinomial; alpha is the expected minimum
    over ``banks`` banks, normalised to the single-bank expectation.
    """
    if critical_updates <= 0:
        raise ValueError("critical_updates must be positive")
    rng = np.random.default_rng(seed)
    need = critical_updates + 1  # updates needed to *exceed* C
    # activations to collect `need` successes = need + failures
    failures = rng.negative_binomial(need, p, size=(trials, banks))
    acts = failures + need
    fastest = acts.min(axis=1)
    return float(fastest.mean() / (need / p))


def abo_slowdown(acts_between_abo: float,
                 stall_acts: float = ABO_STALL_ACTS) -> float:
    """Throughput loss when one ABO occurs every ``acts_between_abo`` ACTs."""
    if acts_between_abo <= 0:
        raise ValueError("acts_between_abo must be positive")
    return stall_acts / (acts_between_abo + stall_acts)


def attack_ath_star(params: MoPACParams) -> int:
    """ALERT threshold as seen by an attacker: (C + 1) / p."""
    return round((params.critical_updates + 1) / params.p)


@dataclass(frozen=True)
class AttackReport:
    """Slowdown under one attack pattern."""

    trh: int
    pattern: str
    acts_between_abo: float
    slowdown: float


def mopac_c_attack(trh: int, alpha: float = PAPER_ALPHA,
                   p: float | None = None) -> AttackReport:
    """Multi-bank mitigation attack on MoPAC-C (Table 9)."""
    params = mopac_c_params(trh, p)
    ath = attack_ath_star(params)
    n = alpha * ath
    return AttackReport(trh, "mitigation", n, abo_slowdown(n))


def mopac_d_attacks(trh: int, alpha: float = PAPER_ALPHA,
                    p: float | None = None, srq_drain: int = 5,
                    tth: int = DEFAULT_TTH) -> dict[str, AttackReport]:
    """The three MoPAC-D attack patterns of Section 7.4 (Table 10).

    * ``mitigation`` — multi-bank race to ATH*,
    * ``srq_full`` — unique-row flood: one ABO per (srq_drain / p) ACTs
      (each ABO drains 5 entries and each entry takes 1/p ACTs to insert),
    * ``tardiness`` — park a row in the SRQ and hammer it: one ABO per TTH.
    """
    params = mopac_d_params(trh, p, tth=tth)
    ath = attack_ath_star(params)
    mitig_n = alpha * ath
    srq_n = srq_drain / params.p
    reports = {
        "mitigation": AttackReport(trh, "mitigation", mitig_n,
                                   abo_slowdown(mitig_n)),
        "srq_full": AttackReport(trh, "srq_full", srq_n,
                                 abo_slowdown(srq_n)),
        "tardiness": AttackReport(trh, "tardiness", float(tth),
                                  abo_slowdown(tth)),
    }
    return reports


def single_bank_slowdown(trh: int, p: float | None = None) -> float:
    """Single-bank single-row attack: one ABO per ATH* ACTs (Sec. 7.1)."""
    params = mopac_c_params(trh, p)
    return abo_slowdown(attack_ath_star(params))
