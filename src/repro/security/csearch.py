"""Critical-update search and MoPAC parameter derivation (Sections 5.3-5.4,
6.4-6.5; Tables 6, 7, 8).

Given a Rowhammer threshold T:

1. epsilon = sqrt(T * tRC / 3.2e20)                       (Table 5)
2. A = ATH(T) for MoPAC-C, or A' = ATH(T) - TTH for MoPAC-D (tardiness)
3. C = the largest count with P(Binomial(A, p) < C) <= epsilon  (Table 6)
4. ATH* = C / p                                           (Eq. 7)

The sampling probability p is restricted to powers of two. The paper's
choices (1/4 at 250, 1/8 at 500, 1/16 at 1000, ..., 1/64 at 4000) follow
p = 62.5 / T rounded to a power of two, with a floor keeping ATH* >= 10
to avoid frequent ABO (Section 5.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .binomial import undercount_probability
from .failure import DEFAULT_TRC_NS, epsilon_for
from .moat_model import moat_ath

#: Default tardiness threshold (Section 6.3).
DEFAULT_TTH = 32

#: Paper's drain-on-REF rates per threshold (Table 8, right column).
DRAIN_ON_REF = {250: 4, 500: 2, 1000: 1}


@dataclass(frozen=True)
class MoPACParams:
    """Derived parameters for one (design, T_RH) point."""

    trh: int
    ath: int  #: MOAT ALERT threshold without MoPAC
    effective_acts: int  #: A (MoPAC-C) or A' = ATH - TTH (MoPAC-D)
    p: float
    critical_updates: int  #: C
    ath_star: int  #: ATH* = C / p
    epsilon: float
    undercount_probability: float  #: failure probability P(N <= C)

    @property
    def inv_p(self) -> int:
        return round(1 / self.p)

    @property
    def update_reduction(self) -> float:
        """How many x fewer counter updates than PRAC (= 1/p)."""
        return 1 / self.p


def default_p(trh: int) -> float:
    """Power-of-two sampling probability for a threshold (Section 5.4).

    Matches the paper's menu: T_RH 250 -> 1/4, 500 -> 1/8, 1000 -> 1/16,
    2000 -> 1/32, 4000 -> 1/64. Clamped to at most 1/2.
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    exponent = max(round(math.log2(trh / 62.5)), 1)
    return 2.0 ** -exponent


def critical_updates(effective_acts: int, p: float, epsilon: float) -> int:
    """Largest C whose failure probability stays within epsilon (Sec. 5.3).

    The paper's Table 6 numbers correspond to a failure event of "at most C
    updates" — ABO fires once the update count *exceeds* C — so the search
    finds the largest C with P(N <= C) <= epsilon. (Reading Eq. 2 literally
    as P(N < C) shifts every table entry by one row; the published C and
    ATH* values match the <= convention, which we therefore use.)
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    best = 0
    for c in range(effective_acts + 1):
        if undercount_probability(c + 1, effective_acts, p) <= epsilon:
            best = c
        else:
            break
    return best


def mopac_c_params(trh: int, p: float | None = None,
                   trc_ns: float = DEFAULT_TRC_NS) -> MoPACParams:
    """Derive MoPAC-C parameters (Table 7 row) for a threshold."""
    p = default_p(trh) if p is None else p
    ath = moat_ath(trh)
    eps = epsilon_for(trh, trc_ns)
    c = critical_updates(ath, p, eps)
    return MoPACParams(
        trh=trh, ath=ath, effective_acts=ath, p=p, critical_updates=c,
        ath_star=round(c / p), epsilon=eps,
        undercount_probability=undercount_probability(c + 1, ath, p),
    )


def mopac_d_params(trh: int, p: float | None = None, tth: int = DEFAULT_TTH,
                   trc_ns: float = DEFAULT_TRC_NS) -> MoPACParams:
    """Derive MoPAC-D parameters (Table 8 row) for a threshold.

    Tardiness (Section 6.3) lets a buffered row take up to TTH extra
    activations before its update lands, so the binomial search runs over
    A' = ATH - TTH (Eq. 8).
    """
    p = default_p(trh) if p is None else p
    ath = moat_ath(trh)
    effective = ath - tth
    if effective <= 0:
        raise ValueError(f"TTH {tth} leaves no activation budget at "
                         f"T_RH {trh}")
    eps = epsilon_for(trh, trc_ns)
    c = critical_updates(effective, p, eps)
    return MoPACParams(
        trh=trh, ath=ath, effective_acts=effective, p=p,
        critical_updates=c, ath_star=round(c / p), epsilon=eps,
        undercount_probability=undercount_probability(c + 1, effective, p),
    )


def drain_on_ref_default(trh: int) -> int:
    """Paper's drain-on-REF rate for a threshold (Table 8)."""
    if trh in DRAIN_ON_REF:
        return DRAIN_ON_REF[trh]
    # Lower thresholds sample more and need faster draining.
    if trh < 250:
        return 4
    if trh < 500:
        return 4
    if trh < 1000:
        return 2
    return 1


def table6(c_values: range = range(20, 26),
           thresholds: tuple[int, ...] = (250, 500, 1000)) -> dict:
    """Reproduce paper Table 6: P(N < C) grid, normalised to epsilon.

    Returns ``{trh: {c: (probability, ratio_to_epsilon)}}`` using each
    threshold's default p and A = ATH (the MoPAC-C setting).
    """
    grid: dict[int, dict[int, tuple[float, float]]] = {}
    for trh in thresholds:
        eps = epsilon_for(trh)
        ath = moat_ath(trh)
        p = default_p(trh)
        grid[trh] = {
            c: (undercount_probability(c + 1, ath, p),
                undercount_probability(c + 1, ath, p) / eps)
            for c in c_values
        }
    return grid
