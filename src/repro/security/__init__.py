"""Security analysis for MoPAC (paper Sections 5.3, 6.4, 7, 8.2, App. A).

This subpackage is pure math — no simulator state — and reproduces every
analytical table in the paper:

* Table 2 (MOAT ATH): :mod:`repro.security.moat_model`
* Table 5 (F, epsilon): :mod:`repro.security.failure`
* Tables 6-8 (C search, ATH*): :mod:`repro.security.csearch`
* Tables 9-10 (performance attacks): :mod:`repro.security.attacks_model`
* Table 11 (NUP Markov chain): :mod:`repro.security.markov`
* Table 13 (MINT / PrIDE comparison): :mod:`repro.security.tolerated`
* Table 14 (Row-Press): :mod:`repro.security.rowpress`
"""

from .binomial import (binomial_pmf, escape_probability_bernoulli,
                       survival_probability, undercount_probability)
from .csearch import (DEFAULT_TTH, MoPACParams, critical_updates, default_p,
                      drain_on_ref_default, mopac_c_params, mopac_d_params,
                      table6)
from .failure import FailureBudget, budget_for, epsilon_for, \
    failure_probability, table5
from .markov import (NUPParams, counter_distribution,
                     critical_updates_markov, mopac_d_nup_params)
from .moat_model import moat_ath, moat_eth, moat_slack
from .attacks_model import (ABO_STALL_ACTS, PAPER_ALPHA, AttackReport,
                            abo_slowdown, attack_ath_star, estimate_alpha,
                            mopac_c_attack, mopac_d_attacks,
                            single_bank_slowdown)
from .rowpress import (ROWPRESS_DAMAGE, mopac_c_rowpress_params,
                       mopac_d_rowpress_params, rowpress_budget)
from .tolerated import (ToleratedRow, mint_tolerated, mopac_d_tolerated,
                        pride_tolerated, table13)

__all__ = [
    "ABO_STALL_ACTS", "AttackReport", "DEFAULT_TTH", "FailureBudget",
    "MoPACParams", "NUPParams", "PAPER_ALPHA", "ROWPRESS_DAMAGE",
    "ToleratedRow", "abo_slowdown", "attack_ath_star", "binomial_pmf",
    "budget_for", "counter_distribution", "critical_updates",
    "critical_updates_markov", "default_p", "drain_on_ref_default",
    "epsilon_for", "escape_probability_bernoulli", "estimate_alpha",
    "failure_probability", "mint_tolerated", "moat_ath", "moat_eth",
    "moat_slack", "mopac_c_attack", "mopac_c_params",
    "mopac_c_rowpress_params", "mopac_d_attacks", "mopac_d_nup_params",
    "mopac_d_params", "mopac_d_rowpress_params", "mopac_d_tolerated",
    "pride_tolerated", "rowpress_budget", "single_bank_slowdown",
    "survival_probability", "table5", "table6", "table13",
    "undercount_probability",
]
