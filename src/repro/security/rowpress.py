"""Row-Press-aware MoPAC parameters (Appendix A, Table 14).

Row-Press [Luo+, ISCA'23] amplifies read disturbance when a row stays open:
keeping a row open for 180 ns deals about 1.5x the damage of one
fast-cycled activation. The MoPAC extension bounds row-open time to 180 ns
(MoPAC-C closes the row; MoPAC-D charges SCtr by ceil(tON / 180 ns)) and
derates every activation to 1.5 damage units, which shrinks the usable
activation budget by 1.5x:

    A_rp  = floor(ATH / 1.5)            (MoPAC-C)
    A'_rp = floor((ATH - TTH) / 1.5)    (MoPAC-D; tardiness slack derates too)

and the C-search proceeds as usual. Both conventions reproduce the
published Table 14 values exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .csearch import (DEFAULT_TTH, MoPACParams, critical_updates, default_p)
from .binomial import undercount_probability
from .failure import DEFAULT_TRC_NS, epsilon_for
from .moat_model import moat_ath

#: Relative damage of one 180 ns-open activation vs one fast activation.
ROWPRESS_DAMAGE = 1.5

#: Row-open cap enforced by the Row-Press-aware designs (ns).
ROWPRESS_TON_CAP_NS = 180.0


def rowpress_budget(trh: int, damage: float = ROWPRESS_DAMAGE) -> int:
    """Activation budget after derating each ACT to ``damage`` units."""
    return int(moat_ath(trh) / damage)


def _params(trh: int, effective: int, p: float) -> MoPACParams:
    eps = epsilon_for(trh, DEFAULT_TRC_NS)
    c = critical_updates(effective, p, eps)
    if c < 1:
        # Footnote 9: the Row-Press-derated budget is too small for a
        # usable ATH*; the paper recommends circuit-level techniques here.
        raise ValueError(
            f"Row-Press budget at T_RH {trh} yields C = 0; use "
            "circuit-level mitigation instead (paper footnote 9)")
    return MoPACParams(
        trh=trh, ath=moat_ath(trh), effective_acts=effective, p=p,
        critical_updates=c, ath_star=round(c / p), epsilon=eps,
        undercount_probability=undercount_probability(c + 1, effective, p),
    )


def mopac_c_rowpress_params(trh: int, p: float | None = None,
                            damage: float = ROWPRESS_DAMAGE) -> MoPACParams:
    """Row-Press-aware MoPAC-C parameters (Table 14, MoPAC-C column)."""
    p = default_p(trh) if p is None else p
    return _params(trh, rowpress_budget(trh, damage), p)


def mopac_d_rowpress_params(trh: int, p: float | None = None,
                            tth: int = DEFAULT_TTH,
                            damage: float = ROWPRESS_DAMAGE) -> MoPACParams:
    """Row-Press-aware MoPAC-D parameters (Table 14, MoPAC-D column)."""
    p = default_p(trh) if p is None else p
    effective = int((moat_ath(trh) - tth) / damage)
    if effective <= 0:
        raise ValueError("Row-Press budget exhausted by TTH at this T_RH")
    return _params(trh, effective, p)


@dataclass(frozen=True)
class RowPressDamage:
    """Damage accounting for one row-open episode."""

    open_time_ns: float

    @property
    def sctr_increment(self) -> int:
        """MoPAC-D: SCtr += ceil(tON / 180 ns) (Appendix A)."""
        import math
        return max(1, math.ceil(self.open_time_ns / ROWPRESS_TON_CAP_NS))
