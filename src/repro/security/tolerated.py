"""Tolerated-threshold comparison against MINT and PrIDE (Table 13).

Section 9.2 compares the threshold each in-DRAM design tolerates as a
function of the time the DRAM vendor reserves for Rowhammer work per REF:
one victim-row refresh (or one counter update) costs about 60 ns, so
240 / 120 / 60 ns per REF buys one aggressor mitigation every 1 / 2 / 4
REFs for MINT and PrIDE, or 4 / 2 / 1 counter-update drains per REF for
MoPAC-D.

Models (documented substitutions — the MINT/PrIDE papers' full analyses
include ABO bookkeeping we do not reproduce):

* **MINT** selects exactly one activation per sampling window of
  W = tREFI / tRC activations and mitigates it at the next opportunity
  (every k REFs -> window k*W). The attacker's best strategy dilutes the
  target row to an arbitrarily small fraction of the window, giving escape
  probability (1 - f)^(N/(f k W)) -> exp(-N / (k W)). Setting this equal
  to the double-sided budget epsilon(T) and solving the fixed point gives
  the tolerated threshold  T = k * W * ln(1 / epsilon(T)).
* **PrIDE** samples each activation with probability 1 / (k W) into a
  2-entry FIFO drained once per mitigation opportunity; a sampled entry is
  lost when two or more further samples arrive before its drain
  (Poisson(1) >= 2, probability 1 - 2/e ~= 0.264), so its effective
  sampling rate is scaled by 2/e + ... = P(Poisson(1) <= 1).
* **MoPAC-D** needs ``drain_on_ref_default(T)`` updates per REF
  (Table 8), i.e. 60 ns per update, which inverts to the T column directly.

Our fixed points land within ~3% (MINT) and ~7% (PrIDE) of the published
numbers; the paper's headline ratios (~6x and ~8x vs MoPAC-D) hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .csearch import drain_on_ref_default
from .failure import DEFAULT_TRC_NS, epsilon_for
from ..units import to_ns
from ..dram.timing import ddr5_base

#: Cost of refreshing one victim row / updating one counter (Table 13).
NS_PER_ROW_OP = 60.0


def acts_per_tref_window(trefi_ns: float | None = None,
                         trc_ns: float = DEFAULT_TRC_NS) -> float:
    """W: activations a bank can perform per tREFI."""
    if trefi_ns is None:
        trefi_ns = to_ns(ddr5_base().tREFI)
    return trefi_ns / trc_ns


def _fixed_point_threshold(window_acts: float, loss_factor: float = 1.0,
                           trc_ns: float = DEFAULT_TRC_NS,
                           iterations: int = 64) -> int:
    """Solve T = window_acts * ln(1/epsilon(T)) / loss_factor."""
    t = 1000.0
    for _ in range(iterations):
        eps = epsilon_for(max(int(t), 1), trc_ns)
        t_next = window_acts * math.log(1 / eps) / loss_factor
        if abs(t_next - t) < 0.5:
            t = t_next
            break
        t = t_next
    return round(t)


def mint_tolerated(refs_per_mitigation: int,
                   trc_ns: float = DEFAULT_TRC_NS) -> int:
    """Tolerated T_RH for MINT with one mitigation every k REFs."""
    if refs_per_mitigation <= 0:
        raise ValueError("refs_per_mitigation must be positive")
    window = refs_per_mitigation * acts_per_tref_window(trc_ns=trc_ns)
    return _fixed_point_threshold(window, loss_factor=1.0, trc_ns=trc_ns)


#: P(a PrIDE FIFO-2 entry survives until its drain) = P(Poisson(1) <= 1).
PRIDE_SURVIVAL = 2 / math.e


def pride_tolerated(refs_per_mitigation: int,
                    trc_ns: float = DEFAULT_TRC_NS) -> int:
    """Tolerated T_RH for PrIDE (Bernoulli sampling + lossy 2-entry FIFO)."""
    if refs_per_mitigation <= 0:
        raise ValueError("refs_per_mitigation must be positive")
    window = refs_per_mitigation * acts_per_tref_window(trc_ns=trc_ns)
    return _fixed_point_threshold(window, loss_factor=PRIDE_SURVIVAL,
                                  trc_ns=trc_ns)


def mopac_d_tolerated(updates_per_ref: int) -> int:
    """Tolerated T_RH for MoPAC-D given counter updates available per REF.

    Inverts Table 8's drain-on-REF requirement: 4 updates/REF -> 250,
    2 -> 500, 1 -> 1000.
    """
    if updates_per_ref <= 0:
        raise ValueError("updates_per_ref must be positive")
    for trh in (250, 500, 1000):
        if drain_on_ref_default(trh) <= updates_per_ref:
            return trh
    return 1000


@dataclass(frozen=True)
class ToleratedRow:
    """One row of Table 13."""

    mitigation_ns_per_ref: float
    mopac_d: int
    mint: int
    pride: int

    @property
    def mint_ratio(self) -> float:
        return self.mint / self.mopac_d

    @property
    def pride_ratio(self) -> float:
        return self.pride / self.mopac_d


def table13() -> list[ToleratedRow]:
    """Reproduce Table 13: 240 / 120 / 60 ns of mitigation time per REF."""
    rows = []
    for victim_rows, refs_per_mitigation in ((4, 1), (2, 2), (1, 4)):
        time_ns = victim_rows * NS_PER_ROW_OP
        updates_per_ref = victim_rows  # one counter update costs one row op
        rows.append(ToleratedRow(
            mitigation_ns_per_ref=time_ns,
            mopac_d=mopac_d_tolerated(updates_per_ref),
            mint=mint_tolerated(refs_per_mitigation),
            pride=pride_tolerated(refs_per_mitigation),
        ))
    return rows
