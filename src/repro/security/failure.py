"""Failure-budget model (Section 5.3, Table 5).

MoPAC is probabilistic, so its security target is expressed as a
*Mean-Time-To-Failure*: the paper uses a per-bank MTTF of 10,000 years,
matching the rate of naturally occurring DRAM faults.

Within the time needed to perform T activations (T * tRC nanoseconds),
the tolerable failure probability is

    F = T * tRC / 3.2e20                                    (Eq. 3)

For a double-sided attack both aggressors must *simultaneously* escape
mitigation, so each side's escape budget is the square root:

    epsilon = sqrt(F)                                       (Eq. 6)

Note: the paper's Table 5 lists epsilon = 1.12e-8 for T = 1000, but
sqrt(1.44e-16) = 1.20e-8; we compute 1.20e-8 (the C-search result, C = 23,
is unchanged either way — see the Table 6 bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import NS_PER_10K_YEARS, ns, to_ns


#: Paper default: DDR5 row-cycle time used in the budget math (ns).
DEFAULT_TRC_NS = 46.0


@dataclass(frozen=True)
class FailureBudget:
    """The (F, epsilon) pair for one Rowhammer threshold."""

    trh: int
    failure_probability: float  #: F — victim misses mitigation
    epsilon: float  #: per-side escape budget for double-sided patterns

    @property
    def mttf_years(self) -> float:
        return 10_000.0


def failure_probability(trh: int, trc_ns: float = DEFAULT_TRC_NS,
                        mttf_ns: float = NS_PER_10K_YEARS) -> float:
    """Paper Eq. (3): F = T * tRC / (ns in the MTTF period)."""
    if trh <= 0:
        raise ValueError("trh must be positive")
    if trc_ns <= 0 or mttf_ns <= 0:
        raise ValueError("trc_ns and mttf_ns must be positive")
    return trh * trc_ns / mttf_ns


def epsilon_for(trh: int, trc_ns: float = DEFAULT_TRC_NS,
                mttf_ns: float = NS_PER_10K_YEARS) -> float:
    """Paper Eq. (6): per-side escape budget epsilon = sqrt(F)."""
    return math.sqrt(failure_probability(trh, trc_ns, mttf_ns))


def budget_for(trh: int, trc_ns: float = DEFAULT_TRC_NS,
               mttf_ns: float = NS_PER_10K_YEARS) -> FailureBudget:
    """Compute the full budget (Table 5 row) for a threshold."""
    f = failure_probability(trh, trc_ns, mttf_ns)
    return FailureBudget(trh=trh, failure_probability=f,
                         epsilon=math.sqrt(f))


def table5() -> list[FailureBudget]:
    """Reproduce paper Table 5 (T in {250, 500, 1000})."""
    return [budget_for(t) for t in (250, 500, 1000)]
