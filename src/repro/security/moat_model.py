"""MOAT ALERT-threshold model (Section 2.6, Table 2).

MOAT [Qureshi & Qazi, 2024] asserts ALERT when its tracked row reaches the
*ALERT Threshold* (ATH). Because the ABO protocol lets the memory controller
keep operating for 180 ns after ALERT, an attacker can slip extra
activations in before the mitigation lands, so ATH sits below T_RH by a
slippage margin.

The paper gives three anchor points (Table 2):

    T_RH:  1000   500   250
    ATH:    975   472   219

i.e. slippage margins of 25, 28 and 31 activations. The margins fit
``slack(T) = 28 - 3 * log2(T / 500)`` exactly at all three anchors; we use
the anchors verbatim and the fitted model for other thresholds (e.g. the
T_RH = 4000 and 2000 points of Figures 1 and 2). The Eligibility Threshold
is ETH = ATH / 2 (paper footnote 3).
"""

from __future__ import annotations

import math

#: Exact anchor points from paper Table 2.
PAPER_ATH = {250: 219, 500: 472, 1000: 975}


def moat_slack(trh: int) -> int:
    """Slippage margin between T_RH and ATH (fitted to Table 2)."""
    if trh <= 0:
        raise ValueError("trh must be positive")
    return max(round(28 - 3 * math.log2(trh / 500)), 4)


def moat_ath(trh: int) -> int:
    """ALERT threshold for a given Rowhammer threshold.

    Exact at the paper's Table 2 anchors; fitted model elsewhere.
    """
    if trh in PAPER_ATH:
        return PAPER_ATH[trh]
    ath = trh - moat_slack(trh)
    if ath < 1:
        raise ValueError(f"T_RH {trh} too small for the MOAT model")
    return ath


def moat_eth(trh: int) -> int:
    """Eligibility threshold: ETH = ATH / 2 (footnote 3)."""
    return moat_ath(trh) // 2
