"""ASCII bar charts — terminal-friendly stand-ins for the paper's plots.

The artifact's Jupyter notebook draws Figures 9/11/12/13/17 as grouped
bar charts; in a text-only environment we render the same data as
horizontal ASCII bars so the *shape* of a figure is visible at a glance::

    Figure 9 (T_RH = 500)
    prac          |############################################| 13.9%
    mopac-c@500   |#########| 2.9%

Used by ``examples/performance_study.py --plot`` and available for any
:class:`~repro.analysis.experiments.SlowdownTable`.
"""

from __future__ import annotations

from .experiments import SlowdownTable

BAR_WIDTH = 48


def bar_chart(values: dict[str, float], title: str = "",
              width: int = BAR_WIDTH, fmt: str = "{:.1%}") -> str:
    """Horizontal bar chart of a label -> value mapping."""
    if not values:
        return (title + "\n") if title else ""
    peak = max(max(values.values()), 1e-12)
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(round(width * max(value, 0.0) / peak), 0)
        lines.append(f"{label:<{label_width}s} |{bar}| "
                     f"{fmt.format(value)}")
    return "\n".join(lines) + "\n"


def figure_from_table(table: SlowdownTable, title: str = "") -> str:
    """Column-average bar chart of a slowdown table (one bar/config)."""
    return bar_chart(table.averages(), title or table.label)


def per_workload_figure(table: SlowdownTable, column: str,
                        title: str = "") -> str:
    """One bar per workload for a single configuration column."""
    values = {name: row[column] for name, row in table.rows.items()
              if column in row}
    return bar_chart(values, title or f"{table.label}: {column}")
