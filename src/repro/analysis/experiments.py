"""Experiment drivers: one function per paper table/figure.

Benchmarks, examples, and EXPERIMENTS.md all call these drivers so the
numbers they show come from a single place. Simulation-backed experiments
accept ``workloads`` and ``instructions`` so benches can run a fast
representative subset by default (environment variables ``REPRO_FULL=1``
and ``REPRO_INSTRUCTIONS=n`` widen them to the full suite).

Every simulation-backed driver enumerates its design points up front
and prefetches them through :func:`repro.exec.engine.warm`, so points
fan out across worker processes and land in the persistent result
cache (``REPRO_CACHE_DIR``); the driver's own loop then runs entirely
against cached results. ``REPRO_SERIAL=1`` disables the fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import security
from ..dram.timing import ddr5_base, ddr5_prac
from ..exec.env import env_flag, env_int
from ..sim.runner import DesignPoint, simulate, slowdown
from ..units import to_ns
from ..workloads.catalog import ALL_WORKLOADS, STREAM_NAMES

#: Fast representative subset: two streams, two latency-bound SPEC, one
#: hot-row-heavy, one low-MPKI, one mix, plus the "hammer" stress
#: workload that exercises the ALERT path at scaled run lengths.
FAST_WORKLOADS = ("add", "scale", "mcf", "parest", "omnetpp",
                  "xalancbmk", "mix1", "hammer")


def selected_workloads() -> tuple[str, ...]:
    """Workload list for simulation experiments (env-expandable)."""
    if env_flag("REPRO_FULL"):
        return ALL_WORKLOADS
    return FAST_WORKLOADS


def instruction_budget(default: int = 100_000) -> int:
    return env_int("REPRO_INSTRUCTIONS", default)


def _prefetch(points: list[DesignPoint]) -> None:
    """Resolve ``points`` (and their baselines) through the engine."""
    from ..exec.engine import warm

    flat: list[DesignPoint] = []
    for point in points:
        flat.append(point)
        if point.design != "baseline":
            flat.append(point.baseline())
    warm(flat)


# ----------------------------------------------------------------------
# Analytical experiments (exact reproductions)
# ----------------------------------------------------------------------
def fig4_latency() -> dict[str, float]:
    """Figure 4: row-conflict read latency, baseline vs PRAC (ns)."""
    return {
        "baseline_ns": to_ns(ddr5_base().row_conflict_read_latency()),
        "prac_ns": to_ns(ddr5_prac().row_conflict_read_latency()),
    }


def tab2_moat_ath(trhs=(1000, 500, 250)) -> dict[int, int]:
    """Table 2: MOAT's ALERT threshold per T_RH."""
    return {trh: security.moat_ath(trh) for trh in trhs}


def tab5_budgets(trhs=(250, 500, 1000)) -> list[security.FailureBudget]:
    """Table 5: F and epsilon per threshold."""
    return [security.budget_for(trh) for trh in trhs]


def tab6_pe1_grid() -> dict:
    """Table 6: row failure probability vs C."""
    return security.table6()


def tab7_mopac_c(trhs=(250, 500, 1000)) -> list[security.MoPACParams]:
    """Table 7: MoPAC-C p / C / ATH*."""
    return [security.mopac_c_params(trh) for trh in trhs]


def tab8_mopac_d(trhs=(250, 500, 1000)) -> list[security.MoPACParams]:
    """Table 8: MoPAC-D A' / p / C / ATH* (+ drain-on-REF)."""
    return [security.mopac_d_params(trh) for trh in trhs]


def tab9_attacks_c(trhs=(250, 500, 1000)) -> list[security.AttackReport]:
    """Table 9: MoPAC-C multi-bank performance attack."""
    return [security.mopac_c_attack(trh) for trh in trhs]


def tab10_attacks_d(trhs=(250, 500, 1000)) -> dict[int, dict]:
    """Table 10: the three MoPAC-D performance attacks."""
    return {trh: security.mopac_d_attacks(trh) for trh in trhs}


def tab11_nup(trhs=(1000, 500, 250)) -> list[security.NUPParams]:
    """Table 11: ATH* with and without NUP."""
    return [security.mopac_d_nup_params(trh) for trh in trhs]


def tab13_tolerated() -> list[security.ToleratedRow]:
    """Table 13: tolerated T_RH for MoPAC-D / MINT / PrIDE."""
    return security.table13()


def tab14_rowpress(trhs=(500, 1000)) -> dict[int, dict[str, int]]:
    """Table 14: Row-Press-aware ATH*."""
    return {
        trh: {
            "mopac_c": security.mopac_c_rowpress_params(trh).ath_star,
            "mopac_d": security.mopac_d_rowpress_params(trh).ath_star,
        }
        for trh in trhs
    }


def fig14_alpha(trh: int = 500, trials: int = 20_000) -> float:
    """Section 7.2: Monte-Carlo estimate of the multi-bank factor alpha."""
    params = security.mopac_c_params(trh)
    return security.estimate_alpha(params.critical_updates, params.p,
                                   trials=trials)


# ----------------------------------------------------------------------
# Simulation experiments
# ----------------------------------------------------------------------
@dataclass
class SlowdownTable:
    """Per-workload slowdowns for several configurations."""

    label: str
    columns: list[str] = field(default_factory=list)
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def add(self, workload: str, column: str, value: float) -> None:
        if column not in self.columns:
            self.columns.append(column)
        self.rows.setdefault(workload, {})[column] = value

    def column_average(self, column: str) -> float:
        values = [row[column] for row in self.rows.values()
                  if column in row]
        return sum(values) / len(values) if values else 0.0

    def averages(self) -> dict[str, float]:
        return {column: self.column_average(column)
                for column in self.columns}


def _slowdown_table(label: str, design_columns: list[tuple[str, str, int]],
                    workloads=None, instructions=None,
                    **overrides) -> SlowdownTable:
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    table = SlowdownTable(label=label)
    grid = [(workload, column,
             DesignPoint(workload=workload, design=design, trh=trh,
                         instructions=instructions, **overrides))
            for workload in workloads
            for column, design, trh in design_columns]
    _prefetch([point for _, _, point in grid])
    for workload, column, point in grid:
        table.add(workload, column, slowdown(point))
    return table


def fig2_prac_slowdown(workloads=None, instructions=None,
                       trhs=(4000, 500, 100)) -> SlowdownTable:
    """Figure 2: PRAC slowdown at several thresholds (should be flat)."""
    columns = [(f"prac@{trh}", "prac", trh) for trh in trhs]
    return _slowdown_table("fig2", columns, workloads, instructions)


def fig9_mopac_c(workloads=None, instructions=None,
                 trhs=(1000, 500, 250)) -> SlowdownTable:
    """Figure 9: PRAC vs MoPAC-C at T_RH 1000/500/250."""
    columns = [("prac", "prac", 500)]
    columns += [(f"mopac-c@{trh}", "mopac-c", trh) for trh in trhs]
    return _slowdown_table("fig9", columns, workloads, instructions)


def fig11_mopac_d(workloads=None, instructions=None,
                  trhs=(1000, 500, 250)) -> SlowdownTable:
    """Figure 11: PRAC vs MoPAC-D at T_RH 1000/500/250."""
    columns = [("prac", "prac", 500)]
    columns += [(f"mopac-d@{trh}", "mopac-d", trh) for trh in trhs]
    return _slowdown_table("fig11", columns, workloads, instructions)


def fig1_overview(workloads=None, instructions=None,
                  trhs=(4000, 2000, 1000, 500, 250)) -> SlowdownTable:
    """Figure 1(d): average slowdown of PRAC vs MoPAC-C/D across T_RH."""
    columns = [("prac", "prac", 500)]
    columns += [(f"mopac-c@{trh}", "mopac-c", trh) for trh in trhs]
    columns += [(f"mopac-d@{trh}", "mopac-d", trh) for trh in trhs]
    return _slowdown_table("fig1d", columns, workloads, instructions)


def fig12_drain_sweep(workloads=None, instructions=None,
                      trhs=(1000, 500, 250),
                      drains=(0, 1, 2, 4)) -> SlowdownTable:
    """Figure 12: MoPAC-D slowdown vs drain-on-REF rate."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    table = SlowdownTable(label="fig12")
    grid = [(workload, f"trh{trh}/drain{drain}",
             DesignPoint(workload=workload, design="mopac-d",
                         trh=trh, drain_on_ref=drain,
                         instructions=instructions))
            for workload in workloads
            for trh in trhs for drain in drains]
    _prefetch([point for _, _, point in grid])
    for workload, column, point in grid:
        table.add(workload, column, slowdown(point))
    return table


def fig13_srq_sweep(workloads=None, instructions=None,
                    trhs=(1000, 500, 250),
                    sizes=(8, 16, 32)) -> SlowdownTable:
    """Figure 13: MoPAC-D slowdown vs SRQ size."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    table = SlowdownTable(label="fig13")
    grid = [(workload, f"trh{trh}/srq{size}",
             DesignPoint(workload=workload, design="mopac-d",
                         trh=trh, srq_size=size,
                         instructions=instructions))
            for workload in workloads
            for trh in trhs for size in sizes]
    _prefetch([point for _, _, point in grid])
    for workload, column, point in grid:
        table.add(workload, column, slowdown(point))
    return table


def fig17_nup(workloads=None, instructions=None,
              trhs=(1000, 500, 250)) -> SlowdownTable:
    """Figure 17: MoPAC-D with and without NUP."""
    columns = []
    for trh in trhs:
        columns.append((f"uniform@{trh}", "mopac-d", trh))
        columns.append((f"nup@{trh}", "mopac-d-nup", trh))
    return _slowdown_table("fig17", columns, workloads, instructions)


def tab12_srq_insertions(workloads=None, instructions=None,
                         trhs=(1000, 500, 250)) -> dict:
    """Table 12: SRQ insertions per 100 ACTs, uniform vs NUP."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    out: dict[int, dict[str, float]] = {}
    _prefetch([DesignPoint(workload=workload, design=design,
                           trh=trh, instructions=instructions)
               for trh in trhs for workload in workloads
               for design in ("mopac-d", "mopac-d-nup")])
    for trh in trhs:
        rates = {"uniform": [], "nup": []}
        for workload in workloads:
            for label, design in (("uniform", "mopac-d"),
                                  ("nup", "mopac-d-nup")):
                point = DesignPoint(workload=workload, design=design,
                                    trh=trh, instructions=instructions)
                result = simulate(point)
                acts = sum(s["activations"] for s in result.policy_stats)
                ins = sum(s["srq_insertions"] for s in result.policy_stats)
                if acts:
                    rates[label].append(100.0 * ins / acts)
        out[trh] = {label: (sum(vals) / len(vals) if vals else 0.0)
                    for label, vals in rates.items()}
    return out


def fig18_rowpress(workloads=None, instructions=None,
                   trhs=(1000, 500)) -> SlowdownTable:
    """Figure 18: slowdowns with Row-Press-aware ATH* (Appendix A)."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    table = SlowdownTable(label="fig18")
    grid = [(workload, f"{design}@{trh}{'+rp' if rp else ''}",
             DesignPoint(workload=workload, design=design,
                         trh=trh, rowpress=rp,
                         instructions=instructions))
            for workload in workloads for trh in trhs
            for design in ("mopac-c", "mopac-d")
            for rp in (False, True)]
    _prefetch([point for _, _, point in grid])
    for workload, column, point in grid:
        table.add(workload, column, slowdown(point))
    return table


def fig19_chips(workloads=None, instructions=None,
                trhs=(250, 500, 1000),
                chip_counts=(1, 2, 4, 8, 16)) -> SlowdownTable:
    """Figure 19: MoPAC-D sensitivity to the number of chips (App. B)."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    table = SlowdownTable(label="fig19")
    grid = [(workload, f"trh{trh}/chips{chips}",
             DesignPoint(workload=workload, design="mopac-d",
                         trh=trh, chips=chips,
                         instructions=instructions))
            for workload in workloads
            for trh in trhs for chips in chip_counts]
    _prefetch([point for _, _, point in grid])
    for workload, column, point in grid:
        table.add(workload, column, slowdown(point))
    return table


def tab15_closure(workloads=None, instructions=None,
                  policies=("open", "close", "ton100", "ton200"),
                  trhs=(1000, 500, 250)) -> dict:
    """Table 15: PRAC and MoPAC-D under different row-closure policies."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    out: dict[str, dict[str, float]] = {}
    _prefetch(
        [DesignPoint(workload=workload, design="prac", trh=500,
                     page_policy=policy, instructions=instructions)
         for policy in policies for workload in workloads] +
        [DesignPoint(workload=workload, design="mopac-d", trh=trh,
                     page_policy=policy, instructions=instructions)
         for policy in policies for trh in trhs
         for workload in workloads])
    for policy in policies:
        row: dict[str, float] = {}
        vals = []
        for workload in workloads:
            point = DesignPoint(workload=workload, design="prac", trh=500,
                                page_policy=policy,
                                instructions=instructions)
            vals.append(slowdown(point))
        row["prac"] = sum(vals) / len(vals)
        for trh in trhs:
            vals = []
            for workload in workloads:
                point = DesignPoint(workload=workload, design="mopac-d",
                                    trh=trh, page_policy=policy,
                                    instructions=instructions)
                vals.append(slowdown(point))
            row[f"mopac-d@{trh}"] = sum(vals) / len(vals)
        out[policy] = row
    return out


def tab4_characteristics(workloads=None, instructions=None) -> dict:
    """Table 4: measured workload characteristics of the synthetic suite."""
    workloads = workloads or selected_workloads()
    instructions = instructions or instruction_budget()
    out = {}
    _prefetch([DesignPoint(workload=workload, design="baseline",
                           instructions=instructions,
                           collect_row_activity=True)
               for workload in workloads])
    for workload in workloads:
        point = DesignPoint(workload=workload, design="baseline",
                            instructions=instructions,
                            collect_row_activity=True)
        result = simulate(point)
        total_inst = sum(s.instructions for s in result.core_stats)
        activity = result.row_activity
        out[workload] = {
            "mpki": 1000.0 * result.total_requests / total_inst,
            "rbhr": result.row_buffer_hit_rate,
            "apri": activity.apri if activity else 0.0,
            "act64": activity.act64 if activity else 0.0,
            "act200": activity.act200 if activity else 0.0,
        }
    return out


def stream_subset(table: SlowdownTable) -> dict[str, float]:
    """Average of each column over the STREAM workloads present."""
    out = {}
    for column in table.columns:
        values = [row[column] for name, row in table.rows.items()
                  if name in STREAM_NAMES and column in row]
        if values:
            out[column] = sum(values) / len(values)
    return out
