"""Experiment drivers and table rendering for every paper table/figure."""

from . import experiments, plots, tables
from .experiments import (FAST_WORKLOADS, SlowdownTable, fig1_overview,
                          fig2_prac_slowdown, fig4_latency, fig9_mopac_c,
                          fig11_mopac_d, fig12_drain_sweep, fig13_srq_sweep,
                          fig14_alpha, fig17_nup, fig18_rowpress,
                          fig19_chips, instruction_budget,
                          selected_workloads, stream_subset,
                          tab2_moat_ath, tab4_characteristics, tab5_budgets,
                          tab6_pe1_grid, tab7_mopac_c, tab8_mopac_d,
                          tab9_attacks_c, tab10_attacks_d, tab11_nup,
                          tab12_srq_insertions, tab13_tolerated,
                          tab14_rowpress, tab15_closure)

__all__ = [
    "FAST_WORKLOADS", "SlowdownTable", "experiments", "fig1_overview",
    "fig2_prac_slowdown", "fig4_latency", "fig9_mopac_c", "fig11_mopac_d",
    "fig12_drain_sweep", "fig13_srq_sweep", "fig14_alpha", "fig17_nup",
    "fig18_rowpress", "fig19_chips", "instruction_budget",
    "selected_workloads", "stream_subset", "tab2_moat_ath",
    "tab4_characteristics", "tab5_budgets", "tab6_pe1_grid",
    "tab7_mopac_c", "tab8_mopac_d", "tab9_attacks_c", "tab10_attacks_d",
    "tab11_nup", "tab12_srq_insertions", "tab13_tolerated",
    "tab14_rowpress", "tab15_closure", "tables", "plots",
]
