"""Plain-text rendering of the reproduced tables and figures.

Each ``render_*`` function takes the data structure produced by the
matching :mod:`repro.analysis.experiments` driver and returns a string
shaped like the paper's table, with the paper's published value alongside
where available — this is what the benchmark harness prints and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable

from .experiments import SlowdownTable

#: Published reference numbers used in side-by-side rendering.
PAPER = {
    "tab2_ath": {1000: 975, 500: 472, 250: 219},
    "tab7_ath_star": {250: 80, 500: 176, 1000: 368},
    "tab7_c": {250: 20, 500: 22, 1000: 23},
    "tab7_p": {250: "1/4", 500: "1/8", 1000: "1/16"},
    "tab8_ath_star": {250: 60, 500: 152, 1000: 336},
    "tab8_c": {250: 15, 500: 19, 1000: 21},
    "tab8_drain": {250: 4, 500: 2, 1000: 1},
    "tab9_slowdown": {250: 0.140, 500: 0.067, 1000: 0.032},
    "tab10": {
        250: {"mitigation": 0.166, "srq_full": 0.259, "tardiness": 0.179},
        500: {"mitigation": 0.074, "srq_full": 0.149, "tardiness": 0.179},
        1000: {"mitigation": 0.035, "srq_full": 0.081, "tardiness": 0.179},
    },
    "tab11_nup": {1000: 288, 500: 136, 250: 56},
    "tab13": {
        240: {"mopac_d": 250, "mint": 1491, "pride": 1975},
        120: {"mopac_d": 500, "mint": 2920, "pride": 3808},
        60: {"mopac_d": 1000, "mint": 5725, "pride": 7474},
    },
    "tab14": {500: {"mopac_c": 80, "mopac_d": 64},
              1000: {"mopac_c": 160, "mopac_d": 144}},
    "fig2_avg": 0.10,
    "fig9_avg": {1000: 0.008, 500: 0.018, 250: 0.030},
    "fig11_avg": {1000: 0.001, 500: 0.008, 250: 0.035},
    "fig17_nup_avg": {1000: 0.00, 500: 0.00, 250: 0.011},
    "tab12": {1000: {"uniform": 6.2, "nup": 3.1},
              500: {"uniform": 12.5, "nup": 6.3},
              250: {"uniform": 25.0, "nup": 13.4}},
    "alpha": 0.55,
}


def _rows(lines: Iterable[str]) -> str:
    return "\n".join(lines) + "\n"


def render_slowdown_table(table: SlowdownTable,
                          title: str = "") -> str:
    """Generic per-workload slowdown table with a column-average footer."""
    columns = table.columns
    width = max((len(c) for c in columns), default=8) + 2
    header = f"{'workload':12s}" + "".join(f"{c:>{width}s}" for c in columns)
    lines = [title or table.label, header, "-" * len(header)]
    for workload, row in table.rows.items():
        cells = "".join(
            f"{row.get(c, float('nan')):>{width}.1%}" for c in columns)
        lines.append(f"{workload:12s}{cells}")
    averages = table.averages()
    cells = "".join(f"{averages[c]:>{width}.1%}" for c in columns)
    lines.append("-" * len(header))
    lines.append(f"{'AVERAGE':12s}{cells}")
    return _rows(lines)


def render_tab2(ath: dict[int, int]) -> str:
    lines = ["Table 2: MOAT ALERT Threshold (ATH)",
             f"{'T_RH':>6s} {'ATH (ours)':>12s} {'ATH (paper)':>12s}"]
    for trh, value in sorted(ath.items(), reverse=True):
        paper = PAPER["tab2_ath"].get(trh, "-")
        lines.append(f"{trh:>6d} {value:>12d} {paper!s:>12s}")
    return _rows(lines)


def render_tab5(budgets) -> str:
    lines = ["Table 5: F and epsilon vs threshold",
             f"{'T':>6s} {'F':>12s} {'epsilon':>12s}"]
    for b in budgets:
        lines.append(f"{b.trh:>6d} {b.failure_probability:>12.3e} "
                     f"{b.epsilon:>12.3e}")
    return _rows(lines)


def render_tab6(grid: dict) -> str:
    thresholds = sorted(grid)
    lines = ["Table 6: P(N <= C) relative to epsilon",
             f"{'C':>4s}" + "".join(f"{f'T={t}':>22s}" for t in thresholds)]
    c_values = sorted(next(iter(grid.values())))
    for c in c_values:
        cells = ""
        for t in thresholds:
            prob, ratio = grid[t][c]
            cells += f"{prob:>12.1e} ({ratio:>5.2f}x)"
        lines.append(f"{c:>4d}{cells}")
    return _rows(lines)


def render_params_table(params_list, title: str, paper_key: str) -> str:
    lines = [title,
             f"{'T_RH':>6s} {'A':>6s} {'p':>8s} {'C':>4s} "
             f"{'ATH*':>6s} {'paper ATH*':>11s}"]
    for p in params_list:
        paper = PAPER[paper_key].get(p.trh, "-")
        lines.append(
            f"{p.trh:>6d} {p.effective_acts:>6d} 1/{p.inv_p:<6d} "
            f"{p.critical_updates:>4d} {p.ath_star:>6d} {paper!s:>11s}")
    return _rows(lines)


def render_tab9(reports) -> str:
    lines = ["Table 9: performance attacks on MoPAC-C",
             f"{'T_RH':>6s} {'ACTs/ABO':>10s} {'slowdown':>10s} "
             f"{'paper':>8s}"]
    for r in reports:
        paper = PAPER["tab9_slowdown"].get(r.trh)
        lines.append(f"{r.trh:>6d} {r.acts_between_abo:>10.1f} "
                     f"{r.slowdown:>10.1%} {paper:>8.1%}")
    return _rows(lines)


def render_tab10(table: dict) -> str:
    lines = ["Table 10: performance attacks on MoPAC-D",
             f"{'T_RH':>6s} {'attack':>12s} {'slowdown':>10s} "
             f"{'paper':>8s}"]
    for trh, attacks in sorted(table.items()):
        for name, report in attacks.items():
            paper = PAPER["tab10"][trh][name]
            lines.append(f"{trh:>6d} {name:>12s} "
                         f"{report.slowdown:>10.1%} {paper:>8.1%}")
    return _rows(lines)


def render_tab11(rows) -> str:
    lines = ["Table 11: ATH* with and without NUP",
             f"{'T_RH':>6s} {'uniform':>9s} {'NUP':>6s} {'paper NUP':>10s}"]
    for r in rows:
        paper = PAPER["tab11_nup"].get(r.trh, "-")
        lines.append(f"{r.trh:>6d} {r.uniform_ath_star:>9d} "
                     f"{r.nup_ath_star:>6d} {paper!s:>10s}")
    return _rows(lines)


def render_tab13(rows) -> str:
    lines = ["Table 13: tolerated T_RH vs mitigation time per REF",
             f"{'ns/REF':>7s} {'MoPAC-D':>8s} {'MINT':>6s} {'(x)':>6s} "
             f"{'PrIDE':>6s} {'(x)':>6s} {'paper MINT':>11s} "
             f"{'paper PrIDE':>12s}"]
    for r in rows:
        paper = PAPER["tab13"][int(r.mitigation_ns_per_ref)]
        lines.append(
            f"{r.mitigation_ns_per_ref:>7.0f} {r.mopac_d:>8d} "
            f"{r.mint:>6d} {r.mint_ratio:>5.1f}x {r.pride:>6d} "
            f"{r.pride_ratio:>5.1f}x {paper['mint']:>11d} "
            f"{paper['pride']:>12d}")
    return _rows(lines)


def render_tab14(table: dict) -> str:
    lines = ["Table 14: Row-Press-aware ATH*",
             f"{'T_RH':>6s} {'MoPAC-C':>8s} {'MoPAC-D':>8s} "
             f"{'paper C':>8s} {'paper D':>8s}"]
    for trh, row in sorted(table.items()):
        paper = PAPER["tab14"][trh]
        lines.append(f"{trh:>6d} {row['mopac_c']:>8d} {row['mopac_d']:>8d} "
                     f"{paper['mopac_c']:>8d} {paper['mopac_d']:>8d}")
    return _rows(lines)


def render_tab12(table: dict) -> str:
    lines = ["Table 12: SRQ insertions per 100 ACTs",
             f"{'T_RH':>6s} {'uniform':>9s} {'NUP':>7s} "
             f"{'paper uni':>10s} {'paper NUP':>10s}"]
    for trh, row in sorted(table.items(), reverse=True):
        paper = PAPER["tab12"][trh]
        lines.append(f"{trh:>6d} {row['uniform']:>9.1f} {row['nup']:>7.1f} "
                     f"{paper['uniform']:>10.1f} {paper['nup']:>10.1f}")
    return _rows(lines)


def render_tab4(table: dict) -> str:
    lines = ["Table 4: measured synthetic workload characteristics",
             f"{'workload':12s} {'MPKI':>7s} {'RBHR':>6s} {'APRI':>7s} "
             f"{'ACT64+':>7s} {'ACT200+':>8s}"]
    for name, row in table.items():
        lines.append(f"{name:12s} {row['mpki']:>7.1f} {row['rbhr']:>6.2f} "
                     f"{row['apri']:>7.1f} {row['act64']:>7.1f} "
                     f"{row['act200']:>8.1f}")
    return _rows(lines)


def render_tab15(table: dict) -> str:
    columns = list(next(iter(table.values())))
    header = f"{'policy':>10s}" + "".join(f"{c:>14s}" for c in columns)
    lines = ["Table 15: slowdowns with proactive row closure", header]
    for policy, row in table.items():
        cells = "".join(f"{row[c]:>14.1%}" for c in columns)
        lines.append(f"{policy:>10s}{cells}")
    return _rows(lines)
