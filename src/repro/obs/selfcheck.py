"""Observability self-check (``python -m repro.obs.selfcheck``).

Verifies the three contracts of the ``repro.obs`` layer on a small
ABO-heavy run (MoPAC-D under SRQ pressure, so ALERT/RFM traffic is
guaranteed):

1. **Determinism** — two fresh runs of the same design point produce
   bit-identical stats snapshots (wall-time phases are the only
   machine-dependent part of a result and are excluded by design).
2. **Zero perturbation** — running with the event tracer attached
   changes neither the IPCs nor a single stats-snapshot entry.
3. **Trace/stats agreement** — the traced ACT, ALERT, and RFM event
   counts equal the memory controllers' counters exactly, and the
   exported Chrome trace document is well-formed JSON with one record
   per buffered event.

Exit status 0 on success; 1 with a diagnostic otherwise. CI runs this
via ``make obs-smoke``.
"""

from __future__ import annotations

import argparse
import json
import tempfile

from ..obs.log import configure, get_logger
from ..obs.tracer import EventTracer

log = get_logger("repro.obs.selfcheck")

#: An ALERT-guaranteed point: every episode samples into a tiny SRQ.
ABO_POINT = dict(workload="hammer", design="mopac-d", trh=250,
                 instructions=12_000, rows_per_bank=128,
                 refresh_scale=1 / 256, p=1.0, srq_size=5,
                 drain_on_ref=0)


def run_selfcheck() -> int:
    from ..sim.runner import DesignPoint, run_point

    point = DesignPoint(**ABO_POINT)

    first = run_point(point)
    second = run_point(point)
    if first.stats != second.stats:
        diff = [k for k in first.stats
                if first.stats[k] != second.stats.get(k)]
        log.error("FAIL: stats snapshot not deterministic; differing "
                  "keys: %s", diff[:10])
        return 1
    log.info("determinism: %d snapshot entries bit-identical across "
             "two fresh runs", len(first.stats))

    tracer = EventTracer()
    traced = run_point(point, tracer=tracer)
    if traced.ipcs != first.ipcs or traced.stats != first.stats:
        log.error("FAIL: enabling the tracer perturbed the simulation")
        return 1
    log.info("zero perturbation: traced run matches untraced run")

    counts = tracer.counts()
    acts = sum(s.activations for s in traced.mc_stats)
    alerts = sum(s.alerts for s in traced.mc_stats)
    rfms = sum(s.rfm_commands for s in traced.mc_stats)
    checks = (("ACT", acts), ("ALERT", alerts), ("RFM", rfms))
    for kind, expected in checks:
        got = counts.get(kind, 0)
        if got != expected:
            log.error("FAIL: %d %s trace events but mc stats count %d",
                      got, kind, expected)
            return 1
    if alerts == 0:
        log.error("FAIL: the ABO point produced no ALERTs; the check "
                  "is vacuous")
        return 1
    log.info("trace/stats agreement: %d ACT, %d ALERT, %d RFM events "
             "match controller counters", acts, alerts, rfms)

    with tempfile.NamedTemporaryFile("w+", suffix=".json") as handle:
        written = tracer.to_chrome_trace(handle)
        handle.seek(0)
        document = json.load(handle)
    if written != len(tracer) or len(document["traceEvents"]) != written:
        log.error("FAIL: Chrome trace export lost events")
        return 1
    log.info("chrome trace export: %d events, %d dropped", written,
             tracer.dropped)
    log.info("OK: observability self-check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.selfcheck", description=__doc__.splitlines()[0])
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    return run_selfcheck()


if __name__ == "__main__":
    raise SystemExit(main())
