"""Observability self-check (``python -m repro.obs.selfcheck``).

Verifies the three contracts of the ``repro.obs`` layer on a small
ABO-heavy run (MoPAC-D under SRQ pressure, so ALERT/RFM traffic is
guaranteed):

1. **Determinism** — two fresh runs of the same design point produce
   bit-identical stats snapshots (wall-time phases are the only
   machine-dependent part of a result and are excluded by design).
2. **Zero perturbation** — running with the event tracer attached
   changes neither the IPCs nor a single stats-snapshot entry.
3. **Trace/stats agreement** — the traced ACT, ALERT, and RFM event
   counts equal the memory controllers' counters exactly, and the
   exported Chrome trace document is well-formed JSON with one record
   per buffered event.
4. **Spans** — installing a :class:`~repro.obs.spans.SpanTracer`
   perturbs nothing either (same IPCs, same stats snapshot), the span
   *structure* (ids, names, parent links) is deterministic across runs
   and across the reference/fast engines, and the Chrome-trace export
   round-trips.
5. **Daemon metrics** (skipped with ``--no-serve``) — a short-lived
   ``repro.serve`` daemon answers ``GET /metrics`` with parseable
   Prometheus text and buffers a ``serve.job`` span tree for a
   submitted job.

Exit status 0 on success; 1 with a diagnostic otherwise. CI runs this
via ``make obs-smoke``.
"""

from __future__ import annotations

import argparse
import json
import tempfile

from ..obs.log import configure, get_logger
from ..obs.spans import SpanTracer, install as install_spans, \
    uninstall as uninstall_spans
from ..obs.tracer import EventTracer

log = get_logger("repro.obs.selfcheck")

#: An ALERT-guaranteed point: every episode samples into a tiny SRQ.
ABO_POINT = dict(workload="hammer", design="mopac-d", trh=250,
                 instructions=12_000, rows_per_bank=128,
                 refresh_scale=1 / 256, p=1.0, srq_size=5,
                 drain_on_ref=0)


def run_selfcheck() -> int:
    from ..sim.runner import DesignPoint, run_point

    point = DesignPoint(**ABO_POINT)

    first = run_point(point)
    second = run_point(point)
    if first.stats != second.stats:
        diff = [k for k in first.stats
                if first.stats[k] != second.stats.get(k)]
        log.error("FAIL: stats snapshot not deterministic; differing "
                  "keys: %s", diff[:10])
        return 1
    log.info("determinism: %d snapshot entries bit-identical across "
             "two fresh runs", len(first.stats))

    tracer = EventTracer()
    traced = run_point(point, tracer=tracer)
    if traced.ipcs != first.ipcs or traced.stats != first.stats:
        log.error("FAIL: enabling the tracer perturbed the simulation")
        return 1
    log.info("zero perturbation: traced run matches untraced run")

    counts = tracer.counts()
    acts = sum(s.activations for s in traced.mc_stats)
    alerts = sum(s.alerts for s in traced.mc_stats)
    rfms = sum(s.rfm_commands for s in traced.mc_stats)
    checks = (("ACT", acts), ("ALERT", alerts), ("RFM", rfms))
    for kind, expected in checks:
        got = counts.get(kind, 0)
        if got != expected:
            log.error("FAIL: %d %s trace events but mc stats count %d",
                      got, kind, expected)
            return 1
    if alerts == 0:
        log.error("FAIL: the ABO point produced no ALERTs; the check "
                  "is vacuous")
        return 1
    log.info("trace/stats agreement: %d ACT, %d ALERT, %d RFM events "
             "match controller counters", acts, alerts, rfms)

    with tempfile.NamedTemporaryFile("w+", suffix=".json") as handle:
        written = tracer.to_chrome_trace(handle)
        handle.seek(0)
        document = json.load(handle)
    if written != len(tracer) or len(document["traceEvents"]) != written:
        log.error("FAIL: Chrome trace export lost events")
        return 1
    log.info("chrome trace export: %d events, %d dropped", written,
             tracer.dropped)

    if check_spans(point, first) != 0:
        return 1

    log.info("OK: observability self-check passed")
    return 0


def _span_structure(spans: SpanTracer) -> list[tuple[int, int | None, str]]:
    return [(record.span_id, record.parent_id, record.name)
            for record in spans.spans()]


def check_spans(point, baseline) -> int:
    """Step 4: span tracing is zero-perturbation and deterministic."""
    from ..sim.runner import run_point

    structures = {}
    for engine in ("reference", "fast"):
        spans = SpanTracer()
        token = install_spans(spans)
        try:
            result = run_point(point, engine=engine)
        finally:
            uninstall_spans(token)
        if result.ipcs != baseline.ipcs or result.stats != baseline.stats:
            log.error("FAIL: installing the span tracer perturbed the "
                      "%s-engine simulation", engine)
            return 1
        if not spans.spans("sim.run"):
            log.error("FAIL: no sim.run span recorded (%s engine)",
                      engine)
            return 1
        structures[engine] = _span_structure(spans)
    if structures["reference"] != structures["fast"]:
        log.error("FAIL: span structure differs between engines: "
                  "%s vs %s", structures["reference"][:5],
                  structures["fast"][:5])
        return 1

    # same engine twice: structure (not timestamps) must be identical
    spans = SpanTracer()
    token = install_spans(spans)
    try:
        run_point(point)
    finally:
        uninstall_spans(token)
    if _span_structure(spans) != structures["reference"]:
        log.error("FAIL: span structure not deterministic across runs")
        return 1

    with tempfile.NamedTemporaryFile("w+", suffix=".json") as handle:
        written = spans.to_chrome_trace(handle)
        handle.seek(0)
        document = json.load(handle)
    # one metadata record precedes the span events
    if len(document["traceEvents"]) != written \
            or written != len(spans.spans()) + 1:
        log.error("FAIL: span Chrome-trace export lost records")
        return 1
    log.info("spans: zero perturbation, %d-span structure identical "
             "across engines and runs", len(spans.spans()))
    return 0


def check_serve_metrics() -> int:
    """Step 5: a live daemon serves Prometheus metrics and spans."""
    import pathlib

    from ..obs.exposition import parse_prometheus
    from ..serve import smoke
    from ..serve.client import ServeClient

    with tempfile.TemporaryDirectory(prefix="repro-obs-serve-") as root:
        state = pathlib.Path(root) / "state"
        address = f"unix:{pathlib.Path(root) / 'serve.sock'}"
        process = smoke.start_server(state, address, workers=2,
                                     max_jobs=2, drain_s=2.0)
        try:
            client = ServeClient(address)
            client.wait_ready()
            job_id = client.submit(smoke.smoke_points()[:2])
            client.wait(job_id, timeout_s=240.0)

            content_type, text = client.metrics_text()
            if "version=0.0.4" not in content_type:
                log.error("FAIL: /metrics content type %r is not the "
                          "Prometheus 0.0.4 exposition", content_type)
                return 1
            parsed = parse_prometheus(text)
            if parsed.get("repro_serve_jobs_completed", 0) < 1:
                log.error("FAIL: /metrics reports no completed jobs: %r",
                          {k: v for k, v in parsed.items()
                           if "jobs" in k})
                return 1
            spans = client.spans(name="serve.job")["spans"]
            if not any(s["attrs"].get("job_id") == job_id
                       for s in spans):
                log.error("FAIL: no serve.job span for %s", job_id)
                return 1
        finally:
            smoke.stop_server(process)
    log.info("daemon metrics: /metrics parses (%d samples) and the "
             "job span tree is buffered", len(parsed))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.selfcheck", description=__doc__.splitlines()[0])
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures")
    parser.add_argument("--no-serve", action="store_true",
                        help="skip the live-daemon /metrics scrape "
                             "(steps 1-4 only)")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    status = run_selfcheck()
    if status == 0 and not args.no_serve:
        status = check_serve_metrics()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
