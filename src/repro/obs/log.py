"""Structured logging for the repro package.

All library and tool diagnostics flow through stdlib :mod:`logging`
under the ``repro`` namespace — ``get_logger(__name__)`` in library
modules, ``configure()`` once in tool entry points. *Program output*
(rendered tables, CSV paths, attack verdicts) stays on stdout; logging
is for progress and diagnostics and goes to stderr.

Level resolution, highest priority first:

1. an explicit ``configure(level=...)`` argument (tools map ``--quiet``
   to ``"warning"``),
2. the ``REPRO_LOG`` environment variable (``debug`` / ``info`` /
   ``warning`` / ``error``),
3. the default, ``info``.

Library code may log without any configuration: un-configured loggers
fall back to stdlib behaviour (warnings and above on stderr), so
importing :mod:`repro` never hijacks the host application's logging.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: Environment variable naming the default log level.
LEVEL_ENV = "REPRO_LOG"

#: Root of the package's logger namespace.
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


def resolve_level(level: str | None = None) -> int:
    """Map a level name (or ``REPRO_LOG``, or the default) to an int.

    An explicit argument wins; otherwise ``REPRO_LOG`` goes through the
    strict knob parser (a typo'd level raises
    :class:`~repro.exec.env.EnvKnobError` naming the variable).
    """
    if level is None:
        # deferred: repro.exec's package init imports modules that log,
        # so a top-level import here would be circular
        from ..exec.env import env_choice
        name = env_choice(LEVEL_ENV, tuple(_LEVELS), "info")
    else:
        name = level.strip().lower()
    try:
        return _LEVELS[name]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; choose from "
            f"{', '.join(_LEVELS)}") from None


def get_logger(name: str = ROOT) -> logging.Logger:
    """Logger under the ``repro`` namespace.

    Accepts both ``__name__`` of a repro module (used as-is) and short
    suffixes (``"campaign"`` becomes ``"repro.campaign"``).
    """
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def configure(level: str | None = None,
              stream: IO[str] | None = None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root and set its level.

    Idempotent: repeated calls re-level the existing handler rather than
    stacking new ones, and a later call with an explicit ``level`` (or a
    changed ``REPRO_LOG``) takes effect immediately.
    """
    root = logging.getLogger(ROOT)
    resolved = resolve_level(level)
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.setLevel(resolved)
    root.propagate = False
    return root
