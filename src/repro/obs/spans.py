"""Request-scoped spans: context-propagated wall-time intervals.

Where :mod:`repro.obs.tracer` records *simulated* DRAM events on the
picosecond clock, this module records *wall-clock* intervals of the
serving and execution stack — one job's submit → queue → dedup/cache
lookup → pool execute → cache write → reply lifecycle — into a bounded
ring, exportable as Chrome trace-event JSON so Perfetto renders the job
tree, optionally alongside the DRAM event trace.

Design rules (mirroring the PR 2 tracer):

* **zero perturbation when disabled** — :func:`span` is a no-op context
  manager unless a :class:`SpanTracer` has been :func:`install`\\ ed in
  the current :mod:`contextvars` context: no clock reads, no
  allocations beyond the context-manager object, and never any RNG, so
  a spans-off run is bit-identical to one before this module existed
  (``repro.obs.selfcheck`` proves it);
* **deterministic ids** — span ids come from a plain
  ``itertools.count`` private to each tracer, independent of
  :mod:`repro.rng` and of wall time, so the *structure* of a trace
  (ids, names, parent links) is reproducible even though the
  timestamps are wall-clock;
* **context propagation** — the active span lives in a context
  variable; asyncio tasks copy the context at creation, so a span
  entered before ``asyncio.gather(...)`` is the parent of every span
  opened inside the gathered coroutines, across await boundaries,
  without threading any argument through the call graph.

Usage::

    tracer = SpanTracer()
    token = install(tracer)
    with span("serve.execute", job_id="job-1"):
        with span("serve.cache_lookup", key=key):
            ...
    uninstall(token)
    tracer.to_chrome_trace("job.trace.json")
"""

from __future__ import annotations

import collections
import contextvars
import itertools
import json
import time
from typing import IO, Any, Iterable

#: Default ring capacity: a few thousand jobs' worth of lifecycle spans.
DEFAULT_CAPACITY = 65_536

_tracer_var: contextvars.ContextVar["SpanTracer | None"] = \
    contextvars.ContextVar("repro_span_tracer", default=None)
_span_var: contextvars.ContextVar["Span | None"] = \
    contextvars.ContextVar("repro_active_span", default=None)


class Span:
    """One recorded interval; ``end_ns`` is None while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "start_ns", "end_ns",
                 "attrs")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start_ns: int, attrs: dict[str, Any]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.attrs = attrs

    @property
    def duration_ns(self) -> int:
        """Span length; 0 while still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.span_id}, {self.name!r}, "
                f"parent={self.parent_id}, dur={self.duration_ns}ns)")


class SpanTracer:
    """Bounded ring of spans with deterministic counter ids."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter_ns):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.clock = clock
        self._ids = itertools.count(1)
        self._ring: collections.deque[Span] = \
            collections.deque(maxlen=capacity)
        self.dropped = 0

    # -- recording ---------------------------------------------------------
    def begin(self, name: str, parent_id: int | None = None,
              **attrs: Any) -> Span:
        """Open a span now; the caller must :meth:`end` it."""
        record = Span(next(self._ids), parent_id, name, self.clock(), attrs)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        return record

    def end(self, record: Span) -> Span:
        record.end_ns = self.clock()
        return record

    def record(self, name: str, start_ns: int, end_ns: int,
               parent_id: int | None = None, **attrs: Any) -> Span:
        """Record a span retroactively from known timestamps.

        Used for intervals only observable after the fact, e.g. a job's
        queue wait (submit time to dispatch time).
        """
        record = Span(next(self._ids), parent_id, name, start_ns, attrs)
        record.end_ns = end_ns
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        return record

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- queries -----------------------------------------------------------
    def spans(self, name: str | None = None) -> list[Span]:
        """Buffered spans in begin order, optionally one name."""
        if name is None:
            return list(self._ring)
        return [record for record in self._ring if record.name == name]

    def find(self, **attrs: Any) -> list[Span]:
        """Spans whose attributes include every given key/value."""
        return [record for record in self._ring
                if all(record.attrs.get(k) == v for k, v in attrs.items())]

    def children(self, span_id: int) -> list[Span]:
        return [record for record in self._ring
                if record.parent_id == span_id]

    def tree(self, root: Span) -> dict[str, Any]:
        """Nested ``{name, span, children: [...]}`` view under ``root``."""
        return {
            "name": root.name,
            "span": root,
            "children": [self.tree(child)
                         for child in self.children(root.span_id)],
        }

    # -- export ------------------------------------------------------------
    def to_jsonl(self, destination: str | IO[str]) -> int:
        """One JSON object per span; returns the span count."""
        def write(handle: IO[str]) -> int:
            written = 0
            for record in self._ring:
                handle.write(json.dumps(record.as_dict()) + "\n")
                written += 1
            return written
        return _with_handle(destination, write)

    def to_chrome_trace(self, destination: str | IO[str],
                        dram_tracer=None) -> int:
        """Write Chrome trace-event JSON (complete ``"X"`` events).

        Each root span's tree renders on its own ``tid`` (the root's
        span id), so concurrent jobs get separate swim-lanes. Open
        spans export with their duration so far.

        ``dram_tracer`` (an :class:`~repro.obs.tracer.EventTracer`)
        merges the simulated DRAM events into the same document under
        a separate process id. Note the time bases differ — spans are
        wall-clock nanoseconds since an arbitrary origin, DRAM events
        are simulated picoseconds since run start — so the combined
        view juxtaposes rather than aligns the two timelines.
        """
        def write(handle: IO[str]) -> int:
            events = self._chrome_events()
            if dram_tracer is not None:
                events.extend(_dram_chrome_events(dram_tracer))
            document = {
                "traceEvents": events,
                "displayTimeUnit": "ns",
                "otherData": {"dropped": self.dropped,
                              "source": "repro.obs.spans"},
            }
            json.dump(document, handle)
            return len(events)
        return _with_handle(destination, write)

    def _chrome_events(self) -> list[dict]:
        roots = _root_ids(self._ring)
        fallback = self.clock()
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0,
            "args": {"name": "repro.spans"},
        }]
        for record in self._ring:
            end = record.end_ns if record.end_ns is not None else fallback
            args = dict(record.attrs)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            events.append({
                "name": record.name,
                "ph": "X",
                "ts": record.start_ns / 1000.0,  # ns -> us
                "dur": max(end - record.start_ns, 0) / 1000.0,
                "pid": 0,
                "tid": roots.get(record.span_id, record.span_id),
                "args": args,
            })
        return events


def _root_ids(spans: Iterable[Span]) -> dict[int, int]:
    """Map each span id to the id of its tree root (for tid grouping).

    A parent evicted from the ring (or recorded out of order) makes the
    orphan its own root — the trace stays renderable either way.
    """
    by_id = {record.span_id: record for record in spans}
    roots: dict[int, int] = {}

    def resolve(span_id: int) -> int:
        if span_id in roots:
            return roots[span_id]
        record = by_id.get(span_id)
        if record is None or record.parent_id is None:
            roots[span_id] = span_id
        else:
            roots[span_id] = resolve(record.parent_id)
        return roots[span_id]

    for record in by_id:
        resolve(record)
    return roots


def _dram_chrome_events(tracer) -> list[dict]:
    """DRAM tracer events under pid 1000 + subchannel (spans own pid 0)."""
    events: list[dict] = []
    for event in tracer.events():
        args: dict[str, Any] = {"row": event.row}
        if event.cause:
            args["cause"] = event.cause
        events.append({
            "name": event.kind,
            "ph": "i",
            "s": "t",
            "ts": event.time_ps / 1e6,  # ps -> us
            "pid": 1000 + max(event.subchannel, 0),
            "tid": max(event.bank, 0),
            "args": args,
        })
    return events


def _with_handle(destination: str | IO[str], writer) -> int:
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return writer(handle)
    return writer(destination)


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------
def install(tracer: SpanTracer | None) -> contextvars.Token:
    """Make ``tracer`` the current context's span sink; returns a token."""
    return _tracer_var.set(tracer)


def uninstall(token: contextvars.Token) -> None:
    _tracer_var.reset(token)


def current_tracer() -> SpanTracer | None:
    return _tracer_var.get()


def current_span() -> Span | None:
    return _span_var.get()


class span:
    """Context manager opening a child of the context's active span.

    No-op (yields ``None``, reads no clock) when no tracer is installed
    — the zero-perturbation guarantee. ``parent`` overrides the
    context-derived parent span (pass a :class:`Span` or ``None`` for
    an explicit root).
    """

    _UNSET = object()

    __slots__ = ("name", "attrs", "parent", "_span", "_tracer", "_token")

    def __init__(self, name: str, parent: Any = _UNSET, **attrs: Any):
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self._span: Span | None = None
        self._tracer: SpanTracer | None = None
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span | None:
        tracer = _tracer_var.get()
        if tracer is None:
            return None
        if self.parent is span._UNSET:
            parent = _span_var.get()
        else:
            parent = self.parent
        parent_id = parent.span_id if parent is not None else None
        self._tracer = tracer
        self._span = tracer.begin(self.name, parent_id, **self.attrs)
        self._token = _span_var.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is not None:
            _span_var.reset(self._token)
            self._tracer.end(self._span)
        return False
