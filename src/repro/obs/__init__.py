"""Unified observability layer: stats registry, tracer, profiler, logging.

``repro.obs`` is the one place the rest of the stack reports into:

* :class:`~repro.obs.registry.StatsRegistry` — hierarchical counters /
  gauges / histograms, snapshotted into every
  :class:`~repro.sim.system.SystemResult` under a stable dotted
  namespace (``mc.0.row_hits``, ``mitigation.rfm_events``, …);
* :class:`~repro.obs.tracer.EventTracer` — opt-in bounded ring buffer
  of ACT/PRE/REF/RFM/ALERT/DRAIN/MITIGATE events, exportable as JSONL
  and Chrome trace-event JSON (open it in Perfetto);
* :class:`~repro.obs.profiler.PhaseProfiler` — context-manager wall
  timers whose breakdown travels with results and campaign output;
* :mod:`repro.obs.log` — stdlib logging under the ``repro`` namespace
  with a ``REPRO_LOG`` level knob.

Everything here is zero-cost when unused: tracing sites are guarded by
a single ``is not None`` check, stats snapshots are taken once per run
from the live dataclasses the simulator already maintains, and nothing
perturbs simulation behaviour or RNG streams.
"""

from .exposition import parse_prometheus, to_prometheus
from .log import configure as configure_logging
from .log import get_logger
from .profiler import PhaseProfiler
from .registry import Counter, Gauge, Histogram, StatsRegistry
from .spans import Span, SpanTracer, current_span, current_tracer
from .spans import install as install_spans
from .spans import span
from .spans import uninstall as uninstall_spans
from .timeseries import Series, SeriesBoard
from .tracer import EventTracer, TraceEvent, merge_events

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "PhaseProfiler",
    "Series",
    "SeriesBoard",
    "Span",
    "SpanTracer",
    "StatsRegistry",
    "TraceEvent",
    "configure_logging",
    "current_span",
    "current_tracer",
    "get_logger",
    "install_spans",
    "merge_events",
    "parse_prometheus",
    "span",
    "to_prometheus",
    "uninstall_spans",
]
