"""Phase profiler: context-manager wall-time breakdown of a run.

Usage::

    profiler = PhaseProfiler()
    with profiler.phase("tracegen"):
        traces = build_traces(...)
    with profiler.phase("sim"):
        result = system.run()
    result.phases = profiler.snapshot()   # {"tracegen": 0.01, "sim": 1.2}

Phases accumulate: re-entering a name adds to its total, so a loop that
alternates ``cache_io`` and ``simulate`` phases ends with two totals.
Phases may nest; times are *inclusive* (an outer phase contains its
inner phases' time), which keeps the implementation a single
``perf_counter`` pair per entry and the numbers easy to reason about.

The snapshot is a plain ``{name: seconds}`` dict in first-entered
order — it serialises into the result cache as-is. Wall times are of
course machine-dependent; they travel with the result as provenance
(what did the run that produced this spend its time on), and the
observability self-check compares everything *except* them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PhaseProfiler:
    """Accumulating named wall-time phases."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._entries: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._entries[name] = self._entries.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally-measured duration into a phase."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._entries[name] = self._entries.get(name, 0) + 1

    # -- queries -----------------------------------------------------------
    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def entries(self, name: str) -> int:
        return self._entries.get(name, 0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def snapshot(self) -> dict[str, float]:
        """``{phase: seconds}`` in first-entered order."""
        return dict(self._seconds)

    def summary(self) -> str:
        """One line: ``tracegen 0.01s | sim 1.20s (total 1.21s)``."""
        if not self._seconds:
            return "no phases recorded"
        parts = [f"{name} {seconds:.2f}s"
                 for name, seconds in self._seconds.items()]
        return " | ".join(parts) + f" (total {self.total:.2f}s)"
