"""Phase profiler: context-manager wall-time breakdown of a run.

Usage::

    profiler = PhaseProfiler()
    with profiler.phase("tracegen"):
        traces = build_traces(...)
    with profiler.phase("sim"):
        result = system.run()
    result.phases = profiler.snapshot()   # {"tracegen": 0.01, "sim": 1.2}

Phases accumulate: re-entering a name adds to its total, so a loop that
alternates ``cache_io`` and ``simulate`` phases ends with two totals.
Phases may nest; per-phase times are *inclusive* (an outer phase
contains its inner phases' time), which keeps each entry a single
``perf_counter`` pair and the snapshot numbers easy to reason about.

Nesting used to make :attr:`total` lie: summing inclusive times counts
every nested second once per enclosing phase, so the sweep engine's
``cache_io`` (nested inside ``simulate``) inflated the reported total.
The profiler now also tracks *exclusive* time — inclusive minus the
time spent in directly nested phases — and ``total`` sums that, so it
is the actual wall time covered, with every second attributed to
exactly one phase.

The snapshot is a plain ``{name: seconds}`` dict in first-entered
order — it serialises into the result cache as-is. Wall times are of
course machine-dependent; they travel with the result as provenance
(what did the run that produced this spend its time on), and the
observability self-check compares everything *except* them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PhaseProfiler:
    """Accumulating named wall-time phases."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._exclusive: dict[str, float] = {}
        self._entries: dict[str, int] = {}
        #: per-active-frame accumulator of time spent in nested phases
        self._stack: list[float] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        self._stack.append(0.0)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            nested = self._stack.pop()
            self._record(name, elapsed, elapsed - nested)

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally-measured duration into a phase.

        External durations (e.g. wall time measured inside a parallel
        worker) did not elapse on *this* profiler's clock, so they are
        never charged against an enclosing ``phase`` block — they count
        fully as their own phase's exclusive time.
        """
        self._record(name, seconds, seconds, nested=False)

    def _record(self, name: str, inclusive: float, exclusive: float,
                nested: bool = True) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + inclusive
        self._exclusive[name] = self._exclusive.get(name, 0.0) + exclusive
        self._entries[name] = self._entries.get(name, 0) + 1
        if nested and self._stack:
            self._stack[-1] += inclusive

    # -- queries -----------------------------------------------------------
    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def exclusive_seconds(self, name: str) -> float:
        """Time in ``name`` minus time in phases nested within it."""
        return self._exclusive.get(name, 0.0)

    def entries(self, name: str) -> int:
        return self._entries.get(name, 0)

    @property
    def total(self) -> float:
        """Wall time covered by phases, each second counted once."""
        return sum(self._exclusive.values())

    def snapshot(self) -> dict[str, float]:
        """``{phase: inclusive seconds}`` in first-entered order."""
        return dict(self._seconds)

    def exclusive_snapshot(self) -> dict[str, float]:
        """``{phase: exclusive seconds}`` in first-entered order."""
        return dict(self._exclusive)

    def summary(self) -> str:
        """One line: ``tracegen 0.01s | sim 1.20s (total 1.21s)``."""
        if not self._seconds:
            return "no phases recorded"
        parts = [f"{name} {seconds:.2f}s"
                 for name, seconds in self._seconds.items()]
        return " | ".join(parts) + f" (total {self.total:.2f}s)"
