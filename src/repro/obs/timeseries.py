"""Fixed-interval ring-buffer time series for daemon health signals.

A :class:`Series` is a bounded ring of float samples taken at a fixed
cadence; a :class:`SeriesBoard` owns a set of named series plus the
callables that produce their instantaneous values, and appends one
sample to every series per :meth:`SeriesBoard.sample` call. The serve
daemon runs a sampler task that calls ``sample()`` every
``interval_s`` and serves the rings from ``GET /metrics`` (see
``docs/observability.md``); ``python -m repro.obs.top`` renders them.

Like the rest of :mod:`repro.obs`, this is pull-based and passive: a
board that is never sampled costs nothing, and sampling reads the same
live counters/gauges the ``/stats`` snapshot uses — no simulation
state is touched.
"""

from __future__ import annotations

import collections
from typing import Any, Callable

#: Default ring length: 10 minutes of history at a 1 s cadence.
DEFAULT_CAPACITY = 600


class Series:
    """One named metric's bounded sample ring."""

    __slots__ = ("name", "capacity", "_ring", "samples")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._ring: collections.deque[float] = \
            collections.deque(maxlen=capacity)
        #: total samples ever appended (>= len() once the ring wraps)
        self.samples = 0

    def append(self, value: float) -> None:
        self._ring.append(float(value))
        self.samples += 1

    def values(self) -> list[float]:
        """Buffered samples, oldest first."""
        return list(self._ring)

    def latest(self) -> float | None:
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)


class SeriesBoard:
    """Named series sampled together at one fixed cadence."""

    def __init__(self, interval_s: float = 1.0,
                 capacity: int = DEFAULT_CAPACITY):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.capacity = capacity
        self._series: dict[str, tuple[Series, Callable[[], float]]] = {}

    def register(self, name: str, fn: Callable[[], float]) -> Series:
        """Add a series fed by ``fn`` at every :meth:`sample`."""
        if name in self._series:
            raise ValueError(f"series {name!r} already registered")
        series = Series(name, self.capacity)
        self._series[name] = (series, fn)
        return series

    def sample(self) -> None:
        """Append one sample to every registered series."""
        for series, fn in self._series.values():
            series.append(fn())

    def series(self, name: str) -> Series:
        return self._series[name][0]

    def names(self) -> list[str]:
        return sorted(self._series)

    def as_dict(self) -> dict[str, Any]:
        """JSON document served from ``GET /metrics?format=json``."""
        return {
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "series": {name: {
                "samples": entry[0].samples,
                "values": entry[0].values(),
            } for name, entry in sorted(self._series.items())},
        }
