"""Opt-in DRAM command/event tracer with JSONL and Chrome-trace export.

The tracer is a bounded ring buffer of :class:`TraceEvent` records —
ACT / PRE / REF / RFM / ALERT / DRAIN / MITIGATE — each stamped with the
picosecond simulation time, sub-channel, bank, row, and a free-form
cause. The memory controller and the mitigation policies hold a
``tracer`` attribute that is ``None`` by default; every recording site
is guarded by that single check, so a run without tracing executes the
exact same instruction stream (and RNG stream) as before the tracer
existed.

Exports:

* :meth:`EventTracer.to_jsonl` — one JSON object per line, trivially
  greppable / loadable with pandas;
* :meth:`EventTracer.to_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto): sub-channels map to ``pid``, banks
  to ``tid``, so Perfetto renders one swim-lane per bank.

When the ring fills, the oldest events are evicted and
:attr:`EventTracer.dropped` counts how many were lost — a full export
therefore always states its own completeness.
"""

from __future__ import annotations

import collections
import json
from typing import IO, Iterable, NamedTuple

#: Event kinds the simulator emits (free-form strings are allowed too).
KINDS = ("ACT", "PRE", "RD", "WR", "REF", "RFM", "ALERT", "DRAIN",
         "MITIGATE")

#: Default ring capacity: enough for every event of a reduced-scale run.
DEFAULT_CAPACITY = 1_000_000


class TraceEvent(NamedTuple):
    """One traced DRAM-side event.

    ``cu`` marks counter-update episodes: on an ACT it records that the
    episode was selected for a PRAC read-modify-write (and therefore runs
    on the inflated PRAC timing set); on a PRE it marks a PREcu. The
    protocol-conformance oracle (:mod:`repro.check.oracle`) uses the flag
    to pick the correct per-episode timing set when re-verifying the
    command stream.
    """

    time_ps: int
    kind: str
    subchannel: int = -1
    bank: int = -1
    row: int = -1
    cause: str = ""
    cu: bool = False

    def as_dict(self) -> dict:
        return {"t": self.time_ps, "kind": self.kind,
                "sc": self.subchannel, "bank": self.bank,
                "row": self.row, "cause": self.cause,
                "cu": self.cu}


class EventTracer:
    """Bounded event ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: collections.deque[TraceEvent] = \
            collections.deque(maxlen=capacity)
        self.dropped = 0

    # -- recording ---------------------------------------------------------
    def record(self, time_ps: int, kind: str, subchannel: int = -1,
               bank: int = -1, row: int = -1, cause: str = "",
               cu: bool = False) -> None:
        if not self.enabled:
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(
            TraceEvent(time_ps, kind, subchannel, bank, row, cause, cu))

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- queries -----------------------------------------------------------
    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All buffered events (oldest first), optionally one kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def counts(self) -> dict[str, int]:
        """Buffered events per kind."""
        tally: dict[str, int] = {}
        for event in self._ring:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    # -- export ------------------------------------------------------------
    def to_jsonl(self, destination: str | IO[str]) -> int:
        """Write one JSON object per event; returns the event count."""
        return _with_handle(destination, self._write_jsonl)

    def _write_jsonl(self, handle: IO[str]) -> int:
        written = 0
        for event in self._ring:
            handle.write(json.dumps(event.as_dict()) + "\n")
            written += 1
        return written

    def to_chrome_trace(self, destination: str | IO[str]) -> int:
        """Write the Chrome trace-event JSON document.

        Timestamps convert from picoseconds to the format's microsecond
        ``ts`` field; sub-channel and bank become ``pid``/``tid`` so
        trace viewers group events into per-bank tracks.
        """
        return _with_handle(destination, self._write_chrome)

    def _write_chrome(self, handle: IO[str]) -> int:
        events = [_chrome_event(event) for event in self._ring]
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"dropped": self.dropped,
                          "source": "repro.obs.tracer"},
        }
        json.dump(document, handle)
        return len(events)


def _chrome_event(event: TraceEvent) -> dict:
    args = {"row": event.row}
    if event.cause:
        args["cause"] = event.cause
    return {
        "name": event.kind,
        "ph": "i",  # instant event
        "s": "t",  # thread-scoped
        "ts": event.time_ps / 1e6,  # ps -> us
        "pid": max(event.subchannel, 0),
        "tid": max(event.bank, 0),
        "args": args,
    }


def _with_handle(destination: str | IO[str], writer) -> int:
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return writer(handle)
    return writer(destination)


def merge_events(tracers: Iterable[EventTracer]) -> list[TraceEvent]:
    """Time-ordered merge of several tracers' buffers."""
    merged: list[TraceEvent] = []
    for tracer in tracers:
        merged.extend(tracer.events())
    merged.sort(key=lambda event: event.time_ps)
    return merged
