"""Prometheus text exposition of a stats snapshot.

Converts the flat dotted-namespace snapshot a
:class:`~repro.obs.registry.StatsRegistry` produces into the Prometheus
text format (version 0.0.4): one ``repro_``-prefixed gauge per key,
with dots and other illegal characters folded to underscores. Every
metric is exposed as a gauge — the registry does not distinguish
counter semantics at the snapshot level, and scrapers can apply
``rate()`` regardless.

Also provides :func:`parse_prometheus`, a minimal parser used by the
tests, the selfcheck's ``/metrics`` scrape step, and
``python -m repro.obs.top`` — proving the output round-trips through a
consumer that is not our own serialiser.
"""

from __future__ import annotations

import math
import re

#: Content-Type header of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(key: str, prefix: str = "repro_") -> str:
    """Fold a dotted snapshot key into a legal Prometheus metric name."""
    name = prefix + _ILLEGAL.sub("_", key)
    if name[0].isdigit():  # a bare numeric key with no prefix
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # defensive; snapshots reject bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(snapshot: dict[str, float],
                  prefix: str = "repro_") -> str:
    """Render a flat snapshot as Prometheus text exposition.

    Keys are emitted sorted; colliding folded names (``a.b`` vs
    ``a_b``) keep the last value, which cannot happen with the
    registry's own namespaces.
    """
    lines: list[str] = []
    for key in sorted(snapshot):
        name = metric_name(key, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(snapshot[key])}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse text exposition back into ``{metric_name: value}``.

    Handles the subset :func:`to_prometheus` emits (no labels, no
    timestamps) plus blank lines and comments — enough to scrape any
    conforming exporter of unlabelled gauges.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        if not value:
            raise ValueError(f"bad exposition line {line!r}")
        out[name] = float(value)
    return out
