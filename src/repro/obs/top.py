"""``python -m repro.obs.top`` — live terminal view of a serve daemon.

Polls ``GET /metrics?format=json`` on the daemon address and renders a
compact dashboard: queue/running/in-flight gauges, cache and dedup
effectiveness, throughput with sparkline trends from the daemon's
sampled time-series rings, job latency percentiles, and a campaign
progress line with an ETA extrapolated from the recent completion
rate.

The renderer is a pure function over the ``/metrics`` JSON document
(``render()``), so it is unit-testable without a daemon; ``main()``
adds the polling loop, screen clearing, and ``--once`` mode::

    python -m repro.obs.top --address unix:/tmp/serve/serve.sock
    python -m repro.obs.top --address 127.0.0.1:8731 --once
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any

#: Eight-level block characters for the series sparklines.
SPARK_CHARS = " ▁▂▃▄▅▆▇█"

#: ANSI clear-screen + cursor-home, written before each refresh.
CLEAR = "\x1b[2J\x1b[H"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render the last ``width`` values as a block-character strip."""
    tail = [float(v) for v in values[-width:]]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    if high <= low:
        return SPARK_CHARS[1] * len(tail)
    scale = (len(SPARK_CHARS) - 2) / (high - low)
    return "".join(SPARK_CHARS[1 + round((v - low) * scale)]
                   for v in tail)


def _series_values(doc: dict[str, Any], name: str) -> list[float]:
    series = doc.get("series", {}).get("series", {})
    return list(series.get(name, {}).get("values", []))


def _latest(doc: dict[str, Any], name: str, default: float = 0.0) -> float:
    values = _series_values(doc, name)
    return values[-1] if values else default


def _stat(doc: dict[str, Any], key: str, default: float = 0.0) -> float:
    return doc.get("stats", {}).get(key, default)


def eta_s(doc: dict[str, Any]) -> float | None:
    """Seconds until the queue drains at the recent completion rate."""
    outstanding = _stat(doc, "serve.queue_depth") \
        + _stat(doc, "serve.jobs_running")
    if outstanding <= 0:
        return 0.0
    rates = [v for v in _series_values(doc, "serve.jobs_per_s") if v > 0]
    if not rates:
        return None  # nothing completed recently: no basis to guess
    recent = rates[-5:]
    return outstanding / (sum(recent) / len(recent))


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render(doc: dict[str, Any], address: str = "") -> str:
    """Format one ``/metrics?format=json`` document as a dashboard."""
    stats = doc.get("stats", {})
    queued = _stat(doc, "serve.queue_depth")
    running = _stat(doc, "serve.jobs_running")
    completed = _stat(doc, "serve.jobs_completed")
    failed = _stat(doc, "serve.jobs_failed")
    known = _stat(doc, "serve.jobs_known")
    inflight = _stat(doc, "serve.pool.inflight_points")
    workers = _stat(doc, "serve.pool.workers")
    dedup = _stat(doc, "serve.dedup_hits")
    hit_rate = _latest(doc, "serve.pool.cache_hit_rate")
    jobs_rate = _latest(doc, "serve.jobs_per_s")
    points_rate = _latest(doc, "serve.pool.points_per_s")
    p50 = _stat(doc, "serve.job_latency_ms.p50")
    p99 = _stat(doc, "serve.job_latency_ms.p99")
    terminal = completed + failed + stats.get("serve.jobs_cancelled", 0)
    progress = f"{terminal:.0f}/{known:.0f}" if known else "0/0"

    queue_trend = sparkline(_series_values(doc, "serve.queue_depth"))
    rate_trend = sparkline(_series_values(doc, "serve.pool.points_per_s"))
    lines = [
        f"repro.serve {address}".rstrip(),
        f"jobs    queued {queued:.0f}  running {running:.0f}  "
        f"done {completed:.0f}  failed {failed:.0f}",
        f"points  inflight {inflight:.0f}  workers {workers:.0f}  "
        f"dedup {dedup:.0f}  cache-hit {hit_rate * 100:.0f}%",
        f"rate    {jobs_rate:.2f} jobs/s  {points_rate:.2f} points/s  "
        f"latency p50 {p50:.0f}ms p99 {p99:.0f}ms",
        f"queue    {queue_trend}",
        f"points/s {rate_trend}",
        f"campaign {progress} jobs terminal, ETA {_fmt_eta(eta_s(doc))}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.top",
        description="Live terminal dashboard for a repro.serve daemon "
                    "(polls GET /metrics?format=json).")
    parser.add_argument("--address", required=True,
                        help="daemon address (unix:/path.sock or "
                             "host:port)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval in seconds (default: 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (no screen "
                             "clearing)")
    args = parser.parse_args(argv)

    from ..serve.client import ServeClient
    client = ServeClient(args.address)
    try:
        while True:
            try:
                doc = client.metrics()
            except OSError as error:
                print(f"repro.obs.top: {args.address} unreachable "
                      f"({error})", file=sys.stderr)
                return 1
            frame = render(doc, address=args.address)
            if args.once:
                print(frame)
                return 0
            sys.stdout.write(CLEAR + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
