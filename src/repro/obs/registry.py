"""Hierarchical stats registry: counters, gauges, histograms, providers.

Every subsystem (memory controllers, banks, mitigation policies, cores,
the exec engine) registers itself here under a dotted prefix and
:meth:`StatsRegistry.snapshot` flattens the whole tree into one
``{"mc.0.row_hits": 1234, ...}`` dict with a stable, sorted key order.
That dict is what :class:`~repro.sim.system.SystemResult` carries and
what the on-disk result cache round-trips, so a cached run is exactly as
inspectable as a fresh one.

Two registration styles coexist:

* **owned metrics** — ``registry.counter("exec.points")`` returns a
  live :class:`Counter` the caller increments; the registry snapshots it
  by name;
* **providers** — ``registry.register("mc.0", fn)`` where ``fn``
  returns a (possibly nested) dict when the snapshot is taken. This is
  the zero-cost path: subsystems keep mutating their existing plain
  dataclass stats and pay nothing until someone snapshots.

Snapshot values are ints and floats only; nested dicts flatten with
``.`` separators. Keys are emitted sorted, which makes snapshots
directly comparable across runs (the determinism self-check relies on
this).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Mapping

Number = int | float
Provider = Callable[[], Mapping[str, Any]]


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    ``bounds`` are inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above ``bounds[-1]``. Percentile
    estimates return the upper edge of the bucket the rank falls in
    (clamped to ``bounds[-1]`` for the overflow bucket), which keeps
    snapshots integer-exact and deterministic.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: list[int] | tuple[int, ...]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Number:
        """Upper bucket edge containing the ``p``-quantile.

        Pinned edge behaviour (tests/obs/test_registry.py):

        * ``p`` outside ``[0, 1]`` raises :class:`ValueError`;
        * an empty histogram returns 0 for any valid ``p``;
        * ``p == 0`` returns the first *non-empty* bucket's edge (the
          minimum observation's bucket), not ``bounds[0]``;
        * ``p == 1`` returns the last non-empty bucket's edge;
        * ranks landing in the overflow bucket clamp to ``bounds[-1]``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile p must be in [0, 1], got {p!r}")
        if not self.count:
            return 0
        rank = p * self.count
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            if not bucket:
                continue  # empty buckets never satisfy a rank
            cumulative += bucket
            if cumulative >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> dict[str, Number]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class StatsRegistry:
    """A tree of named metrics and lazy stat providers."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._providers: list[tuple[str, Provider]] = []

    # -- owned metrics -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._metric(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._metric(name, Gauge)

    def histogram(self, name: str,
                  bounds: list[int] | tuple[int, ...]) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(bounds)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def _metric(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(f"{name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    # -- providers ---------------------------------------------------------
    def register(self, prefix: str, provider: Provider) -> None:
        """Attach a callable returning a (nested) dict of numbers."""
        self._providers.append((prefix, provider))

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> dict[str, Number]:
        """Flatten everything into ``{dotted.name: number}``, sorted."""
        flat: dict[str, Number] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                _flatten(name, metric.as_dict(), flat)
            else:
                flat[name] = metric.value
        for prefix, provider in self._providers:
            _flatten(prefix, provider(), flat)
        return dict(sorted(flat.items()))


def _flatten(prefix: str, data: Mapping[str, Any],
             out: dict[str, Number]) -> None:
    for key, value in data.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten(name, value, out)
        elif isinstance(value, Histogram):
            _flatten(name, value.as_dict(), out)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"stat {name!r} is {type(value).__name__}, "
                            f"expected int or float")
        else:
            out[name] = value
