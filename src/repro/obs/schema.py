"""The declared metric-name schema: one source of truth for namespaces.

Every dotted name registered into a :class:`~repro.obs.registry.StatsRegistry`
(or sampled into a :class:`~repro.obs.timeseries.SeriesBoard`) must fall
under one of the namespaces declared here. Three consumers keep the
schema honest:

* the ``stats-namespace`` lint rule (:mod:`repro.lint.rules.stats`)
  statically checks every registration site's name literal against
  :func:`matches` — a metric outside the schema fails ``make lint``;
* the namespace table in ``docs/observability.md`` is generated from
  :func:`render_table` between the :data:`BEGIN_MARK`/:data:`END_MARK`
  markers (``python -m repro.obs.schema --write`` refreshes it,
  ``--check`` and ``tests/obs/test_schema.py`` fail on drift);
* ``tests/obs/test_schema.py`` asserts every declared example actually
  matches its own namespace.

Names are stable API: renaming a key is a schema change (bump
``repro.exec.serialize.SCHEMA_VERSION``), and *adding* a namespace
means adding it here first — the docs and the linter then follow.

``{placeholder}`` segments (``mc.{sc}``) match any single concrete
segment; registration sites that compute a segment dynamically
(f-strings) are matched shape-wise, each interpolation standing for one
segment.
"""

from __future__ import annotations

import dataclasses

#: Doc markers delimiting the generated table in docs/observability.md.
BEGIN_MARK = ("<!-- namespace-table:begin — generated from "
              "src/repro/obs/schema.py; edit there and run "
              "`python -m repro.obs.schema --write` -->")
END_MARK = "<!-- namespace-table:end -->"


@dataclasses.dataclass(frozen=True)
class Namespace:
    """One declared dotted-prefix family of metric names."""

    #: dotted prefix template; ``{sc}``-style segments are wildcards
    prefix: str
    #: markdown "source" column: which component emits the family
    source: str
    #: markdown "examples" column: representative concrete names
    examples: str

    def segments(self) -> tuple[str, ...]:
        return tuple(self.prefix.split("."))


NAMESPACES: tuple[Namespace, ...] = (
    Namespace("mc.{sc}", "`MCStats` + derived",
              "`mc.0.row_hits`, `mc.0.rfm_commands`, "
              "`mc.0.row_buffer_hit_rate`, `mc.0.mean_read_latency_ns`"),
    Namespace("mc.{sc}.latency_ps",
              "read/write service latency `Histogram`",
              "`mc.0.latency_ps.count/mean/p50/p90/p99`"),
    Namespace("mc.{sc}.bank.{b}", "per-bank `BankStats`",
              "`mc.0.bank.7.activations`"),
    Namespace("mitigation.{sc}", "each policy's `stats.as_dict()`",
              "`mitigation.0.alerts`, `mitigation.1.srq_insertions`"),
    Namespace("mitigation.{sc}.security",
              "`SecurityTelemetry` (counting policies only)",
              "`mitigation.0.security.drift_max`, "
              "`mitigation.0.security.max_disturbance`, "
              "`mitigation.0.security.rfm_cadence.p99`"),
    Namespace("mitigation", "cross-subchannel aggregates",
              "`mitigation.rfm_events`, `mitigation.mitigations`, "
              "`mitigation.counter_updates`, `mitigation.ref_drains`"),
    Namespace("core.{id}", "`CoreStats`",
              "`core.0.instructions`, `core.3.ipc`"),
    Namespace("sim", "the run itself",
              "`sim.elapsed_ps`, `sim.fastforward_ps`, "
              "`sim.row_activity.*` (when collected)"),
    Namespace("serve",
              "the simulation daemon (`GET /stats`, see "
              "`docs/serving.md`) and its sampled series",
              "`serve.dedup_hits`, `serve.queue_depth`, "
              "`serve.job_latency_ms.p99`, `serve.pool.points_per_s`"),
    Namespace("exec.cache",
              "result-cache counters (`ResultCache.register_stats`)",
              "`exec.cache.hits`, `exec.cache.writes`"),
    Namespace("exec.cache.remote",
              "remote-tier counters (`TieredCache`, fabric nodes only; "
              "see `docs/fabric.md`)",
              "`exec.cache.remote.hits`, `exec.cache.remote.hit_rate`, "
              "`exec.cache.remote.claims`, `exec.cache.remote.steals`"),
    Namespace("fabric",
              "fabric health: node-side series/providers "
              "(`fabric.node.*`, `fabric.queue_depth`, ...) and "
              "client-side campaign counters (`fabric.hedges`, "
              "`fabric.router.*`); see `docs/fabric.md`",
              "`fabric.queue_depth`, `fabric.hedge_rate`, "
              "`fabric.remote_hit_rate`, `fabric.shed_count`, "
              "`fabric.hedges`, `fabric.router.reroutes`"),
    Namespace("exec.engine",
              "sweep-engine counters (`SweepEngine.register_stats`)",
              "`exec.engine.points`, `exec.engine.wall_s`"),
)


def _segment_matches(template: str, segment: str) -> bool:
    if template.startswith("{") and template.endswith("}"):
        return True
    return template == segment


def match(name: str) -> Namespace | None:
    """The namespace covering ``name`` (or a name *shape*), if any.

    ``name`` may be a concrete dotted name (``mc.0.row_hits``), a bare
    registration prefix (``serve``), or a shape with ``{}`` standing
    for dynamically formatted segments (``mc.{}``). A name is covered
    when some namespace's full prefix template matches its leading
    segments.
    """
    segments = name.split(".")
    best: Namespace | None = None
    for namespace in NAMESPACES:
        template = namespace.segments()
        if len(segments) < len(template):
            continue
        if all(_segment_matches(t, s)
               for t, s in zip(template, segments)):
            if best is None or len(template) > len(best.segments()):
                best = namespace
    return best


def matches(name: str) -> bool:
    return match(name) is not None


def render_table() -> str:
    """The docs/observability.md namespace table, rendered from here."""
    lines = ["| prefix | source | examples |", "|---|---|---|"]
    for namespace in NAMESPACES:
        shown = f"`{namespace.prefix}.*`"
        lines.append(f"| {shown} | {namespace.source} "
                     f"| {namespace.examples} |")
    return "\n".join(lines) + "\n"


def render_doc_section() -> str:
    """Markers plus table — the exact bytes the docs must carry."""
    return f"{BEGIN_MARK}\n{render_table()}{END_MARK}\n"


def doc_section_of(text: str) -> str | None:
    """Extract the generated section from a docs file's text."""
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0:
        return None
    return text[begin:end + len(END_MARK)] + "\n"


def main(argv: list[str] | None = None) -> int:
    """Print, check, or rewrite the generated docs table."""
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="Metric-namespace schema: render or sync the "
                    "docs/observability.md table.")
    parser.add_argument("--doc", type=pathlib.Path,
                        default=pathlib.Path("docs/observability.md"),
                        help="docs file carrying the generated table")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the docs table drifted")
    parser.add_argument("--write", action="store_true",
                        help="rewrite the docs table in place")
    args = parser.parse_args(argv)

    if not args.check and not args.write:
        print(render_table(), end="")
        return 0
    text = args.doc.read_text(encoding="utf-8")
    current = doc_section_of(text)
    if current is None:
        print(f"{args.doc}: no {BEGIN_MARK!r} section")
        return 1
    expected = render_doc_section()
    if args.check:
        if current != expected:
            print(f"{args.doc}: namespace table drifted from "
                  f"repro.obs.schema — run python -m repro.obs.schema "
                  f"--write")
            return 1
        print(f"{args.doc}: namespace table in sync")
        return 0
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK) + len(END_MARK) + 1
    args.doc.write_text(text[:begin] + expected + text[end:],
                        encoding="utf-8")
    print(f"{args.doc}: namespace table rewritten")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
