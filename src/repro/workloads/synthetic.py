"""Synthetic trace generation from a :class:`WorkloadSpec`.

The generator produces an endless stream of :class:`TraceItem` accesses
whose aggregate statistics (MPKI, row-buffer behaviour, hot-row activation
counts) approximate the paper's Table 4 workloads:

* **gaps** between misses are geometric with the spec's MPKI mean;
* **stream** accesses advance a sequential cursor in runs of
  ``run_lines`` consecutive cache lines (MOP then spreads each run over
  rows/banks exactly like real streaming code);
* **random** accesses pick a uniform line in the footprint;
* **hot** accesses target a small set of per-core rows, addressed through
  the *inverse* DRAM mapping so a hot row is a genuine DRAM row no matter
  the address-mapping scheme. Hot accesses cycle among the hot set so each
  visit conflicts with the previously open row — this is what produces the
  ACT-64+ / ACT-200+ rows the trackers must catch.

Every core gets its own seeded stream plus a private address offset so
rate-mode copies do not alias to the same rows.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..config import DRAMConfig
from ..cpu.trace import TraceItem
from ..rng import derive_seed
from .catalog import WorkloadSpec


def inverse_map_line(config: DRAMConfig, subchannel: int, bank: int,
                     row: int, column: int = 0) -> int:
    """Linear line index of (subchannel, bank, row, column) under MOP.

    Inverse of :meth:`repro.dram.address.MOPMapper.map_line`.
    """
    mop = config.mop_lines
    group, offset = divmod(column, mop)
    rest = group
    rest = rest * config.rows_per_bank + row
    rest = rest * config.subchannels + subchannel
    rest = rest * config.banks_per_subchannel + bank
    return rest * mop + offset


class TraceGenerator:
    """Endless per-core synthetic trace."""

    def __init__(self, spec: WorkloadSpec, config: DRAMConfig,
                 core_id: int = 0, seed: int = 0x7ACE):
        self.spec = spec
        self.config = config
        self.rng = random.Random(
            derive_seed((seed << 8) ^ core_id, spec.name))
        total_lines = (config.total_banks * config.rows_per_bank
                       * config.lines_per_row)
        self.footprint = min(spec.footprint_lines, total_lines)
        # Private slice of the address space per core.
        self.base_line = (core_id * 2 * self.footprint) % total_lines
        self._cursor = self.rng.randrange(self.footprint)
        self._run_left = 0
        self._hot_lines = self._build_hot_set(core_id)
        self._hot_index = 0

    def _build_hot_set(self, core_id: int) -> list[int]:
        """Pick the spec's hot rows as concrete (bank, row) locations.

        Hot rows are placed in same-bank *pairs*: with an open-page policy
        a lone hot row would be activated once and then serve every later
        access as a row hit, but two hot rows thrashing one bank conflict
        on every visit — which is what makes a row "hot" in the
        activation-count sense of Table 4's ACT-64+ column.
        """
        cfg = self.config
        lines = []
        for i in range(self.spec.hot_rows):
            pair = i // 2
            subchannel = (core_id + pair) % cfg.subchannels
            bank = (core_id * 5 + pair * 3) % cfg.banks_per_subchannel
            row = (1000 + core_id * 97 + i * 13) % cfg.rows_per_bank
            lines.append(inverse_map_line(cfg, subchannel, bank, row))
        return lines

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceItem]:
        while True:
            yield self.next_item()

    def next_item(self) -> TraceItem:
        gap = self._draw_gap()
        address = self._draw_line() * self.config.line_bytes
        is_write = self.rng.random() < self.spec.write_fraction
        return TraceItem(gap, address, is_write)

    # ------------------------------------------------------------------
    def _draw_gap(self) -> int:
        mean = self.spec.mean_gap
        if mean <= 0:
            return 0
        k = self.spec.gap_shape
        if k == 0:
            # Deterministic gaps: streaming kernels miss like clockwork,
            # which is what lets them saturate bandwidth (and what makes
            # them insensitive to PRAC latency, Figure 2).
            return round(mean)
        # Erlang-k keeps the MPKI mean while tuning burstiness: k = 1 is
        # geometric (pointer chasing), larger k smooths the stream.
        total = 0.0
        for _ in range(k):
            total += -(mean / k) * _log1m(self.rng.random())
        return int(total)

    def _draw_line(self) -> int:
        spec = self.spec
        if spec.hot_fraction and self.rng.random() < spec.hot_fraction:
            return self._next_hot_line()
        if self._run_left > 0:
            self._run_left -= 1
            self._cursor = (self._cursor + 1) % self.footprint
            return self.base_line + self._cursor
        if self.rng.random() < spec.stream_weight:
            self._run_left = spec.run_lines - 1
            self._cursor = (self._cursor + 1) % self.footprint
            return self.base_line + self._cursor
        self._cursor = self.rng.randrange(self.footprint)
        return self.base_line + self._cursor

    def _next_hot_line(self) -> int:
        # Cycle the hot set so consecutive hot accesses hit different rows
        # (each visit is a fresh activation, like a pointer-chasing loop
        # over a hot working set slightly larger than the row buffers).
        line = self._hot_lines[self._hot_index]
        self._hot_index = (self._hot_index + 1) % len(self._hot_lines)
        # Touch a random column so hot rows still see some locality.
        return line + self.rng.randrange(self.config.mop_lines)


def _log1m(u: float) -> float:
    import math
    return math.log(max(1.0 - u, 1e-12))


def generate_trace(spec: WorkloadSpec, config: DRAMConfig,
                   accesses: int, core_id: int = 0,
                   seed: int = 0x7ACE) -> list[TraceItem]:
    """Materialise a finite trace (mostly for tests and examples)."""
    gen = TraceGenerator(spec, config, core_id, seed)
    return [gen.next_item() for _ in range(accesses)]
