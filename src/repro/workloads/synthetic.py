"""Synthetic trace generation from a :class:`WorkloadSpec`.

The generator produces an endless stream of :class:`TraceItem` accesses
whose aggregate statistics (MPKI, row-buffer behaviour, hot-row activation
counts) approximate the paper's Table 4 workloads:

* **gaps** between misses are geometric with the spec's MPKI mean;
* **stream** accesses advance a sequential cursor in runs of
  ``run_lines`` consecutive cache lines (MOP then spreads each run over
  rows/banks exactly like real streaming code);
* **random** accesses pick a uniform line in the footprint;
* **hot** accesses target a small set of per-core rows, addressed through
  the *inverse* DRAM mapping so a hot row is a genuine DRAM row no matter
  the address-mapping scheme. Hot accesses cycle among the hot set so each
  visit conflicts with the previously open row — this is what produces the
  ACT-64+ / ACT-200+ rows the trackers must catch.

Every core gets its own seeded stream plus a private address offset so
rate-mode copies do not alias to the same rows.
"""

from __future__ import annotations

import random
from math import log as _math_log
from typing import Iterator

from ..config import DRAMConfig
from ..cpu.trace import TraceItem
from ..rng import derive_seed
from .catalog import WorkloadSpec


def inverse_map_line(config: DRAMConfig, subchannel: int, bank: int,
                     row: int, column: int = 0) -> int:
    """Linear line index of (subchannel, bank, row, column) under MOP.

    Inverse of :meth:`repro.dram.address.MOPMapper.map_line`.
    """
    mop = config.mop_lines
    group, offset = divmod(column, mop)
    rest = group
    rest = rest * config.rows_per_bank + row
    rest = rest * config.subchannels + subchannel
    rest = rest * config.banks_per_subchannel + bank
    return rest * mop + offset


class TraceGenerator:
    """Endless per-core synthetic trace."""

    def __init__(self, spec: WorkloadSpec, config: DRAMConfig,
                 core_id: int = 0, seed: int = 0x7ACE):
        self.spec = spec
        self.config = config
        self.rng = random.Random(
            derive_seed((seed << 8) ^ core_id, spec.name))
        total_lines = (config.total_banks * config.rows_per_bank
                       * config.lines_per_row)
        self.footprint = min(spec.footprint_lines, total_lines)
        # Private slice of the address space per core.
        self.base_line = (core_id * 2 * self.footprint) % total_lines
        self._cursor = self.rng.randrange(self.footprint)
        self._run_left = 0
        self._hot_lines = self._build_hot_set(core_id)
        self._hot_index = 0
        # Spec/config lookups cached once: ``mean_gap`` is a computed
        # property and the others are attribute chains, all re-read per
        # generated item on the simulator's hottest path. The cached
        # values feed the *same* expressions, so the stream is
        # bit-identical to reading them live (specs are frozen).
        self._mean_gap = spec.mean_gap
        self._gap_shape = spec.gap_shape
        self._gap_scale = (-(self._mean_gap / spec.gap_shape)
                           if spec.gap_shape else 0.0)
        self._gap_const = round(self._mean_gap)
        self._write_fraction = spec.write_fraction
        self._hot_fraction = spec.hot_fraction
        self._stream_weight = spec.stream_weight
        self._run_lines = spec.run_lines
        self._line_bytes = config.line_bytes
        self._mop_lines = config.mop_lines

    def _build_hot_set(self, core_id: int) -> list[int]:
        """Pick the spec's hot rows as concrete (bank, row) locations.

        Hot rows are placed in same-bank *pairs*: with an open-page policy
        a lone hot row would be activated once and then serve every later
        access as a row hit, but two hot rows thrashing one bank conflict
        on every visit — which is what makes a row "hot" in the
        activation-count sense of Table 4's ACT-64+ column.
        """
        cfg = self.config
        lines = []
        for i in range(self.spec.hot_rows):
            pair = i // 2
            subchannel = (core_id + pair) % cfg.subchannels
            bank = (core_id * 5 + pair * 3) % cfg.banks_per_subchannel
            row = (1000 + core_id * 97 + i * 13) % cfg.rows_per_bank
            lines.append(inverse_map_line(cfg, subchannel, bank, row))
        return lines

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceItem]:
        # The generator *is* its own iterator: all draw state lives on
        # self, so a wrapping generator frame would add a call per item
        # without isolating anything.
        return self

    def __next__(self) -> TraceItem:
        return self.next_item()

    def next_item(self) -> TraceItem:
        gap = self._draw_gap()
        address = self._draw_line() * self._line_bytes
        is_write = self.rng.random() < self._write_fraction
        return TraceItem(gap, address, is_write)

    def next_block(self, n: int) -> list[tuple[int, int, bool]]:
        """Draw ``n`` accesses at once as raw ``(gap, address, is_write)``.

        Exactly the same RNG-call sequence and arithmetic as ``n``
        consecutive :meth:`next_item` calls, with the per-item iterator
        dispatch and :class:`TraceItem` construction elided — the fast
        engine consumes blocks so trace generation stops being a
        per-event cost. The draw logic is a manual inline of
        :meth:`_draw_gap` / :meth:`_draw_line`; any change there must be
        mirrored here (the engine-equivalence tests compare the streams).
        """
        rng = self.rng
        uniform = rng.random
        randrange = rng.randrange
        log = _math_log
        mean = self._mean_gap
        k = self._gap_shape
        scale = self._gap_scale
        gap_const = self._gap_const
        write_fraction = self._write_fraction
        hot = self._hot_fraction
        stream_weight = self._stream_weight
        run_lines = self._run_lines
        line_bytes = self._line_bytes
        footprint = self.footprint
        base_line = self.base_line
        out = []
        append = out.append
        for _ in range(n):
            if mean <= 0:
                gap = 0
            elif k == 0:
                gap = gap_const
            else:
                total = 0.0
                for _ in range(k):
                    v = 1.0 - uniform()
                    total += scale * log(v if v > 1e-12 else 1e-12)
                gap = int(total)
            if hot and uniform() < hot:
                line = self._next_hot_line()
            elif self._run_left > 0:
                self._run_left -= 1
                self._cursor = cursor = (self._cursor + 1) % footprint
                line = base_line + cursor
            elif uniform() < stream_weight:
                self._run_left = run_lines - 1
                self._cursor = cursor = (self._cursor + 1) % footprint
                line = base_line + cursor
            else:
                self._cursor = cursor = randrange(footprint)
                line = base_line + cursor
            append((gap, line * line_bytes, uniform() < write_fraction))
        return out

    # ------------------------------------------------------------------
    def _draw_gap(self) -> int:
        mean = self._mean_gap
        if mean <= 0:
            return 0
        k = self._gap_shape
        if k == 0:
            # Deterministic gaps: streaming kernels miss like clockwork,
            # which is what lets them saturate bandwidth (and what makes
            # them insensitive to PRAC latency, Figure 2).
            return self._gap_const
        # Erlang-k keeps the MPKI mean while tuning burstiness: k = 1 is
        # geometric (pointer chasing), larger k smooths the stream.
        total = 0.0
        scale = self._gap_scale
        uniform = self.rng.random
        log = _math_log
        for _ in range(k):
            v = 1.0 - uniform()
            total += scale * log(v if v > 1e-12 else 1e-12)
        return int(total)

    def _draw_line(self) -> int:
        hot = self._hot_fraction
        if hot and self.rng.random() < hot:
            return self._next_hot_line()
        if self._run_left > 0:
            self._run_left -= 1
            self._cursor = (self._cursor + 1) % self.footprint
            return self.base_line + self._cursor
        if self.rng.random() < self._stream_weight:
            self._run_left = self._run_lines - 1
            self._cursor = (self._cursor + 1) % self.footprint
            return self.base_line + self._cursor
        self._cursor = self.rng.randrange(self.footprint)
        return self.base_line + self._cursor

    def _next_hot_line(self) -> int:
        # Cycle the hot set so consecutive hot accesses hit different rows
        # (each visit is a fresh activation, like a pointer-chasing loop
        # over a hot working set slightly larger than the row buffers).
        line = self._hot_lines[self._hot_index]
        self._hot_index = (self._hot_index + 1) % len(self._hot_lines)
        # Touch a random column so hot rows still see some locality.
        return line + self.rng.randrange(self._mop_lines)


def _log1m(u: float) -> float:
    return _math_log(max(1.0 - u, 1e-12))


def generate_trace(spec: WorkloadSpec, config: DRAMConfig,
                   accesses: int, core_id: int = 0,
                   seed: int = 0x7ACE) -> list[TraceItem]:
    """Materialise a finite trace (mostly for tests and examples)."""
    gen = TraceGenerator(spec, config, core_id, seed)
    return [gen.next_item() for _ in range(accesses)]
