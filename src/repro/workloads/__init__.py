"""Workload substrate: the Table 4 catalog and synthetic trace generators."""

from .catalog import (ALL_WORKLOADS, MIX_PAPER, MIX_WORKLOADS,
                      SPEC_WORKLOADS, STREAM_NAMES, PaperStats,
                      WorkloadSpec, get_spec, workload_cores)
from .synthetic import TraceGenerator, generate_trace, inverse_map_line

__all__ = [
    "ALL_WORKLOADS", "MIX_PAPER", "MIX_WORKLOADS", "PaperStats",
    "SPEC_WORKLOADS", "STREAM_NAMES", "TraceGenerator", "WorkloadSpec",
    "generate_trace", "get_spec", "inverse_map_line", "workload_cores",
]
