"""Workload catalog calibrated to paper Table 4.

Each :class:`WorkloadSpec` drives the synthetic trace generator
(:mod:`repro.workloads.synthetic`) and records the paper's measured
characteristics (MPKI, row-buffer hit rate, activations per tREFI per bank,
and hot-row counts) for the Table 4 reproduction bench to compare against.

SPEC-2017 / STREAM / masstree traces are proprietary; the generator knobs
below were chosen so the *measured* statistics of the synthetic streams
land near the published columns. ``kind`` selects the access skeleton:

* ``stream`` — long sequential runs (STREAM add/triad/copy/scale),
* ``random`` — uniform pointer-chase over the footprint (xz, cactuBSSN),
* ``mixed`` — sequential runs interleaved with random jumps, weighted to
  hit the RBHR target.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperStats:
    """The Table 4 reference columns for one workload."""

    mpki: float
    rbhr: float
    apri: float
    act64: float
    act200: float


@dataclass(frozen=True)
class WorkloadSpec:
    """Generator parameters for one workload (one core's trace)."""

    name: str
    mpki: float  #: target LLC misses per kilo-instruction
    kind: str  #: "stream" | "random" | "mixed"
    stream_weight: float = 0.0  #: fraction of accesses in sequential runs
    run_lines: int = 4  #: sequential run length (lines) before a jump
    footprint_lines: int = 1 << 18  #: distinct lines the workload touches
    hot_rows: int = 0  #: per-core hot rows (Table 4 ACT-64+ proxy)
    hot_fraction: float = 0.0  #: fraction of accesses aimed at hot rows
    write_fraction: float = 0.25
    #: gap burstiness: 0 = deterministic (stream), k >= 1 = Erlang-k
    #: (k = 1 is geometric/bursty, larger k is smoother)
    gap_shape: int = 2
    #: hardware-prefetch model: multiplies the ROB window the core may
    #: keep misses in flight across (streams are trivially prefetchable
    #: and run far ahead; irregular codes get modest coverage)
    mlp_boost: float = 2.0
    paper: PaperStats | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if self.kind not in ("stream", "random", "mixed"):
            raise ValueError(f"unknown kind {self.kind!r}")
        if not 0 <= self.stream_weight <= 1:
            raise ValueError("stream_weight must be in [0, 1]")
        if not 0 <= self.hot_fraction < 1:
            raise ValueError("hot_fraction must be in [0, 1)")
        if self.hot_fraction > 0 and self.hot_rows <= 0:
            raise ValueError("hot_fraction needs hot_rows > 0")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between misses."""
        return max(1000.0 / self.mpki - 1.0, 0.0)


def _spec(name: str, mpki: float, rbhr: float, apri: float, act64: float,
          act200: float, kind: str, stream_weight: float,
          hot_rows: int = 0, hot_fraction: float = 0.0,
          footprint_lines: int = 1 << 18,
          run_lines: int = 4) -> WorkloadSpec:
    gap_shape = 0 if kind == "stream" else 2
    mlp_boost = 16.0 if kind == "stream" else 10.0
    return WorkloadSpec(
        name=name, mpki=mpki, kind=kind, stream_weight=stream_weight,
        run_lines=run_lines, footprint_lines=footprint_lines,
        hot_rows=hot_rows, hot_fraction=hot_fraction, gap_shape=gap_shape,
        mlp_boost=mlp_boost,
        paper=PaperStats(mpki, rbhr, apri, act64, act200),
    )


#: SPEC-2017 (MPKI > 1), masstree and STREAM — paper Table 4 order.
SPEC_WORKLOADS: dict[str, WorkloadSpec] = {
    s.name: s for s in [
        _spec("bwaves", 42.3, 0.51, 14.1, 0.0, 0.0, "mixed", 0.70),
        _spec("parest", 28.9, 0.61, 12.6, 155.4, 10.5, "mixed", 0.72,
              hot_rows=48, hot_fraction=0.22),
        _spec("mcf", 28.8, 0.47, 16.9, 3.1, 0.0, "mixed", 0.62,
              hot_rows=4, hot_fraction=0.02),
        _spec("lbm", 28.2, 0.29, 19.4, 13.3, 0.0, "mixed", 0.40,
              hot_rows=8, hot_fraction=0.04),
        _spec("fotonik3d", 25.4, 0.23, 19.5, 0.4, 0.0, "mixed", 0.32),
        _spec("omnetpp", 10.2, 0.25, 19.7, 49.3, 10.1, "mixed", 0.30,
              hot_rows=24, hot_fraction=0.28),
        _spec("roms", 8.2, 0.62, 10.4, 1.2, 0.0, "mixed", 0.78),
        _spec("xz", 6.1, 0.05, 20.7, 164.0, 0.0, "random", 0.0,
              hot_rows=64, hot_fraction=0.30),
        _spec("cactuBSSN", 3.5, 0.00, 16.3, 0.0, 0.0, "random", 0.0),
        _spec("xalancbmk", 2.0, 0.54, 8.7, 0.0, 0.0, "mixed", 0.68),
        _spec("cam4", 1.6, 0.58, 5.6, 0.0, 0.0, "mixed", 0.72),
        _spec("blender", 1.5, 0.37, 6.0, 0.0, 0.0, "mixed", 0.48),
        _spec("masstree", 20.3, 0.55, 13.6, 14.3, 0.0, "mixed", 0.66,
              hot_rows=10, hot_fraction=0.05),
        _spec("add", 62.5, 0.69, 10.2, 0.0, 0.0, "stream", 1.0,
              run_lines=64),
        _spec("triad", 53.6, 0.69, 10.3, 0.0, 0.0, "stream", 1.0,
              run_lines=64),
        _spec("copy", 50.0, 0.70, 9.8, 0.0, 0.0, "stream", 1.0,
              run_lines=64),
        _spec("scale", 41.7, 0.70, 9.7, 0.0, 0.0, "stream", 1.0,
              run_lines=64),
        # Not in Table 4: a hot-row stress workload of ours. A handful of
        # rows per core receive hundreds of activations per refresh
        # window, exercising the mitigation-ALERT path (ATH*/drain/SRQ
        # dynamics) at the scaled run lengths the benches use. Think of a
        # skewed key-value store far beyond masstree's skew. mlp_boost is
        # 1 (no prefetching): dependent pointer chases re-visit the hot
        # rows one ROB window apart, so FR-FCFS cannot coalesce the
        # visits into a single activation.
        WorkloadSpec(
            name="hammer", mpki=25.0, kind="mixed", stream_weight=0.40,
            hot_rows=4, hot_fraction=0.55, gap_shape=2, mlp_boost=1.0,
            paper=None),
    ]
}

#: The six mixed workloads: randomly-drawn SPEC benchmarks (paper §3.2).
#: The draws below were fixed once (seeded) and are now part of the
#: experiment definition, like the paper's mixes.
MIX_WORKLOADS: dict[str, tuple[str, ...]] = {
    "mix1": ("parest", "omnetpp", "mcf", "xz",
             "lbm", "parest", "omnetpp", "bwaves"),
    "mix2": ("parest", "mcf", "roms", "omnetpp",
             "xz", "blender", "parest", "cam4"),
    "mix3": ("omnetpp", "xz", "parest", "lbm",
             "mcf", "xalancbmk", "roms", "omnetpp"),
    "mix4": ("parest", "parest", "omnetpp", "omnetpp",
             "xz", "mcf", "lbm", "bwaves"),
    "mix5": ("omnetpp", "parest", "mcf", "cam4",
             "xz", "roms", "lbm", "xalancbmk"),
    "mix6": ("parest", "blender", "omnetpp", "mcf",
             "xz", "cactuBSSN", "roms", "cam4"),
}

#: Paper Table 4 rows for the mixes (reference only).
MIX_PAPER: dict[str, PaperStats] = {
    "mix1": PaperStats(8.6, 0.45, 16.4, 168.9, 13.3),
    "mix2": PaperStats(7.1, 0.42, 15.8, 139.6, 4.5),
    "mix3": PaperStats(6.4, 0.41, 17.2, 127.1, 11.0),
    "mix4": PaperStats(5.0, 0.44, 15.9, 209.6, 13.6),
    "mix5": PaperStats(4.9, 0.47, 15.1, 136.8, 9.9),
    "mix6": PaperStats(4.6, 0.44, 15.8, 123.8, 9.7),
}

#: Workloads the paper calls out as bandwidth-bound / PRAC-insensitive.
STREAM_NAMES = ("add", "triad", "copy", "scale")

#: Extra stress workloads of ours (not rows of Table 4).
EXTRA_WORKLOADS = ("hammer",)

#: Canonical evaluation order: the 23 Table 4 workloads.
ALL_WORKLOADS: tuple[str, ...] = tuple(
    name for name in SPEC_WORKLOADS if name not in EXTRA_WORKLOADS
) + tuple(MIX_WORKLOADS)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a single-benchmark spec by name."""
    try:
        return SPEC_WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; mixes are resolved via "
                       "MIX_WORKLOADS") from None


def workload_cores(name: str, cores: int = 8) -> list[WorkloadSpec]:
    """Per-core spec list: rate mode for benchmarks, the mix table for
    mixes (paper Section 3.2)."""
    if name in MIX_WORKLOADS:
        members = MIX_WORKLOADS[name]
        return [SPEC_WORKLOADS[m] for m in members[:cores]]
    spec = get_spec(name)
    return [spec] * cores
