"""MoPAC: Efficiently Mitigating Rowhammer with Probabilistic Activation
Counting — a full-system Python reproduction of the ISCA 2025 paper.

Quick tour (see ``examples/quickstart.py`` for a runnable version):

>>> from repro import security
>>> params = security.mopac_c_params(trh=500)
>>> (params.p, params.critical_updates, params.ath_star)
(0.125, 22, 176)

Run an attack against a mitigation::

    from repro.mitigations import MoPACDPolicy
    from repro.attacks import run_attack, double_sided
    policy = MoPACDPolicy(trh=500, banks=4, rows=1024, refresh_groups=64)
    result = run_attack(policy, double_sided(0, 100), 500_000, trh=500,
                        banks=4, rows=1024, refresh_groups=64)
    assert not result.attack_succeeded

Measure benign-workload slowdown::

    from repro.sim import DesignPoint, slowdown
    print(slowdown(DesignPoint(workload="mcf", design="mopac-c", trh=500)))

Sub-packages:

* :mod:`repro.dram` — DDR5 timing sets, bank state machines, MOP mapping
* :mod:`repro.mc` — FR-FCFS memory controller, page policies
* :mod:`repro.cpu` — ROB-window core model, LLC, trace format
* :mod:`repro.workloads` — Table 4 catalog + synthetic generators
* :mod:`repro.mitigations` — PRAC+MOAT, MoPAC-C, MoPAC-D(+NUP), baselines
* :mod:`repro.security` — all the paper's analytical models (Tables 2-14)
* :mod:`repro.attacks` — attack patterns, harness, ground-truth ledger
* :mod:`repro.sim` — full-system simulator and experiment runner
* :mod:`repro.analysis` — table/figure regeneration helpers
"""

from . import (analysis, attacks, config, cpu, dram, mc, mitigations,
               security, sim, units, workloads)
from .config import DRAMConfig, SystemConfig
from .sim import DesignPoint, simulate, slowdown, sweep

__version__ = "1.0.0"

__all__ = [
    "DRAMConfig", "DesignPoint", "SystemConfig", "analysis", "attacks",
    "config", "cpu", "dram", "mc", "mitigations", "security", "sim",
    "simulate", "slowdown", "sweep", "units", "workloads",
]
