"""Time units and arithmetic for the simulator.

All simulator time is kept in integer **picoseconds**. Integer time makes
event ordering exact and reproducible; picosecond granularity is fine enough
to represent DDR5 clock periods (tCK = 1/3 ns at DDR5-6000) without rounding
drift over a simulation.

The public helpers convert between human-friendly units and picoseconds.
"""

from __future__ import annotations

# One picosecond is the base tick.
PS = 1
NS = 1_000 * PS
US = 1_000 * NS
MS = 1_000 * US
SECOND = 1_000 * MS

#: Number of nanoseconds in 10,000 years — the Mean-Time-To-Failure target
#: used by the paper's security analysis (Section 5.3): "There are
#: 3.2e20 nanoseconds within our target MTTF period of 10K years."
NS_PER_10K_YEARS = 3.2e20


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds (rounded)."""
    return round(value * MS)


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return picoseconds / NS


def to_us(picoseconds: int) -> float:
    """Convert integer picoseconds back to (float) microseconds."""
    return picoseconds / US


def to_ms(picoseconds: int) -> float:
    """Convert integer picoseconds back to (float) milliseconds."""
    return picoseconds / MS
