"""Attack patterns, the activation-level harness, and the security ledger.

See :mod:`repro.attacks.patterns` for the pattern zoo,
:mod:`repro.attacks.harness` for the pacing/ABO loop, and
:mod:`repro.attacks.ledger` for the ground-truth failure criterion.
"""

from .harness import (AttackHarness, AttackResult, measure_slowdown,
                      run_attack)
from .fuzzer import FuzzCase, FuzzResult, fuzz, sample_case
from .ledger import HammerLedger, LedgerReport
from .patterns import (blacksmith, decoy_hammer, double_sided, half_double,
                       many_sided,
                       multi_bank_single_row, random_spray, single_sided,
                       srq_fill, tardiness_attack)

__all__ = [
    "AttackHarness", "AttackResult", "HammerLedger", "LedgerReport", "blacksmith",
    "FuzzCase", "FuzzResult", "decoy_hammer", "double_sided", "fuzz",
    "measure_slowdown", "half_double", "many_sided", "sample_case",
    "multi_bank_single_row", "random_spray", "run_attack", "single_sided",
    "srq_fill", "tardiness_attack",
]
