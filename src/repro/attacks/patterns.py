"""Attack access patterns.

Each pattern is a generator of (bank, row) activation targets. The
activation-level harness (:mod:`repro.attacks.harness`) paces them at
maximum legal speed, injects REF commands, and honours ABO stalls — the
attacker model of Section 2.1 (arbitrary addresses, knows the defence, not
the RNG outcomes).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator

Target = tuple[int, int]


def single_sided(bank: int, row: int) -> Iterator[Target]:
    """Classic single-sided hammer: one row, as fast as possible."""
    while True:
        yield (bank, row)


def double_sided(bank: int, victim_row: int) -> Iterator[Target]:
    """Double-sided hammer: alternate the two neighbours of a victim."""
    if victim_row < 1:
        raise ValueError("victim_row must have two neighbours")

    def generate() -> Iterator[Target]:
        for aggressor in itertools.cycle((victim_row - 1, victim_row + 1)):
            yield (bank, aggressor)

    return generate()


def many_sided(bank: int, rows: Iterable[int]) -> Iterator[Target]:
    """TRRespass-style many-sided pattern: round-robin a set of aggressors.

    With more aggressors than tracker entries this defeats TRR-class
    trackers (Section 2.3).
    """
    rows = list(rows)
    if not rows:
        raise ValueError("need at least one aggressor row")
    return ((bank, row) for row in itertools.cycle(rows))


def multi_bank_single_row(banks: Iterable[int], row: int) -> Iterator[Target]:
    """Figure 14(b): one hot row in each bank, visited round-robin.

    Randomised sampling makes banks reach ATH* at different times; the
    fastest bank's ALERT mitigates everyone (the alpha ~= 0.55 effect).
    """
    banks = list(banks)
    if not banks:
        raise ValueError("need at least one bank")
    return ((bank, row) for bank in itertools.cycle(banks))


def srq_fill(bank: int, num_rows: int, start_row: int = 0) -> Iterator[Target]:
    """SRQ-full attack (Section 7.4): flood with many unique rows.

    With far more distinct rows than SRQ entries, nearly every MINT
    selection inserts a fresh entry, forcing an ABO every ~5/p activations.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    return ((bank, row) for row in
            itertools.cycle(range(start_row, start_row + num_rows)))


def tardiness_attack(banks: Iterable[int], row: int) -> Iterator[Target]:
    """TTH attack (Section 7.4): park a row in the SRQ, then hammer it.

    Identical access stream to :func:`multi_bank_single_row`; once the row
    lands in some bank's SRQ, its ACtr climbs one per activation and trips
    the tardiness threshold after TTH activations.
    """
    return multi_bank_single_row(banks, row)


def random_spray(banks: int, rows: int,
                 rng: random.Random | None = None) -> Iterator[Target]:
    """Benign-ish background noise: uniformly random activations."""
    rng = rng or random.Random(0x5EED)
    while True:
        yield (rng.randrange(banks), rng.randrange(rows))


def decoy_hammer(bank: int, target_row: int, decoy_rows: int,
                 target_fraction: float = 0.5,
                 rng: random.Random | None = None) -> Iterator[Target]:
    """Hammer a target while diluting it among decoys.

    Probabilistic trackers are hardest to fool with pure repetition (every
    window selects the target); diluting reduces the per-window selection
    probability at the cost of slower hammering — the trade-off analysed
    for MINT in Section 9.2.
    """
    if not 0 < target_fraction <= 1:
        raise ValueError("target_fraction must be in (0, 1]")
    rng = rng or random.Random(0xDEC0)
    decoy_start = target_row + 10

    def generate() -> Iterator[Target]:
        while True:
            if rng.random() < target_fraction:
                yield (bank, target_row)
            else:
                yield (bank, decoy_start + rng.randrange(decoy_rows))

    return generate()


def half_double(bank: int, far_row: int) -> Iterator[Target]:
    """Half-Double-style pattern: hammer at distance two from the victim.

    Exercises the blast-radius-2 victim refresh: mitigating ``far_row``
    must refresh rows up to two away.
    """
    while True:
        yield (bank, far_row)


def blacksmith(bank: int, base_row: int, pairs: int = 4,
               frequencies: Iterable[int] = (1, 2, 4, 8),
               phases: Iterable[int] | None = None) -> Iterator[Target]:
    """Blacksmith-style non-uniform frequency pattern [Jattke+, S&P'22].

    Several double-sided aggressor pairs are hammered at *different*
    frequencies and phase offsets — the structure that defeated every
    DDR4 TRR implementation by desynchronising from the sampler. Pair i
    brackets victim ``base_row + 4 * i`` and is hammered once every
    ``frequencies[i]`` rounds, starting at its phase offset.
    """
    freqs = list(frequencies)
    if pairs < 1:
        raise ValueError("need at least one aggressor pair")
    if len(freqs) < pairs:
        raise ValueError("need a frequency per pair")
    phase_list = list(phases) if phases is not None else list(range(pairs))

    def generate() -> Iterator[Target]:
        round_index = 0
        while True:
            emitted = False
            for i in range(pairs):
                if (round_index + phase_list[i % len(phase_list)]) \
                        % freqs[i] == 0:
                    victim = base_row + 4 * i
                    yield (bank, victim - 1)
                    yield (bank, victim + 1)
                    emitted = True
            if not emitted:
                # keep the command bus busy like real Blacksmith fuzzing
                yield (bank, base_row - 3)
            round_index += 1

    return generate()
