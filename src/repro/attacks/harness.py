"""Activation-level attack harness.

Drives a :class:`~repro.mitigations.base.MitigationPolicy` with an attack
pattern at the maximum legal activation rate, without the full memory
controller in the loop. Pacing model:

* per bank, one activation episode per row cycle (the episode's
  tRAS + tRP — attackers precharge immediately);
* across banks, ACT commands are spaced by tRRD, so a multi-bank pattern
  (Figure 14b) genuinely runs the banks in parallel;
* REF occupies the sub-channel for tRFC every tREFI;
* an ALERT lets the attacker keep operating for 180 ns, then stalls
  everything for the 350 ns RFM (the ABO protocol of Figure 3).

Two consumers:

* security verification — run millions of activations, then ask the
  :class:`~repro.attacks.ledger.HammerLedger` whether any row ever
  exceeded T_RH unmitigated;
* attack-throughput measurement (Tables 9/10) — via
  :func:`measure_slowdown`, which compares wall time against an identical
  run on the unprotected baseline.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Iterator

from ..mitigations.base import MitigationPolicy
from ..mitigations.prac import BaselinePolicy
from .ledger import HammerLedger, LedgerReport

Target = tuple[int, int]


@dataclass
class AttackResult:
    """Outcome of one harness run."""

    ledger: LedgerReport
    activations: int
    elapsed_ps: int
    alerts: int

    @property
    def acts_per_alert(self) -> float:
        return self.activations / self.alerts if self.alerts else float("inf")

    @property
    def attack_succeeded(self) -> bool:
        return self.ledger.attack_succeeded


class AttackHarness:
    """Paces a pattern through a policy with REF and ABO timing."""

    def __init__(self, policy: MitigationPolicy, trh: int,
                 banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192, enable_refresh: bool = True,
                 observers: list | None = None):
        self.policy = policy
        self.trh = trh
        self.banks = banks
        self.rows = rows
        self.ledger = HammerLedger(banks, rows, trh, refresh_groups)
        #: notified in lockstep with the ledger (on_activate /
        #: on_refresh / on_mitigation) — the differential harness's
        #: shadow auditors plug in here
        self.observers = list(observers or [])
        self.enable_refresh = enable_refresh
        self.now = 0
        self.next_ref = policy.timing.tREFI
        self.bank_ready = [0] * banks
        self._recent_acts: collections.deque[int] = \
            collections.deque(maxlen=4)
        self._alert_deadline: int | None = None
        self._alerts = 0
        self._acts = 0

    def run(self, pattern: Iterator[Target], activations: int,
            stop_on_failure: bool = False) -> AttackResult:
        """Issue ``activations`` targets from ``pattern``."""
        timing = self.policy.timing
        for _ in range(activations):
            bank, row = next(pattern)
            issue = max(self.now, self.bank_ready[bank])
            if len(self._recent_acts) == 4:
                issue = max(issue, self._recent_acts[0] + timing.tFAW)
            self._maybe_service_alert(issue)
            issue = max(issue, self.now)
            issue = self._maybe_refresh(issue)
            self._recent_acts.append(issue)

            decision = self.policy.on_activate(bank, row, issue)
            self.ledger.on_activate(bank, row)
            for observer in self.observers:
                observer.on_activate(bank, row)
            self._acts += 1
            pre_time = issue + decision.act_timing.tRAS
            self.policy.on_precharge(bank, row, pre_time,
                                     decision.counter_update)
            self.policy.note_row_open(bank, row, decision.act_timing.tRAS)
            episode = max(decision.act_timing.tRAS + decision.pre_timing.tRP,
                          decision.act_timing.tRC)
            self.bank_ready[bank] = issue + episode
            self.now = max(self.now, issue + timing.tRRD)
            self._apply_mitigations()
            if self.policy.alert_requested() and self._alert_deadline is None:
                self._alert_deadline = issue + timing.tALERT_NORMAL
            if stop_on_failure and self.ledger.max_count > self.trh:
                break
        return AttackResult(
            ledger=self.ledger.report(), activations=self._acts,
            elapsed_ps=max(self.now, max(self.bank_ready)),
            alerts=self._alerts,
        )

    # ------------------------------------------------------------------
    def _maybe_refresh(self, issue: int) -> int:
        """Inject REF commands due before ``issue``; returns revised time."""
        if not self.enable_refresh:
            return issue
        timing = self.policy.timing
        while issue >= self.next_ref:
            self.policy.on_refresh(self.next_ref)
            self.ledger.on_refresh()
            for observer in self.observers:
                observer.on_refresh()
            self._apply_mitigations()
            ref_end = self.next_ref + timing.tRFC
            issue = max(issue, ref_end)
            self._block_all(ref_end)
            self.next_ref += timing.tREFI
        return issue

    def _maybe_service_alert(self, issue: int) -> None:
        """If the ALERT window has closed, pay the RFM stall."""
        if self._alert_deadline is None or issue < self._alert_deadline:
            return
        timing = self.policy.timing
        level = getattr(self.policy, "abo_level", 1)
        scope = getattr(self.policy, "recovery_scope", "subchannel")
        recovery = (list(self.policy.alert_banks())
                    if scope == "bank" else None)
        stall_end = self._alert_deadline + level * timing.tALERT_RFM
        for _ in range(level):
            self.policy.on_rfm(stall_end)
        self._alerts += 1
        self._apply_mitigations()
        if recovery is None:
            self._block_all(stall_end)
            self.now = max(self.now, stall_end)
        else:
            # bank-scoped recovery: only the banks the ALERT named stall
            # for the RFM; the rest of the sub-channel keeps issuing
            for bank in recovery:
                self.bank_ready[bank] = max(self.bank_ready[bank],
                                            stall_end)
            self.now = max(self.now, self._alert_deadline)
        self._alert_deadline = None
        if self.policy.alert_requested():
            self._alert_deadline = stall_end + timing.tALERT_NORMAL

    def _block_all(self, until: int) -> None:
        for bank in range(self.banks):
            self.bank_ready[bank] = max(self.bank_ready[bank], until)

    def _apply_mitigations(self) -> None:
        for event in self.policy.drain_mitigations():
            self.ledger.on_mitigation(event.bank, event.row)
            for observer in self.observers:
                observer.on_mitigation(event.bank, event.row)


def run_attack(policy: MitigationPolicy, pattern: Iterator[Target],
               activations: int, trh: int, banks: int = 32,
               rows: int = 65536, refresh_groups: int = 8192,
               enable_refresh: bool = True,
               stop_on_failure: bool = False) -> AttackResult:
    """One-shot convenience wrapper around :class:`AttackHarness`."""
    harness = AttackHarness(policy, trh, banks, rows, refresh_groups,
                            enable_refresh)
    return harness.run(pattern, activations, stop_on_failure)


def measure_slowdown(policy: MitigationPolicy,
                     pattern_factory: Callable[[], Iterator[Target]],
                     activations: int, trh: int, banks: int = 32,
                     rows: int = 65536, refresh_groups: int = 8192) -> float:
    """Attack-throughput slowdown vs the unprotected baseline.

    Runs the same pattern through ``policy`` and through
    :class:`BaselinePolicy` (baseline timings, no ALERTs) and compares
    wall-clock time — the Section 7 metric behind Tables 9 and 10.
    """
    protected = run_attack(policy, pattern_factory(), activations, trh,
                           banks, rows, refresh_groups)
    baseline = run_attack(BaselinePolicy(), pattern_factory(), activations,
                          trh, banks, rows, refresh_groups)
    if protected.elapsed_ps == 0:
        return 0.0
    return 1.0 - baseline.elapsed_ps / protected.elapsed_ps
