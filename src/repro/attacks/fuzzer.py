"""Attack fuzzer: randomized pattern search against a mitigation.

Blacksmith's key lesson is that hand-crafted patterns under-explore the
attack space — its fuzzer found the TRR-breaking patterns. This module
is the equivalent for our harness: it samples random structured patterns
(aggressor counts, frequencies, phases, bank spread, decoy dilution),
runs each against a fresh policy instance, and reports the worst
unmitigated activation count found.

Used by ``benchmarks/bench_fuzzer.py`` as a randomized security
regression: across dozens of fuzzed patterns, no secure design may ever
let a row past T_RH.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator

from ..mitigations.base import MitigationPolicy
from ..rng import derive_seed
from .harness import run_attack
from .ledger import LedgerReport
from .patterns import (Target, blacksmith, decoy_hammer, double_sided,
                       many_sided, multi_bank_single_row, single_sided,
                       srq_fill)


@dataclass(frozen=True)
class FuzzCase:
    """One sampled attack pattern (self-describing for reproduction)."""

    description: str
    factory: Callable[[], Iterator[Target]]


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign.

    ``per_case`` rows are ``(description, worst_count, case_seed)``;
    feeding a row's ``case_seed`` to :func:`replay_case` re-runs that
    exact pattern in isolation — no need to replay the whole campaign.
    """

    worst_count: int
    worst_case: str
    cases: int
    broken: bool
    per_case: list[tuple[str, int, int]]


def sample_case(rng: random.Random, banks: int, rows: int) -> FuzzCase:
    """Draw one random structured attack pattern."""
    kind = rng.choice(("single", "double", "many", "multibank", "srqfill",
                       "decoy", "blacksmith"))
    base = rng.randrange(8, rows - 64)
    if kind == "single":
        return FuzzCase(f"single(row={base})",
                        lambda: single_sided(0, base))
    if kind == "double":
        return FuzzCase(f"double(victim={base})",
                        lambda: double_sided(0, base))
    if kind == "many":
        count = rng.choice((3, 6, 12, 24, 48))
        return FuzzCase(
            f"many(rows={count}@{base})",
            lambda: many_sided(0, range(base, base + count)))
    if kind == "multibank":
        spread = rng.randrange(2, banks + 1)
        return FuzzCase(
            f"multibank(banks={spread},row={base})",
            lambda: multi_bank_single_row(range(spread), base))
    if kind == "srqfill":
        count = rng.choice((32, 100, 400))
        start = min(base, max(rows - count - 1, 0))
        return FuzzCase(f"srqfill(rows={count}@{start})",
                        lambda: srq_fill(0, count, start_row=start))
    if kind == "decoy":
        fraction = rng.choice((0.3, 0.5, 0.7, 0.9))
        decoys = rng.choice((20, 100, 500))
        target = min(base, max(rows - decoys - 16, 1))
        seed = rng.getrandbits(32)
        return FuzzCase(
            f"decoy(f={fraction},decoys={decoys}@{target})",
            lambda: decoy_hammer(0, target, decoys, fraction,
                                 rng=random.Random(seed)))
    pairs = rng.choice((2, 3, 4))
    freqs = tuple(rng.choice((1, 2, 3, 4, 8)) for _ in range(pairs))
    return FuzzCase(
        f"blacksmith(pairs={pairs},freqs={freqs})",
        lambda: blacksmith(0, base, pairs=pairs, frequencies=freqs))


def replay_case(policy_factory: Callable[[], MitigationPolicy],
                case_seed: int, trh: int, acts_per_case: int = 100_000,
                banks: int = 4, rows: int = 1024,
                refresh_groups: int = 64) -> tuple[FuzzCase, int]:
    """Re-run one fuzz case from its logged seed.

    The case's pattern is fully determined by ``case_seed`` (the third
    element of a :class:`FuzzResult` ``per_case`` row), independent of
    the campaign that found it. Returns the case and its worst
    unmitigated activation count.
    """
    case = sample_case(random.Random(case_seed), banks, rows)
    result = run_attack(policy_factory(), case.factory(),
                        acts_per_case, trh=trh, banks=banks,
                        rows=rows, refresh_groups=refresh_groups,
                        stop_on_failure=True)
    return case, result.ledger.max_count


def fuzz(policy_factory: Callable[[], MitigationPolicy], trh: int,
         cases: int = 20, acts_per_case: int = 100_000,
         banks: int = 4, rows: int = 1024, refresh_groups: int = 64,
         seed: int = 0xF422,
         rng: random.Random | None = None) -> FuzzResult:
    """Run a fuzzing campaign; returns the worst observation.

    ``rng`` (when given) is the explicit randomness handle the case
    seeds are drawn from; otherwise a private generator derived from
    ``seed`` is used. Either way each case gets its own logged seed, so
    any single case replays via :func:`replay_case` without re-running
    the ones before it.
    """
    if rng is None:
        rng = random.Random(derive_seed(seed, "attack-fuzzer"))
    worst_count, worst_case = 0, "none"
    per_case: list[tuple[str, int, int]] = []
    for _ in range(cases):
        case_seed = rng.getrandbits(48)
        case, count = replay_case(policy_factory, case_seed, trh,
                                  acts_per_case, banks, rows,
                                  refresh_groups)
        per_case.append((case.description, count, case_seed))
        if count > worst_count:
            worst_count, worst_case = count, case.description
    return FuzzResult(worst_count=worst_count, worst_case=worst_case,
                      cases=cases, broken=worst_count > trh,
                      per_case=per_case)
