"""Ground-truth security ledger.

The threat model (Section 2.1) declares an attack successful when any row
receives more than T_RH activations *without an intervening mitigation or
refresh*. The ledger is the omniscient referee: it counts activations per
(bank, row) independently of whatever the mitigation believes, resets a
row's count when the policy mitigates it (its victims are refreshed) or
when periodic refresh reaches it, and records the maximum count ever
observed.

The ledger is aggressor-centric and deliberately *conservative*: a victim
refresh triggered by mitigating row r clears only r's ledger count, even
though it also freshens rows that other aggressors were hammering. The
mitigations therefore face a slightly stronger adversary here than in
reality — if they pass, they pass with margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mitigations.prac_state import RefreshSchedule


@dataclass
class LedgerReport:
    """Outcome of a security run."""

    max_count: int
    max_bank: int
    max_row: int
    total_activations: int
    trh: int

    @property
    def attack_succeeded(self) -> bool:
        return self.max_count > self.trh


class HammerLedger:
    """Per-(bank, row) unmitigated-activation counts."""

    def __init__(self, banks: int, rows: int, trh: int,
                 refresh_groups: int = 8192):
        if banks <= 0 or rows <= 0 or trh <= 0:
            raise ValueError("banks, rows, trh must be positive")
        self.banks = banks
        self.rows = rows
        self.trh = trh
        self.counts = [np.zeros(rows, dtype=np.int64) for _ in range(banks)]
        self.refresh_schedule = RefreshSchedule(rows, refresh_groups)
        self.max_count = 0
        self.max_bank = 0
        self.max_row = 0
        self.total_activations = 0

    def on_activate(self, bank: int, row: int) -> int:
        """Count one activation; returns the row's running count."""
        self.total_activations += 1
        counts = self.counts[bank]
        counts[row] += 1
        value = int(counts[row])
        if value > self.max_count:
            self.max_count = value
            self.max_bank = bank
            self.max_row = row
        return value

    def on_mitigation(self, bank: int, row: int) -> None:
        """The policy victim-refreshed around ``row``: its slate is clean."""
        if 0 <= row < self.rows:
            self.counts[bank][row] = 0

    def on_refresh(self) -> None:
        """One REF: the next refresh group's rows are freshened."""
        start, stop = self.refresh_schedule.advance()
        for bank in range(self.banks):
            self.counts[bank][start:stop] = 0

    def report(self) -> LedgerReport:
        return LedgerReport(
            max_count=self.max_count, max_bank=self.max_bank,
            max_row=self.max_row, total_activations=self.total_activations,
            trh=self.trh,
        )
