"""DRAM bank state machine.

A bank is either *precharged* (idle) or has one *open row*. The state
machine enforces the JEDEC timing legality rules between ACT, column
commands, and PRE, and records per-episode timing so that MoPAC-C's two
precharge flavours (normal and counter-update) can coexist: the timing set
is supplied **per activation episode**, not fixed at construction.

Illegal command sequences raise :class:`TimingViolation` — the memory
controller is required to consult ``earliest_*`` before issuing, and the
tests use the exceptions to prove the controller never cheats the timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import TimingSet


class TimingViolation(Exception):
    """A DRAM command was issued before its timing constraints allowed."""


@dataclass
class BankStats:
    activations: int = 0
    reads: int = 0
    writes: int = 0
    precharges: int = 0
    counter_update_precharges: int = 0
    row_hits: int = 0
    row_conflicts: int = 0


@dataclass
class Bank:
    """One DRAM bank: open-row state plus timing bookkeeping (ps)."""

    index: int
    open_row: int | None = None
    #: timing set governing the *current* open episode (set at ACT)
    episode_timing: TimingSet | None = None
    #: earliest time the next ACT may issue
    ready_act: int = 0
    #: earliest time a column command may issue (tRCD after ACT)
    ready_col: int = 0
    #: earliest time PRE may issue (tRAS after ACT, tWR after WR)
    ready_pre: int = 0
    #: time of the most recent ACT (for tRC of the next ACT)
    last_act: int = -(10**18)
    #: bank unavailable until this time (REF / RFM stall)
    blocked_until: int = 0
    stats: BankStats = field(default_factory=BankStats)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def earliest_activate(self) -> int:
        """Earliest legal issue time for the next ACT (bank must be idle)."""
        return max(self.ready_act, self.blocked_until)

    def earliest_column(self) -> int:
        return max(self.ready_col, self.blocked_until)

    def earliest_precharge(self) -> int:
        return max(self.ready_pre, self.blocked_until)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def activate(self, row: int, now: int, timing: TimingSet) -> int:
        """Open ``row``; returns when the row becomes readable.

        ``timing`` is the episode timing set: PRAC inflates tRCD/tRC for
        every episode, MoPAC-C only for episodes selected for counter
        update, the baseline and MoPAC-D never.
        """
        if self.is_open:
            raise TimingViolation(
                f"bank {self.index}: ACT while row {self.open_row} open")
        if now < self.earliest_activate():
            raise TimingViolation(
                f"bank {self.index}: ACT at {now} before "
                f"{self.earliest_activate()}")
        self.open_row = row
        self.episode_timing = timing
        self.last_act = now
        self.ready_col = now + timing.tRCD
        self.ready_pre = now + timing.tRAS
        self.stats.activations += 1
        return self.ready_col

    def read(self, row: int, now: int) -> int:
        """Issue a column read; returns data-available time."""
        timing = self._require_open(row, now)
        self.stats.reads += 1
        self.stats.row_hits += 1
        # Read-to-precharge: the burst must leave the bank before the
        # row closes, so a forward-dated read cannot be trailed by a
        # PRE dated earlier than the read itself.
        self.ready_pre = max(self.ready_pre, now + timing.tBURST)
        return now + timing.tCAS + timing.tBURST

    def write(self, row: int, now: int) -> int:
        """Issue a column write; returns completion; extends PRE readiness."""
        timing = self._require_open(row, now)
        self.stats.writes += 1
        self.stats.row_hits += 1
        # Write recovery: PRE must wait tWR after the write data lands.
        self.ready_pre = max(self.ready_pre, now + timing.tBURST + timing.tWR)
        return now + timing.tCAS + timing.tBURST

    def precharge(self, now: int, timing: TimingSet | None = None,
                  counter_update: bool = False) -> int:
        """Close the open row; returns when the bank can be re-activated.

        ``timing`` defaults to the episode timing set from the ACT; the
        memory controller passes the PRAC timing set here for a PREcu so
        that the precharge pays the counter-update latency (tRP = 36 ns).
        """
        if not self.is_open:
            raise TimingViolation(f"bank {self.index}: PRE while idle")
        if now < self.earliest_precharge():
            raise TimingViolation(
                f"bank {self.index}: PRE at {now} before "
                f"{self.earliest_precharge()}")
        timing = timing or self.episode_timing
        assert timing is not None
        self.open_row = None
        self.episode_timing = None
        self.ready_act = max(now + timing.tRP, self.last_act + timing.tRC)
        self.stats.precharges += 1
        if counter_update:
            self.stats.counter_update_precharges += 1
        return self.ready_act

    def block_until(self, until: int) -> None:
        """Make the bank unavailable until ``until`` (REF / RFM stall)."""
        self.blocked_until = max(self.blocked_until, until)

    def note_conflict(self) -> None:
        self.stats.row_conflicts += 1

    # ------------------------------------------------------------------
    def _require_open(self, row: int, now: int) -> TimingSet:
        if self.open_row != row:
            raise TimingViolation(
                f"bank {self.index}: column command to row {row} but open "
                f"row is {self.open_row}")
        if now < self.earliest_column():
            raise TimingViolation(
                f"bank {self.index}: column command at {now} before "
                f"{self.earliest_column()}")
        assert self.episode_timing is not None
        return self.episode_timing
