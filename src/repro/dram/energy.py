"""DDR5 energy model (extension beyond the paper's evaluation).

PRAC's counter read-modify-write does not just cost time: every inflated
precharge burns extra array energy. This module post-processes the
counters a finished simulation already collected (activations, column
accesses, counter-update precharges, refreshes, ALERT episodes) into
energy, using an IDD-style per-operation model with DDR5-class constants.

The absolute joules are indicative (vendor IDD values are NDA'd); the
*relative* comparison — PRAC pays the counter-update energy on every
activation, MoPAC-C on a p-fraction, MoPAC-D only on drains — is the
point, benched in ``benchmarks/bench_extension_energy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.system import SystemResult

#: Per-operation energy constants (nanojoules), DDR5-class estimates.
ACT_PRE_NJ = 2.2  #: one activate/precharge pair (row cycle)
RD_NJ = 1.4  #: one read burst (BL16, x64 equivalent)
WR_NJ = 1.5  #: one write burst
COUNTER_UPDATE_NJ = 1.1  #: PRAC read-modify-write of the counter word
REF_NJ = 28.0  #: one all-bank REF command
RFM_NJ = 14.0  #: one RFM (mitigation service window)
BACKGROUND_MW = 120.0  #: standby/background power per sub-channel (mW)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by source, in millijoules."""

    activate_mj: float
    read_mj: float
    write_mj: float
    counter_update_mj: float
    refresh_mj: float
    rfm_mj: float
    background_mj: float

    @property
    def total_mj(self) -> float:
        return (self.activate_mj + self.read_mj + self.write_mj
                + self.counter_update_mj + self.refresh_mj + self.rfm_mj
                + self.background_mj)

    @property
    def counter_update_share(self) -> float:
        total = self.total_mj
        return self.counter_update_mj / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "activate": self.activate_mj, "read": self.read_mj,
            "write": self.write_mj,
            "counter_update": self.counter_update_mj,
            "refresh": self.refresh_mj, "rfm": self.rfm_mj,
            "background": self.background_mj, "total": self.total_mj,
        }


def energy_of(result: SystemResult) -> EnergyBreakdown:
    """Energy breakdown of a finished run."""
    acts = result.total_activations
    reads = sum(s.reads for s in result.mc_stats)
    writes = sum(s.writes for s in result.mc_stats)
    refreshes = sum(s.refreshes for s in result.mc_stats)
    alerts = result.total_alerts
    updates = sum(s.get("counter_updates", 0)
                  for s in result.policy_stats)
    seconds = result.elapsed_ps / 1e12
    subchannels = result.config.dram.subchannels
    nj = 1e-6  # nanojoule -> millijoule
    return EnergyBreakdown(
        activate_mj=acts * ACT_PRE_NJ * nj,
        read_mj=reads * RD_NJ * nj,
        write_mj=writes * WR_NJ * nj,
        counter_update_mj=updates * COUNTER_UPDATE_NJ * nj,
        refresh_mj=refreshes * REF_NJ * nj,
        rfm_mj=alerts * RFM_NJ * nj,
        background_mj=BACKGROUND_MW * seconds * subchannels,
    )


def energy_overhead(result: SystemResult,
                    baseline: SystemResult) -> float:
    """Relative total-energy overhead vs a baseline run.

    Uses energy *per retired instruction* so runs of slightly different
    wall time compare fairly.
    """
    inst = sum(s.instructions for s in result.core_stats)
    inst_base = sum(s.instructions for s in baseline.core_stats)
    if not inst or not inst_base:
        return 0.0
    epi = energy_of(result).total_mj / inst
    epi_base = energy_of(baseline).total_mj / inst_base
    return epi / epi_base - 1.0
