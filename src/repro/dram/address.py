"""Physical address mapping.

The paper uses the *Minimalist Open Page* (MOP) mapping [Kaseridis+,
MICRO'11] with 4 lines per row: a small number of consecutive cache lines
stay in the same row (to harvest spatial locality as row-buffer hits) and
the next group of lines moves to a different bank (to harvest bank-level
parallelism). Bit layout, from least-significant line-address bits upward:

    [mop offset within row] [bank] [subchannel] [row] [remaining column]

so a linear sweep touches ``mop_lines`` lines in a row, then the same MOP
slot of the next bank, round-robins all banks and sub-channels, and only
then advances to the next row chunk.

A classic fully open-page mapping (whole row contiguous) is also provided
for comparison experiments.
"""

from __future__ import annotations

from ..config import DRAMConfig
from .commands import BankAddress, LineAddress


class AddressMapper:
    """Base interface: map a linear line index to a DRAM location."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    def map_line(self, line_index: int) -> LineAddress:
        raise NotImplementedError

    def total_lines(self) -> int:
        cfg = self.config
        return cfg.total_banks * cfg.rows_per_bank * cfg.lines_per_row

    def map_address(self, byte_address: int) -> LineAddress:
        """Map a byte address (wraps around the capacity)."""
        line = (byte_address // self.config.line_bytes) % self.total_lines()
        return self.map_line(line)


class MOPMapper(AddressMapper):
    """Minimalist Open Page mapping with ``config.mop_lines`` lines/row."""

    def map_line(self, line_index: int) -> LineAddress:
        cfg = self.config
        line_index %= self.total_lines()
        mop = cfg.mop_lines
        groups_per_row = cfg.lines_per_row // mop

        offset = line_index % mop
        rest = line_index // mop
        bank = rest % cfg.banks_per_subchannel
        rest //= cfg.banks_per_subchannel
        subchannel = rest % cfg.subchannels
        rest //= cfg.subchannels
        row = rest % cfg.rows_per_bank
        group = (rest // cfg.rows_per_bank) % groups_per_row

        column = group * mop + offset
        return LineAddress(BankAddress(subchannel, bank, row), column)


class OpenPageMapper(AddressMapper):
    """Row-contiguous mapping: an entire row's lines are consecutive."""

    def map_line(self, line_index: int) -> LineAddress:
        cfg = self.config
        line_index %= self.total_lines()

        column = line_index % cfg.lines_per_row
        rest = line_index // cfg.lines_per_row
        bank = rest % cfg.banks_per_subchannel
        rest //= cfg.banks_per_subchannel
        subchannel = rest % cfg.subchannels
        row = (rest // cfg.subchannels) % cfg.rows_per_bank
        return LineAddress(BankAddress(subchannel, bank, row), column)


def make_mapper(config: DRAMConfig, kind: str = "mop") -> AddressMapper:
    """Factory: ``kind`` is ``"mop"`` (paper default) or ``"open"``."""
    if kind == "mop":
        return MOPMapper(config)
    if kind == "open":
        return OpenPageMapper(config)
    raise ValueError(f"unknown mapper kind: {kind!r}")
