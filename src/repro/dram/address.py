"""Physical address mapping.

The paper uses the *Minimalist Open Page* (MOP) mapping [Kaseridis+,
MICRO'11] with 4 lines per row: a small number of consecutive cache lines
stay in the same row (to harvest spatial locality as row-buffer hits) and
the next group of lines moves to a different bank (to harvest bank-level
parallelism). Bit layout, from least-significant line-address bits upward:

    [mop offset within row] [bank] [subchannel] [row] [remaining column]

so a linear sweep touches ``mop_lines`` lines in a row, then the same MOP
slot of the next bank, round-robins all banks and sub-channels, and only
then advances to the next row chunk.

A classic fully open-page mapping (whole row contiguous) is also provided
for comparison experiments.
"""

from __future__ import annotations

from ..config import DRAMConfig
from .commands import BankAddress, LineAddress


class AddressMapper:
    """Base interface: map a linear line index to a DRAM location.

    Geometry divisors are cached at construction: ``map_line`` runs once
    per simulated LLC miss, and :class:`~repro.config.DRAMConfig` is a
    frozen dataclass, so re-deriving them per call buys nothing.
    """

    def __init__(self, config: DRAMConfig):
        self.config = config
        self._total_lines = (config.total_banks * config.rows_per_bank
                             * config.lines_per_row)
        self._line_bytes = config.line_bytes

    def map_line(self, line_index: int) -> LineAddress:
        raise NotImplementedError

    def map_line_raw(self, line_index: int) -> tuple[int, int, int]:
        """``(subchannel, bank, row)`` of a line, without address objects.

        The fast engine maps every LLC miss through this instead of
        :meth:`map_line`: it never needs the column, and skipping the
        frozen-dataclass construction (plus validation) roughly halves
        the mapping cost. Subclasses get this derived fallback; the
        bundled mappers override it with the direct arithmetic.
        """
        address = self.map_line(line_index).bank_address
        return address.subchannel, address.bank, address.row

    def total_lines(self) -> int:
        return self._total_lines

    def map_address(self, byte_address: int) -> LineAddress:
        """Map a byte address (wraps around the capacity)."""
        line = (byte_address // self._line_bytes) % self._total_lines
        return self.map_line(line)


class MOPMapper(AddressMapper):
    """Minimalist Open Page mapping with ``config.mop_lines`` lines/row."""

    def __init__(self, config: DRAMConfig):
        super().__init__(config)
        self._mop = config.mop_lines
        self._banks = config.banks_per_subchannel
        self._subchannels = config.subchannels
        self._rows = config.rows_per_bank
        self._groups_per_row = config.lines_per_row // config.mop_lines

    def map_line(self, line_index: int) -> LineAddress:
        mop = self._mop
        line_index %= self._total_lines

        offset = line_index % mop
        rest = line_index // mop
        bank = rest % self._banks
        rest //= self._banks
        subchannel = rest % self._subchannels
        rest //= self._subchannels
        row = rest % self._rows
        group = (rest // self._rows) % self._groups_per_row

        column = group * mop + offset
        return LineAddress(BankAddress(subchannel, bank, row), column)

    def map_line_raw(self, line_index: int) -> tuple[int, int, int]:
        rest = (line_index % self._total_lines) // self._mop
        bank = rest % self._banks
        rest //= self._banks
        subchannel = rest % self._subchannels
        row = (rest // self._subchannels) % self._rows
        return subchannel, bank, row


class OpenPageMapper(AddressMapper):
    """Row-contiguous mapping: an entire row's lines are consecutive."""

    def __init__(self, config: DRAMConfig):
        super().__init__(config)
        self._lines_per_row = config.lines_per_row
        self._banks = config.banks_per_subchannel
        self._subchannels = config.subchannels
        self._rows = config.rows_per_bank

    def map_line(self, line_index: int) -> LineAddress:
        line_index %= self._total_lines

        column = line_index % self._lines_per_row
        rest = line_index // self._lines_per_row
        bank = rest % self._banks
        rest //= self._banks
        subchannel = rest % self._subchannels
        row = (rest // self._subchannels) % self._rows
        return LineAddress(BankAddress(subchannel, bank, row), column)

    def map_line_raw(self, line_index: int) -> tuple[int, int, int]:
        rest = (line_index % self._total_lines) // self._lines_per_row
        bank = rest % self._banks
        rest //= self._banks
        subchannel = rest % self._subchannels
        row = (rest // self._subchannels) % self._rows
        return subchannel, bank, row


def make_mapper(config: DRAMConfig, kind: str = "mop") -> AddressMapper:
    """Factory: ``kind`` is ``"mop"`` (paper default) or ``"open"``."""
    if kind == "mop":
        return MOPMapper(config)
    if kind == "open":
        return OpenPageMapper(config)
    raise ValueError(f"unknown mapper kind: {kind!r}")
