"""DRAM substrate: timing sets, banks, address mapping, commands."""

from .address import AddressMapper, MOPMapper, OpenPageMapper, make_mapper
from .bank import Bank, BankStats, TimingViolation
from .commands import BankAddress, Command, LineAddress
from .energy import EnergyBreakdown, energy_of, energy_overhead
from .timing import MoPACTimings, TimingSet, ddr5_base, ddr5_prac

__all__ = [
    "AddressMapper", "Bank", "BankAddress", "BankStats", "Command",
    "EnergyBreakdown", "LineAddress", "MOPMapper", "MoPACTimings",
    "OpenPageMapper", "energy_of", "energy_overhead",
    "TimingSet", "TimingViolation", "ddr5_base", "ddr5_prac", "make_mapper",
]
