"""DRAM command vocabulary.

The command set mirrors what the memory controller can put on the command
bus. ``PRE_CU`` is MoPAC-C's second precharge flavour (Section 5.1): it
performs the PRAC counter read-modify-write and therefore pays the inflated
PRAC precharge latency, while plain ``PRE`` completes in baseline time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Command(enum.Enum):
    ACT = "ACT"
    PRE = "PRE"
    PRE_CU = "PREcu"  #: precharge with counter update (MoPAC-C)
    RD = "RD"
    WR = "WR"
    REF = "REF"
    RFM = "RFM"  #: refresh management, issued in response to ALERT

    @property
    def is_precharge(self) -> bool:
        return self in (Command.PRE, Command.PRE_CU)

    @property
    def is_column(self) -> bool:
        return self in (Command.RD, Command.WR)


@dataclass(frozen=True, slots=True)
class BankAddress:
    """Physical location of a row: (sub-channel, bank, row)."""

    subchannel: int
    bank: int
    row: int

    def __post_init__(self) -> None:
        if self.subchannel < 0 or self.bank < 0 or self.row < 0:
            raise ValueError("address components must be non-negative")


@dataclass(frozen=True, slots=True)
class LineAddress:
    """A cache-line address after mapping: bank address plus column index."""

    bank_address: BankAddress
    column: int

    @property
    def subchannel(self) -> int:
        return self.bank_address.subchannel

    @property
    def bank(self) -> int:
        return self.bank_address.bank

    @property
    def row(self) -> int:
        return self.bank_address.row
