"""DDR5 timing sets (paper Table 1).

A :class:`TimingSet` is an immutable bundle of the DRAM timing constraints
the simulator enforces. Two canonical sets are provided:

* :func:`ddr5_base` — DDR5-6000AN without PRAC,
* :func:`ddr5_prac` — the same device with PRAC's inflated timings
  (JESD79-5C): tRP 14 ns -> 36 ns, tRCD 14 ns -> 16 ns, tRAS 32 ns -> 16 ns,
  so tRC rises 46 ns -> 52 ns.

MoPAC-C uses *both*: normal precharges finish in ``ddr5_base`` time while
counter-update precharges (PREcu) pay the PRAC precharge latency. The
:class:`MoPACTimings` helper pairs the two sets and exposes the per-command
choice. MoPAC-D runs entirely on ``ddr5_base`` timings (counter updates are
paid for with ABO/REF time instead).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import ns, to_ns


@dataclass(frozen=True)
class TimingSet:
    """DRAM timing constraints, all in integer picoseconds.

    Attributes mirror the JEDEC names used in paper Table 1 plus the handful
    of additional constraints needed for a working controller (CAS latency,
    burst time, ACT-to-ACT spacing).
    """

    name: str
    tRCD: int  #: ACT -> column command
    tRP: int  #: PRE -> next ACT (the PRAC pain point)
    tRAS: int  #: ACT -> PRE (minimum row-open time)
    tRC: int  #: ACT -> next ACT, same bank
    tREFW: int  #: refresh window (retention period)
    tREFI: int  #: average interval between REF commands
    tRFC: int  #: all-bank REF execution time
    tRFCsb: int  #: same-bank REF execution time (one bank unavailable)
    tCAS: int  #: column command -> data (read latency component)
    tBURST: int  #: data-bus occupancy of one burst (BL16)
    tRRD: int  #: ACT -> ACT, different banks
    tFAW: int  #: rolling four-activation window per sub-channel
    tWR: int  #: write recovery before PRE
    tALERT_NORMAL: int  #: post-ALERT window where the MC may keep operating
    tALERT_RFM: int  #: RFM execution time under ABO
    tPRACU: int  #: per-row PRAC read-modify-write time under ABO/REF (70 ns)

    def __post_init__(self) -> None:
        if self.tRC != self.tRAS + self.tRP:
            raise ValueError(
                f"{self.name}: tRC ({to_ns(self.tRC)} ns) must equal "
                f"tRAS + tRP ({to_ns(self.tRAS + self.tRP)} ns)"
            )
        for field in (
            "tRCD", "tRP", "tRAS", "tRC", "tREFW", "tREFI", "tRFC",
            "tCAS", "tBURST", "tRRD", "tFAW", "tWR",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{self.name}: {field} must be positive")

    @property
    def alert_stall(self) -> int:
        """Total DRAM-unavailable time per ABO episode (paper: 350 ns)."""
        return self.tALERT_RFM

    @property
    def alert_total(self) -> int:
        """Total ALERT wall time: normal window + RFM stall (530 ns)."""
        return self.tALERT_NORMAL + self.tALERT_RFM

    @property
    def refs_per_refw(self) -> int:
        """Number of REF commands in one refresh window."""
        return self.tREFW // self.tREFI

    def row_conflict_read_latency(self) -> int:
        """Latency to serve a read that conflicts with an open row.

        Paper Figure 4: PRE + ACT + RD = 14 + 14 + 12 = 40 ns for the
        baseline and 62 ns with PRAC (the paper's figure keeps tRCD at
        14 ns; with PRAC's tRCD of 16 ns the value is 64 ns).
        """
        return self.tRP + self.tRCD + self.tCAS

    def scaled_refresh(self, scale: float) -> "TimingSet":
        """Return a copy with the refresh window shrunk by ``scale``.

        Scaled-down runs keep per-access timings identical but shorten
        tREFW (and tREFI proportionally) so that refresh-window-relative
        statistics (APRI, hot-row counts, drain-on-REF rates) converge in
        far fewer simulated instructions. ``scale=1`` is the paper setup.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        return replace(
            self,
            name=f"{self.name}@x{scale:g}",
            tREFW=max(int(self.tREFW * scale), self.tREFI),
        )


def ddr5_base() -> TimingSet:
    """DDR5-6000AN timings without PRAC (paper Table 1, 'Base' column)."""
    return TimingSet(
        name="DDR5-6000AN",
        tRCD=ns(14),
        tRP=ns(14),
        tRAS=ns(32),
        tRC=ns(46),
        tREFW=ns(32_000_000),  # 32 ms
        tREFI=ns(3900),
        tRFC=ns(410),
        tRFCsb=ns(130),
        tCAS=ns(12),
        tBURST=ns(2.667),  # BL16 at 6000 MT/s
        tRRD=ns(2.5),
        tFAW=ns(13.333),
        tWR=ns(15),
        tALERT_NORMAL=ns(180),
        tALERT_RFM=ns(350),
        tPRACU=ns(70),
    )


#: PRAC timing inflation over the base device (paper Table 1 deltas):
#: the per-row counter read-modify-write lengthens the precharge by
#: 22 ns and the whole row cycle by 6 ns, and the updated counter adds
#: 2 ns before the first column command; the row-open window absorbs
#: the rest (tRAS' = tRC' - tRP').
PRAC_TRP_DELTA = ns(22)
PRAC_TRCD_DELTA = ns(2)
PRAC_TRC_DELTA = ns(6)


def derive_prac(base: TimingSet, name: str | None = None) -> TimingSet:
    """PRAC-inflated variant of an arbitrary base timing set.

    Applies the Table 1 deltas (tRP +22 ns, tRCD +2 ns, tRC +6 ns) and
    rebalances tRAS to keep the ``tRC == tRAS + tRP`` identity. Devices
    whose row cycle is too short to absorb the longer precharge have no
    PRAC variant; that surfaces as a :class:`ValueError` here rather
    than as a negative tRAS downstream.
    """
    trp = base.tRP + PRAC_TRP_DELTA
    trc = base.tRC + PRAC_TRC_DELTA
    tras = trc - trp
    if tras <= 0:
        raise ValueError(
            f"{base.name}: tRC {to_ns(base.tRC)} ns too short for PRAC "
            f"(derived tRAS would be {to_ns(tras)} ns)")
    return replace(
        base,
        name=name or f"{base.name}+PRAC",
        tRCD=base.tRCD + PRAC_TRCD_DELTA,
        tRP=trp,
        tRAS=tras,
        tRC=trc,
    )


def ddr5_prac() -> TimingSet:
    """DDR5 timings with PRAC counter-update overheads (Table 1, 'PRAC')."""
    return derive_prac(ddr5_base(), name="DDR5-6000AN+PRAC")


@dataclass(frozen=True)
class MoPACTimings:
    """The timing pair used by MoPAC-C.

    ``normal`` governs activations closed with a plain PRE; ``counter_update``
    governs activations the memory controller selected (with probability p)
    to be closed with PREcu. The paper, Section 5.1: "PRE uses a longer tRAS,
    whereas PREcu uses a shorter tRAS".
    """

    normal: TimingSet
    counter_update: TimingSet

    @staticmethod
    def default() -> "MoPACTimings":
        return MoPACTimings(normal=ddr5_base(), counter_update=ddr5_prac())

    def for_update(self, update: bool) -> TimingSet:
        """Timing set governing a row-open episode."""
        return self.counter_update if update else self.normal
