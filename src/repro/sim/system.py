"""Full-system simulator: cores -> (LLC) -> address mapper -> controllers.

The :class:`System` owns a global event heap (time-ordered callbacks) and
wires together:

* one :class:`~repro.cpu.core.Core` per trace,
* optionally the shared LLC (by default the calibrated workloads generate
  miss streams, so the LLC is bypassed — see
  :mod:`repro.cpu.cache` for the rationale),
* the MOP address mapper,
* one :class:`~repro.mc.controller.MemoryController` per sub-channel, each
  with its own :class:`~repro.mitigations.base.MitigationPolicy` instance.

``System.run()`` executes until every core has retired its instruction
budget and returns a :class:`SystemResult` with per-core IPCs and all
subsystem statistics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..config import SystemConfig
from ..cpu.cache import SetAssociativeCache
from ..cpu.core import Core, CoreStats
from ..cpu.trace import TraceItem
from ..dram.address import make_mapper
from ..mc.controller import MCStats, MemoryController
from ..mc.pagepolicy import make_page_policy
from ..mitigations.base import MitigationPolicy
from ..mc.request import MemRequest, next_request_id
from ..obs.registry import StatsRegistry
from ..obs.tracer import EventTracer

PolicyFactory = Callable[[int], MitigationPolicy]

#: Event-time jumps at least this large (ps) count as fast-forwarded
#: idle time in the ``sim.fastforward_ps`` stat. The event loop always
#: jumps straight to the next event — there is no tick — so the stat
#: measures *simulated* idle time crossed in one hop, not wall time; it
#: is identical across engines because both pop the same event sequence
#: (see docs/performance.md).
FASTFORWARD_MIN_GAP_PS = 100_000


@dataclass
class SystemResult:
    """Everything a run produces."""

    config: SystemConfig
    core_stats: list[CoreStats]
    mc_stats: list[MCStats]
    policy_stats: list[dict]
    elapsed_ps: int
    row_activity: "RowActivityStats | None" = None
    #: flat dotted-namespace stats snapshot (see docs/observability.md)
    stats: dict[str, float] = field(default_factory=dict)
    #: wall-time phase breakdown of the run that produced this result
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def ipcs(self) -> list[float]:
        ghz = self.config.core_ghz
        return [stats.ipc(ghz) for stats in self.core_stats]

    @property
    def total_requests(self) -> int:
        return sum(stats.requests for stats in self.mc_stats)

    @property
    def row_buffer_hit_rate(self) -> float:
        hits = sum(s.row_hits for s in self.mc_stats)
        total = sum(s.row_hits + s.row_misses + s.row_conflicts
                    for s in self.mc_stats)
        return hits / total if total else 0.0

    @property
    def total_alerts(self) -> int:
        return sum(s.alerts for s in self.mc_stats)

    @property
    def total_activations(self) -> int:
        return sum(s.activations for s in self.mc_stats)

    def bus_utilization(self) -> float:
        """Fraction of wall time the data buses carried bursts."""
        if self.elapsed_ps <= 0:
            return 0.0
        timing = self.config.dram.timing
        busy = self.total_requests * timing.tBURST
        return busy / (self.elapsed_ps * self.config.dram.subchannels)

    def mean_ipc(self) -> float:
        ipcs = self.ipcs
        return sum(ipcs) / len(ipcs) if ipcs else 0.0

    def bandwidth_gbps(self) -> float:
        """Achieved DRAM bandwidth in GB/s."""
        if self.elapsed_ps <= 0:
            return 0.0
        bytes_moved = self.total_requests * self.config.dram.line_bytes
        return bytes_moved / (self.elapsed_ps / 1e12) / 1e9

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        return (
            f"elapsed {self.elapsed_ps / 1e6:.1f} us | "
            f"{self.total_requests} requests, "
            f"{self.total_activations} ACTs | "
            f"RBHR {self.row_buffer_hit_rate:.2f} | "
            f"bus {self.bus_utilization():.0%} | "
            f"{self.bandwidth_gbps():.1f} GB/s | "
            f"mean IPC {self.mean_ipc():.2f} | "
            f"{self.total_alerts} ALERTs"
        )


@dataclass
class RowActivityStats:
    """Per-refresh-window row-activation census (Table 4 columns).

    ``windows`` counts completed tREFW windows; the hot-row tallies are
    means per window per bank, directly comparable to the paper's ACT-64+
    and ACT-200+ columns (which use the full 32 ms window — scaled runs
    report the scaled-window equivalent).
    """

    windows: int = 0
    total_acts: int = 0
    total_refis: int = 0
    banks: int = 0
    act64_total: int = 0
    act200_total: int = 0

    @property
    def apri(self) -> float:
        """Mean activations per tREFI per bank."""
        if not self.total_refis or not self.banks:
            return 0.0
        return self.total_acts / self.total_refis / self.banks

    @property
    def act64(self) -> float:
        if not self.windows or not self.banks:
            return 0.0
        return self.act64_total / self.windows / self.banks

    @property
    def act200(self) -> float:
        if not self.windows or not self.banks:
            return 0.0
        return self.act200_total / self.windows / self.banks


class _RowActivityMonitor:
    """Collects :class:`RowActivityStats` from activation callbacks."""

    def __init__(self, banks_total: int, trefw_ps: int, trefi_ps: int):
        self.stats = RowActivityStats(banks=banks_total)
        self.trefw = trefw_ps
        self.trefi = trefi_ps
        self.window_end = trefw_ps
        self.counts: dict[tuple[int, int, int], int] = {}

    def notify(self, time_ps: int, subchannel: int, bank: int,
               row: int) -> None:
        if time_ps >= self.window_end:
            self._advance_to(time_ps)
        self.counts[(subchannel, bank, row)] = \
            self.counts.get((subchannel, bank, row), 0) + 1
        self.stats.total_acts += 1

    def finalize(self, elapsed_ps: int) -> RowActivityStats:
        # Roll every window the run actually completed — including idle
        # ones no activation ever touched — and discard the partial
        # trailing window: counting it as a full window would skew the
        # per-window ACT-64+/ACT-200+ means (Table 4). A run shorter
        # than one (scaled) tREFW has no completed window at all; report
        # it as a single truncated window rather than an empty census.
        if elapsed_ps >= self.window_end:
            self._advance_to(elapsed_ps)
        if not self.stats.windows and elapsed_ps > 0:
            self._roll_window()
        self.counts.clear()
        self.stats.total_refis = max(elapsed_ps // self.trefi, 1)
        return self.stats

    def _advance_to(self, time_ps: int) -> None:
        """Complete every window whose end is at or before ``time_ps``.

        An event at exactly ``window_end`` belongs to the *next* window
        (windows are half-open ``[start, start + tREFW)``), so the first
        roll flushes the live census; any further windows crossed by a
        large time jump are empty by construction and are skipped in
        O(1) instead of re-scanning the (already empty) counts per
        window. The closed-form skip lands ``window_end`` strictly
        beyond ``time_ps``, which keeps exact-boundary jumps (an ACT at
        ``k * tREFW``) in the same window as the one-roll-per-iteration
        loop it replaces.
        """
        self._roll_window()
        if time_ps >= self.window_end:
            skipped = (time_ps - self.window_end) // self.trefw + 1
            self.stats.windows += skipped
            self.window_end += skipped * self.trefw

    def _roll_window(self) -> None:
        self.stats.windows += 1
        for count in self.counts.values():
            if count >= 64:
                self.stats.act64_total += 1
            if count >= 200:
                self.stats.act200_total += 1
        self.counts.clear()
        self.window_end += self.trefw


class System:
    """One simulation instance."""

    #: Controller class to instantiate per sub-channel. The fast engine
    #: (:mod:`repro.sim.fastpath`) subclasses :class:`System` and points
    #: this at its specialised controller; everything else about system
    #: construction is shared.
    controller_cls = MemoryController

    def __init__(self, config: SystemConfig,
                 policy_factory: PolicyFactory,
                 traces: list[Iterator[TraceItem]],
                 instruction_limit: int,
                 mapper_kind: str = "mop",
                 page_policy: str = "open",
                 use_llc: bool = False,
                 collect_row_activity: bool = False,
                 windows: list[int] | None = None,
                 refresh_mode: str = "all-bank",
                 tracer: EventTracer | None = None):
        if len(traces) != config.cores:
            raise ValueError(
                f"need {config.cores} traces, got {len(traces)}")
        self.config = config
        self.mapper = make_mapper(config.dram, mapper_kind)
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = itertools.count()
        self.policies = [policy_factory(i)
                         for i in range(config.dram.subchannels)]
        self.controllers = [
            self.controller_cls(i, config.dram, self.policies[i],
                                self._schedule, self._on_complete,
                                make_page_policy(page_policy),
                                refresh_mode=refresh_mode)
            for i in range(config.dram.subchannels)
        ]
        if windows is not None and len(windows) != len(traces):
            raise ValueError("windows must match traces")
        self.cores = [
            Core(i, trace, config, instruction_limit,
                 window=windows[i] if windows is not None else None)
            for i, trace in enumerate(traces)
        ]
        self.llc = (SetAssociativeCache(config.llc_bytes, config.llc_ways,
                                        config.dram.line_bytes)
                    if use_llc else None)
        self.tracer = tracer
        if tracer is not None:
            for mc in self.controllers:
                mc.tracer = tracer
            for index, policy in enumerate(self.policies):
                policy.tracer = tracer
                policy.tracer_subchannel = index
        self.registry = StatsRegistry()
        for mc in self.controllers:
            mc.register_stats(self.registry, f"mc.{mc.subchannel}")
        for index, policy in enumerate(self.policies):
            policy.register_stats(self.registry, f"mitigation.{index}")
        self.registry.register("mitigation", self._mitigation_aggregates)
        for core in self.cores:
            self.registry.register(
                f"core.{core.core_id}",
                lambda c=core: {
                    "instructions": c.stats.instructions,
                    "requests": c.stats.requests,
                    "finish_ps": c.stats.finish_ps,
                    "ipc": c.stats.ipc(self.config.core_ghz),
                })
        self._request_owner: dict[int, int] = {}
        self._waiters: dict[int, int] = {}
        self._monitor: _RowActivityMonitor | None = None
        if collect_row_activity:
            timing = config.dram.timing
            self._monitor = _RowActivityMonitor(
                config.dram.total_banks, timing.tREFW, timing.tREFI)
            for mc in self.controllers:
                mc.act_hook = (
                    lambda t, bank, row, _sub=mc.subchannel:
                    self._monitor.notify(t, _sub, bank, row))
        self._now = 0
        self._fastforward_ps = 0

    def _mitigation_aggregates(self) -> dict[str, int]:
        """Cross-sub-channel totals under the bare ``mitigation.`` prefix."""
        return {
            "rfm_events": sum(p.stats.alerts for p in self.policies),
            "mitigations": sum(p.stats.mitigations for p in self.policies),
            "counter_updates": sum(p.stats.counter_updates
                                   for p in self.policies),
            "ref_drains": sum(p.stats.ref_drains for p in self.policies),
        }

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time_ps: int, callback: Callable[[int], None]) -> None:
        heapq.heappush(self._heap, (int(time_ps), next(self._seq), callback))

    def _on_complete(self, request: MemRequest) -> None:
        core_index = self._request_owner.pop(request.request_id, None)
        if core_index is None:
            return  # untracked writeback
        core = self.cores[core_index]
        done = request.completion_ps
        assert done is not None
        return_time = done + self.config.llc_hit_ps
        self._schedule(return_time,
                       lambda now, c=core, r=request.request_id:
                       self._core_completion(c, r, now))

    def _core_completion(self, core: Core, request_id: int,
                         now: int) -> None:
        core.on_completion(request_id, now)
        if self._waiters.get(request_id) == core.core_id:
            del self._waiters[request_id]
        self._drive_core(core, now)

    # ------------------------------------------------------------------
    # Core driving
    # ------------------------------------------------------------------
    def _drive_core(self, core: Core, now: int) -> None:
        while True:
            action, value = core.next_action()
            if action == "finish":
                return
            if action == "wait":
                self._waiters[int(value)] = core.core_id
                return
            issue = int(value)
            if issue > now:
                self._schedule(issue,
                               lambda t, c=core: self._drive_core(c, t))
                return
            item = core.take_request(float(issue))
            self._dispatch(core, item, issue)

    def _dispatch(self, core: Core, item: TraceItem, issue: int) -> None:
        if self.llc is not None and self.llc.access(item.address,
                                                    item.is_write):
            # LLC hit: no DRAM traffic, but the data still returns only
            # after the LLC lookup latency. Reads occupy the core's miss
            # window until then, and the scheduled completion wakes a
            # core that filled its ROB on cache-resident data — without
            # it the core would wait on the request id forever.
            if not item.is_write:
                request_id = next_request_id()
                core.track(request_id)
                self._schedule(issue + self.config.llc_hit_ps,
                               lambda now, c=core, r=request_id:
                               self._core_completion(c, r, now))
            return
        arrival = issue + self.config.llc_hit_ps
        line = self.mapper.map_address(item.address)
        request = MemRequest(core.core_id, line, arrival, item.is_write)
        if not item.is_write:
            # Writes are dirty-line writebacks: they consume DRAM bandwidth
            # but never block retirement, so the core does not track them.
            core.track(request.request_id)
            self._request_owner[request.request_id] = core.core_id
        self.controllers[line.subchannel].enqueue(request, arrival)

    # ------------------------------------------------------------------
    def run(self) -> SystemResult:
        self._startup()
        self._run_loop()
        return self._finalize()

    def _startup(self) -> None:
        for mc in self.controllers:
            mc.start()
        for core in self.cores:
            self._drive_core(core, 0)

    def _run_loop(self) -> None:
        """Reference event loop: pop, advance time, dispatch.

        Subclasses (the fast engine) override only this method; startup
        and finalisation stay shared so both engines build identical
        state and identical results from it.
        """
        heappop = heapq.heappop
        while self._heap and not all(core.done for core in self.cores):
            time_ps, _, callback = heappop(self._heap)
            gap = time_ps - self._now
            if gap >= FASTFORWARD_MIN_GAP_PS:
                self._fastforward_ps += gap
            self._now = time_ps
            callback(time_ps)

    def _finalize(self) -> SystemResult:
        core_stats = [core.finalize() for core in self.cores]
        elapsed = max((s.finish_ps for s in core_stats), default=0)
        activity = (self._monitor.finalize(elapsed)
                    if self._monitor is not None else None)
        sim_stats: dict[str, float] = {
            "elapsed_ps": elapsed,
            "fastforward_ps": self._fastforward_ps,
        }
        if activity is not None:
            sim_stats["row_activity"] = {
                "windows": activity.windows,
                "total_acts": activity.total_acts,
                "apri": activity.apri,
                "act64": activity.act64,
                "act200": activity.act200,
            }
        self.registry.register("sim", lambda: sim_stats)
        return SystemResult(
            config=self.config,
            core_stats=core_stats,
            mc_stats=[mc.stats for mc in self.controllers],
            policy_stats=[p.stats.as_dict() for p in self.policies],
            elapsed_ps=elapsed,
            row_activity=activity,
            stats=self.registry.snapshot(),
        )
