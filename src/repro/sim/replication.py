"""Multi-seed replication and confidence intervals.

Single runs of the probabilistic designs carry about ±1 pp of slowdown
noise at the scaled run lengths (the paper's 100M-instruction runs
average it out). :func:`replicate` re-runs a design point under several
seeds and reports the mean with a Student-t confidence interval, which
is what EXPERIMENTS.md quotes for the headline comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

from .runner import DesignPoint, slowdown

#: two-sided 95% Student-t critical values for small samples (df = n-1)
_T_95 = {1: 12.71, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
         7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass(frozen=True)
class Replication:
    """Mean slowdown over seeds with a 95% confidence half-width."""

    point: DesignPoint
    samples: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples)
                         / (self.n - 1))

    @property
    def ci95(self) -> float:
        """95% confidence half-width (Student t)."""
        if self.n < 2:
            return float("inf")
        t = _T_95.get(self.n - 1, 1.96)
        return t * self.stdev / math.sqrt(self.n)

    def overlaps(self, other: "Replication") -> bool:
        """Whether the two 95% intervals overlap."""
        return abs(self.mean - other.mean) <= self.ci95 + other.ci95

    def __str__(self) -> str:
        return f"{self.mean:.1%} ± {self.ci95:.1%} (n={self.n})"


def replicate(point: DesignPoint, seeds: Sequence[int] = (1, 2, 3, 4, 5),
              use_cache: bool = True) -> Replication:
    """Measure a design point's slowdown across seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    samples = tuple(
        slowdown(replace(point, seed=seed), use_cache=use_cache)
        for seed in seeds)
    return Replication(point=point, samples=samples)


def significantly_faster(a: DesignPoint, b: DesignPoint,
                         seeds: Sequence[int] = (1, 2, 3, 4, 5)) -> bool:
    """True when design ``a``'s slowdown is below ``b``'s beyond noise."""
    ra = replicate(a, seeds)
    rb = replicate(b, seeds)
    return ra.mean < rb.mean and not ra.overlaps(rb)
