"""System simulation: event loop, experiment runner, multi-chip helpers."""

from .runner import (DEFAULT_INSTRUCTIONS, DESIGNS, DesignPoint, SweepResult,
                     build_config, build_traces, clear_cache, fairness,
                     harmonic_speedup, make_policy_factory, simulate,
                     slowdown, sweep, weighted_speedup)
from .replication import Replication, replicate, significantly_faster
from .system import RowActivityStats, System, SystemResult

__all__ = [
    "DEFAULT_INSTRUCTIONS", "DESIGNS", "DesignPoint", "Replication", "RowActivityStats",
    "SweepResult", "System", "SystemResult", "build_config", "build_traces",
    "clear_cache", "fairness", "harmonic_speedup", "make_policy_factory",
    "replicate", "significantly_faster",
    "simulate", "slowdown", "sweep", "weighted_speedup",
]
