"""Struct-of-arrays bank timing state for the fast engine.

The reference engine keeps per-bank timing in :class:`~repro.dram.bank.Bank`
dataclass fields and asks one bank at a time. The fast engine
(:mod:`repro.sim.fastpath`) keeps the same six quantities as parallel
per-bank arrays so the hot loop reads them by index and the maintenance
events (REF / RFM) update or scan *every* bank in one batched operation.

Scalar state lives in plain preallocated Python lists on purpose: numpy
scalar indexing (``arr[i]`` + the int round-trip) is measurably slower
than list indexing in CPython, so pushing the per-command path through
numpy would be a pessimisation. numpy earns its keep only on the batched
sweeps — the post-REF/RFM mass block and the refresh close-bound scan —
where one C-level ``maximum``/masked ``max`` replaces a Python loop over
all banks. When numpy is missing (or the geometry is too small for the
buffer round-trip to pay off) the pure-Python fallback runs instead;
both paths are exact integer arithmetic and bit-identical.
"""

from __future__ import annotations

#: Minimum bank count for the numpy batched path; below this the
#: list<->buffer round-trip costs more than the loop it replaces.
NUMPY_MIN_BANKS = 16

try:  # optional dependency: the fallback keeps results identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_python
    _np = None


class TimingSoA:
    """Per-bank timing state as parallel arrays (times in ps).

    ``open_row`` uses ``-1`` for a closed bank (rows are non-negative).
    All times are Python ints; the numpy buffers are scratch space only,
    and every value crossing back out of them is converted via
    ``tolist()``/``int()`` so downstream stats stay JSON-serialisable.
    """

    def __init__(self, banks: int, force_python: bool = False):
        self.n = banks
        self.open_row = [-1] * banks
        self.ready_act = [0] * banks
        self.ready_col = [0] * banks
        self.ready_pre = [0] * banks
        self.last_act = [-(10 ** 18)] * banks
        self.blocked_until = [0] * banks
        self._np = None
        if _np is not None and banks >= NUMPY_MIN_BANKS \
                and not force_python:
            self._np = _np
            self._buf_a = _np.zeros(banks, dtype=_np.int64)
            self._buf_b = _np.zeros(banks, dtype=_np.int64)

    @property
    def batched(self) -> bool:
        """True when the numpy sweeps are active."""
        return self._np is not None

    # ------------------------------------------------------------------
    # Batched maintenance sweeps
    # ------------------------------------------------------------------
    def block_all(self, until: int) -> None:
        """``blocked_until[i] = max(blocked_until[i], until)`` for all banks.

        This is the REF/RFM mass block (every bank stalls until the
        maintenance operation completes).
        """
        np = self._np
        if np is not None:
            buf = self._buf_a
            buf[:] = self.blocked_until
            np.maximum(buf, until, out=buf)
            self.blocked_until[:] = buf.tolist()
            return
        blocked = self.blocked_until
        for i in range(self.n):
            if blocked[i] < until:
                blocked[i] = until

    def close_bound(self, now: int) -> int:
        """Latest earliest-precharge over all *open* banks, floored at now.

        The refresh/ALERT collision check needs the last instant a
        refresh's forced closes could be dated; that is the max of
        ``max(ready_pre, blocked_until)`` over open banks.
        """
        np = self._np
        if np is not None:
            a, b = self._buf_a, self._buf_b
            a[:] = self.ready_pre
            b[:] = self.blocked_until
            np.maximum(a, b, out=a)
            b[:] = self.open_row
            mask = b >= 0
            if mask.any():
                bound = int(a[mask].max())
                return bound if bound >= now else now
            return now
        bound = now
        open_row = self.open_row
        ready_pre = self.ready_pre
        blocked = self.blocked_until
        for i in range(self.n):
            if open_row[i] >= 0:
                rp, bu = ready_pre[i], blocked[i]
                ep = rp if rp >= bu else bu
                if ep > bound:
                    bound = ep
        return bound
