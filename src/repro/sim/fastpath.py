"""Fast simulation engine: same physics, same numbers, fewer cycles.

:class:`FastSystem` is a drop-in replacement for
:class:`~repro.sim.system.System` selected via ``REPRO_ENGINE=fast``
(see :func:`repro.exec.env.engine_choice`). It produces **bit-identical**
results, stats snapshots, and event traces — the determinism matrix,
the conformance oracle, and ``make bench-engine`` all assert this — by
replaying exactly the reference engine's event sequence while removing
its constant factors:

* **Opcode events instead of closures.** The reference engine allocates
  a lambda per scheduled event; the fast heap holds
  ``(time, seq, opcode, target, arg)`` tuples dispatched by an integer
  switch. Sequence numbers are allocated at the same program points in
  both engines, so time ties break identically and the pop order — and
  therefore every downstream number — is unchanged. Legacy
  ``(time, seq, callback)`` entries still dispatch (the LLC path and
  external test code use them); seq uniqueness means mixed tuple widths
  never get compared element-by-element past index 1.
* **Index-based bank state.** Per-bank timing lives in
  :class:`~repro.sim.soa.TimingSoA` parallel arrays; the per-command
  path reads list slots instead of chasing ``Bank`` dataclass fields
  and method calls, and REF/RFM sweeps batch over all banks (numpy when
  available, pure-Python fallback). ``Bank`` objects are kept for their
  per-bank stats counters only — the fast controller does not maintain
  their timing fields.
* **Inlined hot path.** ``_fast_service`` merges ``_select`` /
  ``_commit_defer`` / ``_issue`` / the bank command bodies /
  ``_after_column`` into one function with no intermediate allocation;
  the legality guards of :class:`~repro.dram.bank.Bank` are elided
  (``repro.check``'s oracle and fuzzer re-verify legality from traces).
* **O(1) idle handling and termination.** Core doneness is monotone
  (traces only advance, outstanding sets only drain), so the loop keeps
  an active-core count updated at the only events that can change it
  instead of re-evaluating ``all(core.done)`` — which re-peeks every
  trace — before every pop. Fast-forwarded idle gaps are accounted to
  the ``sim.fastforward_ps`` stat identically in both engines.

Per-core RNG makes trace prefetch timing immaterial: each
:class:`~repro.workloads.synthetic.TraceGenerator` owns a private
``random.Random``, so *when* an item is pulled cannot change *what* is
pulled. See ``docs/performance.md`` for the measured speedup.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left

from ..cpu.trace import TraceItem
from ..mc.controller import FRFCFS_WINDOW, MemoryController
from ..mc.pagepolicy import OpenPagePolicy, PagePolicy
from ..mc.request import MemRequest, _request_ids
from ..obs.registry import Histogram
from ..workloads.synthetic import TraceGenerator
from .soa import TimingSoA
from .system import FASTFORWARD_MIN_GAP_PS, System

#: Accesses pulled per ``TraceGenerator.next_block`` refill. Per-core RNG
#: means pulling ahead cannot change the stream; the only waste is up to
#: one block of draws past the instruction budget.
TRACE_BLOCK = 256

# Event opcodes, ordered roughly by frequency for the dispatch switch.
OP_SERVICE = 0   # (controller, bank_index)
OP_COMPLETE = 1  # (core, request_id)
OP_DRIVE = 2     # (core, 0)
OP_TIMEOUT = 3   # (controller, (bank_index, access_stamp))
OP_REF = 4       # (controller, 0)
OP_REFSB = 5     # (controller, 0)
OP_RFM = 6       # (controller, 0)


class FastMemoryController(MemoryController):
    """Index-based rewrite of the FR-FCFS hot path.

    Every stat increment, tracer record, policy hook, and scheduled
    event mirrors :class:`~repro.mc.controller.MemoryController`
    line-for-line; only the bookkeeping machinery differs.
    """

    #: bound by :class:`FastSystem` right after construction:
    #: ``push(when, opcode, target, arg)`` appends one heap event.
    push = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.soa = TimingSoA(len(self.banks))
        #: OpenPagePolicy's _after_column is a pure no-op (keep_open is
        #: always True, no timeout); skipping it saves a queue scan per
        #: serviced request. Only the exact library classes qualify — a
        #: subclass may override the hooks.
        self._page_noop = self.page_policy.__class__ in (
            OpenPagePolicy, PagePolicy)
        self._all_bank = self.refresh_mode == "all-bank"
        # The bus/ACT-spacing constants come from the policy's fixed
        # timing set; scalar copies spare the attribute chain per service.
        timing = self.policy.timing
        self._tCAS = timing.tCAS
        self._tBURST = timing.tBURST
        self._tRRD = timing.tRRD
        self._tFAW = timing.tFAW
        # Bound by FastSystem right after construction so the service
        # loop can push completion events without a callback round-trip.
        self._sys_heap = None
        self._sys_seq = None
        self._owners = None
        self._cores = None
        self._llc_ps = 0
        self._ff = None
        # id(TimingSet) -> (timing, tRCD, tRAS, tCAS+tBURST, tBURST,
        # tBURST+tWR). Policies hand out a couple of timing singletons;
        # keeping the object in the tuple pins its id. The inline
        # histogram update below likewise assumes the exact library
        # Histogram (a subclass or stand-in falls back to observe()).
        self._tscal: dict = {}
        self._hist_fast = type(self.latency_hist) is Histogram

    # ------------------------------------------------------------------
    # Event-scheduling overrides: opcode tuples instead of closures
    # ------------------------------------------------------------------
    def _schedule_service(self, when: int, bank_index: int) -> None:
        self.push(when, OP_SERVICE, self, bank_index)

    def _schedule_ref(self, when: int) -> None:
        self.push(when, OP_REF, self, 0)

    def _schedule_refsb(self, when: int) -> None:
        self.push(when, OP_REFSB, self, 0)

    def _schedule_rfm(self, when: int) -> None:
        self.push(when, OP_RFM, self, 0)

    def _schedule_timeout(self, when: int, bank_index: int,
                          access_stamp: int) -> None:
        self.push(when, OP_TIMEOUT, self, (bank_index, access_stamp))

    # ------------------------------------------------------------------
    # Request entry
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest, now: int) -> None:
        address = request.address.bank_address
        # Plain attribute: the service loop compares rows once per queued
        # request per pass; the property chain (request.row ->
        # address.row -> bank_address.row) is the single hottest lookup.
        request.rowi = address.row
        stats = self.stats
        stats.requests += 1
        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        bank_index = address.bank
        self.queues[bank_index].append(request)
        if not self._bank_scheduled[bank_index]:
            self._bank_scheduled[bank_index] = True
            arrival = request.arrival_ps
            self.push(now if now >= arrival else arrival,
                      OP_SERVICE, self, bank_index)

    # ------------------------------------------------------------------
    # Hot path: _service + _select + _commit_defer + _issue, merged
    # ------------------------------------------------------------------
    def _fast_service(self, bank_index: int, now: int) -> int:
        """Service ``bank_index`` at ``now``; returns the advanced clock.

        When the post-column re-arm would be the very next event the
        loop pops (no pending heap entry fires at or before it), the
        next service runs *inline* instead of round-tripping through the
        heap — the returned time tells the event loop how far the clock
        moved so its idle accounting stays identical to the reference.
        """
        scheduled = self._bank_scheduled
        scheduled[bank_index] = False
        queue = self.queues[bank_index]
        heappush = heapq.heappush
        heap = self._sys_heap
        seq = self._sys_seq
        soa = self.soa
        while True:
            if not queue:
                return now
            blocked = soa.blocked_until[bank_index]
            if blocked > now:
                scheduled[bank_index] = True
                heappush(heap, (blocked, next(seq), OP_SERVICE, self,
                                bank_index))
                return now

            # FR-FCFS: oldest row hit within the window, else oldest.
            open_rows = soa.open_row
            open_row = open_rows[bank_index]
            request = queue[0]
            req_pos = 0
            if open_row >= 0 and request.rowi != open_row:
                pos = 1
                for other in queue:
                    if pos > FRFCFS_WINDOW:
                        break
                    if other.rowi == open_row:
                        request = other
                        req_pos = pos - 1
                        break
                    pos += 1

            # Commit-freshness check (mirrors _commit_defer): compute the
            # latest command date this service would commit, without mutating
            # anything, and defer past the horizon / outside the grace.
            arrival = request.arrival_ps
            eff_now = now if now >= arrival else arrival
            if self._all_bank:
                horizon = self._ref_horizon
                deadline = self._alert_deadline
                if deadline is not None and deadline < horizon:
                    horizon = deadline
            else:
                horizon = self._commit_horizon(bank_index)
            bus_floor = self.bus_free - self._tCAS
            hit = open_row >= 0 and request.rowi == open_row
            t_pre = t_act = 0
            if hit:
                t_col = eff_now
                ready_col = soa.ready_col[bank_index]
                earliest = ready_col if ready_col >= blocked else blocked
                if earliest > t_col:
                    t_col = earliest
                if bus_floor > t_col:
                    t_col = bus_floor
                latest = t_col
            else:
                if open_row >= 0:  # conflict: the close chains into the ACT
                    pre_timing = self.episodes[bank_index].pre_timing
                    ready_pre = soa.ready_pre[bank_index]
                    earliest = ready_pre if ready_pre >= blocked else blocked
                    t_pre = eff_now if eff_now >= earliest else earliest
                    ready_act = t_pre + pre_timing.tRP
                    bound = soa.last_act[bank_index] + pre_timing.tRC
                    if bound > ready_act:
                        ready_act = bound
                    if blocked > ready_act:
                        ready_act = blocked
                else:
                    ready_act = soa.ready_act[bank_index]
                    if blocked > ready_act:
                        ready_act = blocked
                t_act = eff_now if eff_now >= ready_act else ready_act
                if self.next_act_ok > t_act:
                    t_act = self.next_act_ok
                recent = self._recent_acts
                if len(recent) == 4:
                    bound = recent[0] + self._tFAW
                    if bound > t_act:
                        t_act = bound
                latest = t_act + self._trcd_bound
                if bus_floor > latest:
                    latest = bus_floor
            if latest - now > self._fresh_slack:
                scheduled[bank_index] = True
                heappush(heap, (latest - self._fresh_slack, next(seq),
                                OP_SERVICE, self, bank_index))
                return now
            if latest >= horizon:
                scheduled[bank_index] = True
                heappush(heap, (horizon, next(seq), OP_SERVICE, self,
                                bank_index))
                return now

            # Issue (mirrors _issue): PRE / ACT / column as needed.
            stats = self.stats
            row = request.rowi
            bank_stats = self.banks[bank_index].stats
            tracer = self.tracer
            if hit:
                stats.row_hits += 1
                episode_timing = self.episodes[bank_index].act_timing
                scal = self._tscal.get(id(episode_timing))
                if scal is None:
                    scal = self._new_scal(episode_timing)
            else:
                if open_row >= 0:
                    stats.row_conflicts += 1
                    bank_stats.row_conflicts += 1
                    self._close(bank_index, self.banks[bank_index], t_pre)
                    act_cause = "conflict"
                else:
                    stats.row_misses += 1
                    act_cause = "miss"
                decision = self.policy.on_activate(bank_index, row, t_act)
                self.episodes[bank_index] = decision
                episode_timing = decision.act_timing
                scal = self._tscal.get(id(episode_timing))
                if scal is None:
                    scal = self._new_scal(episode_timing)
                open_rows[bank_index] = row
                soa.last_act[bank_index] = t_act
                ready_col = t_act + scal[1]
                soa.ready_col[bank_index] = ready_col
                soa.ready_pre[bank_index] = t_act + scal[2]
                bank_stats.activations += 1
                self.next_act_ok = t_act + self._tRRD
                self._recent_acts.append(t_act)
                stats.activations += 1
                if self.act_hook is not None:
                    self.act_hook(t_act, bank_index, row)
                if tracer is not None:
                    tracer.record(t_act, "ACT", self.subchannel,
                                  bank_index, row, act_cause,
                                  cu=decision.counter_update)
                self._check_alert(t_act)
                # blocked_until <= t_act <= ready_col, so the column's
                # earliest time is ready_col.
                t_col = eff_now
                if ready_col > t_col:
                    t_col = ready_col
                if bus_floor > t_col:
                    t_col = bus_floor

            # Column command (bank.read/write inlined; episode timing
            # governs the bank, the policy timing governs the bus).
            bank_stats.row_hits += 1
            is_write = request.is_write
            if is_write:
                bank_stats.writes += 1
                bound = t_col + scal[5]
            else:
                bank_stats.reads += 1
                bound = t_col + scal[4]
            ready_pres = soa.ready_pre
            if bound > ready_pres[bank_index]:
                ready_pres[bank_index] = bound
            done = t_col + scal[3]
            if tracer is not None:
                tracer.record(t_col, "WR" if is_write else "RD",
                              self.subchannel, bank_index, row)
            self.bus_free = t_col + self._tCAS + self._tBURST
            self._bank_last_access[bank_index] = t_col

            # Dequeue by position (remove() re-compares dataclass fields).
            if req_pos == 0:
                queue.popleft()
            else:
                del queue[req_pos]
            request.completion_ps = done
            stats.serviced += 1
            latency = done - arrival
            stats.total_latency_ps += latency
            if not is_write:
                stats.read_serviced += 1
                stats.read_latency_ps += latency
            hist = self.latency_hist
            if self._hist_fast:
                hist.counts[bisect_left(hist.bounds, latency)] += 1
                hist.count += 1
                hist.total += latency
            else:
                hist.observe(latency)
            # on_complete (FastSystem._on_complete), inlined: schedule the
            # core-side completion directly.
            request_id = request.request_id
            owner = self._owners.pop(request_id, None)
            if owner is not None:
                heappush(heap, (done + self._llc_ps, next(seq), OP_COMPLETE,
                                self._cores[owner], request_id))
            if not self._page_noop:
                self._after_column(bank_index, self.banks[bank_index], t_col)
            if queue and not scheduled[bank_index]:
                t_next = t_col + self._tBURST
                if not heap or heap[0][0] > t_next:
                    # Every pending event fires strictly after t_next, so
                    # in the reference run the re-arm pushed here would
                    # be the very next pop: run it inline. Eliding the
                    # push skips one seq draw, which preserves relative
                    # order — all live seqs are smaller, and nothing can
                    # allocate between the push and its pop. A tie
                    # (heap[0][0] == t_next) must go through the heap:
                    # the pending event has the smaller seq and pops
                    # first in the reference.
                    gap = t_next - now
                    if gap >= FASTFORWARD_MIN_GAP_PS:
                        self._ff[0] += gap
                    now = t_next
                    continue
                scheduled[bank_index] = True
                heappush(heap, (t_next, next(seq), OP_SERVICE,
                                self, bank_index))
            return now

    def _new_scal(self, timing) -> tuple:
        """Memoise the episode-timing scalars the column path re-reads."""
        scal = (timing, timing.tRCD, timing.tRAS,
                timing.tCAS + timing.tBURST, timing.tBURST,
                timing.tBURST + timing.tWR)
        self._tscal[id(timing)] = scal
        return scal

    # ------------------------------------------------------------------
    # Row closure (SoA rewrite of _close / _after_column / _timeout_close)
    # ------------------------------------------------------------------
    def _close(self, bank_index: int, bank, when: int) -> None:
        decision = self.episodes[bank_index]
        soa = self.soa
        row = soa.open_row[bank_index]
        open_since = soa.last_act[bank_index]
        pre_timing = decision.pre_timing
        soa.open_row[bank_index] = -1
        ready_act = when + pre_timing.tRP
        bound = open_since + pre_timing.tRC
        if bound > ready_act:
            ready_act = bound
        soa.ready_act[bank_index] = ready_act
        bank.stats.precharges += 1
        counter_update = decision.counter_update
        if counter_update:
            bank.stats.counter_update_precharges += 1
        if self.tracer is not None:
            self.tracer.record(
                when, "PRE", self.subchannel, bank_index, row,
                "counter_update" if counter_update else "",
                cu=counter_update)
        self.policy.on_precharge(bank_index, row, when, counter_update)
        self.policy.note_row_open(bank_index, row, when - open_since)
        self.episodes[bank_index] = None
        self._check_alert(when)

    def _after_column(self, bank_index: int, bank, now: int) -> None:
        soa = self.soa
        open_row = soa.open_row[bank_index]
        if open_row < 0:
            return
        queued_hits = 0
        for request in self.queues[bank_index]:
            if request.rowi == open_row:
                queued_hits += 1
        if not self.page_policy.keep_open(queued_hits):
            ready_pre = soa.ready_pre[bank_index]
            blocked = soa.blocked_until[bank_index]
            when = ready_pre if ready_pre >= blocked else blocked
            if when < now:
                when = now
            if when >= self._commit_horizon(bank_index):
                self._defer_close(bank_index, now)
                return
            self._close(bank_index, bank, when)
            return
        timeout = self.page_policy.timeout_ps()
        if timeout is not None:
            self.push(now + timeout, OP_TIMEOUT, self,
                      (bank_index, self._bank_last_access[bank_index]))

    def _timeout_close(self, bank_index: int, access_stamp: int,
                       now: int) -> None:
        soa = self.soa
        if soa.open_row[bank_index] < 0:
            return
        if self._bank_last_access[bank_index] != access_stamp:
            return  # the row was touched again; a fresh timer is armed
        ready_pre = soa.ready_pre[bank_index]
        blocked = soa.blocked_until[bank_index]
        when = ready_pre if ready_pre >= blocked else blocked
        if when < now:
            when = now
        if when >= self._commit_horizon(bank_index):
            self._defer_close(bank_index, now)
            return
        self._close(bank_index, self.banks[bank_index], when)

    # ------------------------------------------------------------------
    # Maintenance (SoA rewrite; batched sweeps via TimingSoA)
    # ------------------------------------------------------------------
    def _collides_with_alert(self, now: int,
                             bank_index: int | None) -> int | None:
        """SoA version of _refresh_collides_with_alert.

        ``bank_index`` is None for an all-bank refresh (batched scan over
        every bank) or the single bank a REFsb would close.
        """
        if self._alert_deadline is None:
            return None
        soa = self.soa
        if bank_index is None:
            close_by = soa.close_bound(now)
        else:
            close_by = now
            if soa.open_row[bank_index] >= 0:
                ready_pre = soa.ready_pre[bank_index]
                blocked = soa.blocked_until[bank_index]
                earliest = ready_pre if ready_pre >= blocked else blocked
                if earliest > close_by:
                    close_by = earliest
        if close_by < self._alert_deadline:
            return None
        level = getattr(self.policy, "abo_level", 1)
        return self._alert_deadline + level * self.policy.timing.tALERT_RFM

    def _ref_event(self, now: int) -> None:
        retry = self._collides_with_alert(now, None)
        if retry is not None:
            self._ref_horizon = retry
            self.push(retry, OP_REF, self, 0)
            return
        self.stats.refreshes += 1
        if self.tracer is not None:
            self.tracer.record(now, "REF", self.subchannel, -1, -1,
                               "all-bank")
        soa = self.soa
        open_row = soa.open_row
        ready_pre = soa.ready_pre
        blocked = soa.blocked_until
        banks = self.banks
        close_by = now
        for index in range(soa.n):
            if open_row[index] >= 0:
                rp, bu = ready_pre[index], blocked[index]
                when = rp if rp >= bu else bu
                if when < now:
                    when = now
                self._close(index, banks[index], when)
                if when > close_by:
                    close_by = when
        ref_end = close_by + self.policy.timing.tRFC
        soa.block_all(ref_end)
        self.policy.on_refresh(now)
        self._check_alert(now)
        self.next_ref += self.policy.timing.tREFI
        self._ref_horizon = self.next_ref
        self.push(self.next_ref, OP_REF, self, 0)
        queues = self.queues
        for index in range(soa.n):
            if queues[index]:
                self._kick(index, ref_end)

    def _refsb_event(self, now: int) -> None:
        index = self._next_ref_bank
        retry = self._collides_with_alert(now, index)
        if retry is not None:
            self._ref_horizon = retry
            self.push(retry, OP_REFSB, self, 0)
            return
        self.stats.refreshes += 1
        self._next_ref_bank = (index + 1) % len(self.banks)
        if self.tracer is not None:
            self.tracer.record(now, "REF", self.subchannel, index, -1,
                               "same-bank")
        soa = self.soa
        start = now
        if soa.open_row[index] >= 0:
            ready_pre = soa.ready_pre[index]
            blocked = soa.blocked_until[index]
            when = ready_pre if ready_pre >= blocked else blocked
            if when < now:
                when = now
            self._close(index, self.banks[index], when)
            if when > start:
                start = when
        block_end = start + self.policy.timing.tRFCsb
        if soa.blocked_until[index] < block_end:
            soa.blocked_until[index] = block_end
        self.policy.on_refresh(now, bank=index)
        self._check_alert(now)
        self._refsb_count += 1
        self.next_ref = ((self._refsb_count + 1) * self.policy.timing.tREFI
                         // len(self.banks))
        self._ref_horizon = max(self.next_ref, now)
        self.push(self._ref_horizon, OP_REFSB, self, 0)
        if self.queues[index]:
            self._kick(index, block_end)

    def _rfm_event(self, now: int) -> None:
        level = getattr(self.policy, "abo_level", 1)
        end = now + level * self.policy.timing.tALERT_RFM
        scope = getattr(self.policy, "recovery_scope", "subchannel")
        recovery = (tuple(self.policy.alert_banks())
                    if scope == "bank" else None)
        if recovery is None:
            self.soa.block_all(end)
        else:
            # bank-scoped recovery: mirror the reference MC bit-for-bit
            blocked = self.soa.blocked_until
            for index in recovery:
                if blocked[index] < end:
                    blocked[index] = end
        for _ in range(level):
            if self.tracer is not None:
                if recovery is None:
                    self.tracer.record(now, "RFM", self.subchannel, -1, -1,
                                       "abo")
                else:
                    for index in recovery:
                        self.tracer.record(now, "RFM", self.subchannel,
                                           index, -1, "abo")
            self.policy.on_rfm(end)
        self.stats.alerts += 1
        self.stats.rfm_commands += \
            level * (1 if recovery is None else len(recovery))
        self._alert_in_flight = False
        self._alert_deadline = None
        self._check_alert(end)
        queues = self.queues
        for index in range(len(queues)):
            if queues[index]:
                self._kick(index,
                           end if recovery is None or index in recovery
                           else now)


class FastSystem(System):
    """System with the opcode event loop and the fast controller."""

    controller_cls = FastMemoryController

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: one-slot fast-forward accumulator shared with the controllers:
        #: inlined service chains advance the clock outside the event
        #: loop and must account idle gaps to the same counter.
        self._ff = [0]
        for controller in self.controllers:
            controller.push = self._push
            controller._sys_heap = self._heap
            controller._sys_seq = self._seq
            controller._owners = self._request_owner
            controller._cores = self.cores
            controller._llc_ps = self.config.llc_hit_ps
            controller._ff = self._ff
        self._llc_ps = self.config.llc_hit_ps
        self._line_bytes = self.config.dram.line_bytes
        self._total_lines = self.mapper.total_lines()
        #: line-index -> LineAddress memo: frozen-dataclass construction
        #: (plus __post_init__ validation) dominates the mapping cost and
        #: the working set is bounded by the workload footprint.
        self._line_memo: dict = {}
        # The fast engine stores the pending access in core._next_item as
        # a raw (gap, address, is_write) tuple. Synthetic traces refill
        # in blocks (next_block); anything else is pulled item-by-item
        # and unpacked. The exact-type check matters: a subclass could
        # override the draw helpers that next_block manually inlines.
        for core in self.cores:
            core._fp_gen = (core.trace
                            if type(core.trace) is TraceGenerator else None)
            core._fp_block = ()
            core._fp_pos = 0

    # ------------------------------------------------------------------
    def _push(self, when: int, op: int, target, arg) -> None:
        heapq.heappush(self._heap,
                       (int(when), next(self._seq), op, target, arg))

    def _on_complete(self, request: MemRequest) -> None:
        core_index = self._request_owner.pop(request.request_id, None)
        if core_index is None:
            return  # untracked writeback
        heapq.heappush(self._heap,
                       (request.completion_ps + self._llc_ps,
                        next(self._seq), OP_COMPLETE,
                        self.cores[core_index], request.request_id))

    # ------------------------------------------------------------------
    # Core driving (next_action / take_request inlined)
    # ------------------------------------------------------------------
    def _drive_core(self, core, now: int) -> bool:
        """Advance ``core`` as far as ``now`` allows.

        Returns True when the core is *done* on exit (trace exhausted or
        budget spent, with nothing outstanding) — the same predicate as
        :meth:`_core_done`, derived from state this loop already has in
        hand, so the event loop needn't re-peek after every drive.
        """
        heappush = heapq.heappush
        heap = self._heap
        seq = self._seq
        limit = core.instruction_limit
        rob = core.rob
        pspi = core.pspi
        gen = core._fp_gen
        while True:
            item = core._next_item
            if item is None:
                if gen is not None:
                    pos = core._fp_pos
                    block = core._fp_block
                    if pos >= len(block):
                        block = core._fp_block = gen.next_block(TRACE_BLOCK)
                        pos = 0
                    item = core._next_item = block[pos]
                    core._fp_pos = pos + 1
                elif core._exhausted:
                    return not core.outstanding
                else:
                    try:
                        nxt = next(core.trace)
                    except StopIteration:
                        core._exhausted = True
                        return not core.outstanding
                    item = core._next_item = (nxt.gap, nxt.address,
                                              nxt.is_write)
            gap = item[0]
            advance = gap + 1
            inst_index = core.inst_index
            if limit - inst_index < advance:
                # finish: budget cannot cover the next access
                return not core.outstanding
            order = core._order
            if order:
                oldest_id, oldest_index = order[0]
                if inst_index + advance - oldest_index >= rob:
                    core._waiting_on = oldest_id
                    self._waiters[oldest_id] = core.core_id
                    return False
            issue_f = core.dispatch_ps + gap * pspi
            if issue_f < core._resume_floor:
                issue_f = core._resume_floor
            issue = int(issue_f)
            if issue > now:
                heappush(heap, (issue, next(seq), OP_DRIVE, core, 0))
                return False
            # take_request, inlined
            core._next_item = None
            core.inst_index = inst_index = inst_index + advance
            core.dispatch_ps = float(issue)
            core.stats.instructions = inst_index
            core.stats.requests += 1
            self._fast_dispatch(core, item, issue)

    def _fast_dispatch(self, core, item, issue: int) -> None:
        if self.llc is not None:
            # LLC configs are not on the fast path; rebuild the TraceItem
            # and reuse the reference dispatch (its closure events run
            # through the generic arm).
            System._dispatch(self, core,
                             TraceItem(item[0], item[1], item[2]), issue)
            return
        arrival = issue + self._llc_ps
        line_index = (item[1] // self._line_bytes) % self._total_lines
        entry = self._line_memo.get(line_index)
        if entry is None:
            sub, bank, row = self.mapper.map_line_raw(line_index)
            entry = self._line_memo[line_index] = (
                self.controllers[sub], bank, row)
        mc, bank_index, rowi = entry
        # MemRequest built without the dataclass __init__ round-trip;
        # the field set must stay in lockstep with mc.request.MemRequest.
        # ``address`` carries the raw line index: requests born on the
        # fast path are consumed only by _fast_service, which reads the
        # precomputed ``rowi`` (the reference controller never sees them).
        request = MemRequest.__new__(MemRequest)
        request.core = core_id = core.core_id
        request.address = line_index
        request.arrival_ps = arrival
        request.is_write = is_write = item[2]
        request.request_id = request_id = next(_request_ids)
        request.completion_ps = None
        request.rowi = rowi
        if not is_write:
            inst_index = core.inst_index
            core.outstanding[request_id] = inst_index
            core._order.append((request_id, inst_index))
            self._request_owner[request_id] = core_id
        # controller.enqueue, inlined (now == arrival at this call site,
        # so the service kick lands exactly at arrival).
        stats = mc.stats
        stats.requests += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        mc.queues[bank_index].append(request)
        if not mc._bank_scheduled[bank_index]:
            mc._bank_scheduled[bank_index] = True
            heapq.heappush(self._heap,
                           (arrival, next(self._seq), OP_SERVICE, mc,
                            bank_index))

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _core_done(self, core) -> bool:
        """Same predicate as Core.done, with the peek inlined.

        Evaluated lazily (only after events that can flip it) instead of
        for every core before every pop; doneness is monotone, so the
        loop's active count stays exact.
        """
        if core.outstanding:
            return False
        item = core._next_item
        if item is None:
            gen = core._fp_gen
            if gen is not None:
                pos = core._fp_pos
                block = core._fp_block
                if pos >= len(block):
                    block = core._fp_block = gen.next_block(TRACE_BLOCK)
                    pos = 0
                item = core._next_item = block[pos]
                core._fp_pos = pos + 1
            elif core._exhausted:
                return True
            else:
                try:
                    nxt = next(core.trace)
                except StopIteration:
                    core._exhausted = True
                    return True
                item = core._next_item = (nxt.gap, nxt.address,
                                          nxt.is_write)
        budget_left = core.instruction_limit - core.inst_index
        return budget_left <= 0 or item[0] + 1 > budget_left

    def _run_loop(self) -> None:
        heap = self._heap
        heappop = heapq.heappop
        cores = self.cores
        core_done = self._core_done
        active = 0
        for core in cores:
            core._fp_done = core_done(core)
            if not core._fp_done:
                active += 1
        now = self._now
        ff = self._ff
        ff[0] = self._fastforward_ps
        min_gap = FASTFORWARD_MIN_GAP_PS
        while heap and active:
            entry = heappop(heap)
            time_ps = entry[0]
            if time_ps - now >= min_gap:
                ff[0] += time_ps - now
            now = time_ps
            op = entry[2]
            if op.__class__ is int:
                if op == OP_SERVICE:
                    # An inlined service chain advances the clock; the
                    # return value keeps the loop's idle accounting in
                    # lockstep with the reference's per-pop bookkeeping.
                    now = entry[3]._fast_service(entry[4], time_ps)
                elif op == OP_COMPLETE:
                    core = entry[3]
                    request_id = entry[4]
                    # _core_completion + Core.on_completion, inlined
                    outstanding = core.outstanding
                    outstanding.pop(request_id, None)
                    order = core._order
                    while order and order[0][0] not in outstanding:
                        order.popleft()
                    if time_ps > core._last_completion:
                        core._last_completion = float(time_ps)
                    if request_id == core._waiting_on:
                        if time_ps > core._resume_floor:
                            core._resume_floor = float(time_ps)
                        core._waiting_on = None
                        waiters = self._waiters
                        if waiters.get(request_id) == core.core_id:
                            del waiters[request_id]
                        if self._drive_core(core, time_ps) \
                                and not core._fp_done:
                            core._fp_done = True
                            active -= 1
                    else:
                        # Completion for a core that was NOT stalled on
                        # it. The reference re-drives unconditionally,
                        # but for a non-waiting core the drive can only
                        # act when the next access is issueable at this
                        # exact instant (the completion tied with the
                        # core's own pending wake and popped first);
                        # otherwise it merely pushes a *duplicate* wake
                        # at the unchanged future issue time — and that
                        # duplicate re-arms itself on every pop without
                        # ever taking a request, because the earlier-seq
                        # real wake drains everything issueable first.
                        # Replaying the drive's entry checks here and
                        # eliding the no-op case removes most drive
                        # events while every simulated timestamp, stat,
                        # and trace record stays bit-identical.
                        item = core._next_item
                        if item is None:
                            gen = core._fp_gen
                            if gen is not None:
                                pos = core._fp_pos
                                block = core._fp_block
                                if pos >= len(block):
                                    block = core._fp_block = \
                                        gen.next_block(TRACE_BLOCK)
                                    pos = 0
                                item = core._next_item = block[pos]
                                core._fp_pos = pos + 1
                            elif not core._exhausted:
                                try:
                                    nxt = next(core.trace)
                                except StopIteration:
                                    core._exhausted = True
                                else:
                                    item = core._next_item = (
                                        nxt.gap, nxt.address,
                                        nxt.is_write)
                        if item is None:  # trace exhausted
                            if not outstanding and not core._fp_done:
                                core._fp_done = True
                                active -= 1
                        else:
                            gap = item[0]
                            advance = gap + 1
                            inst_index = core.inst_index
                            if (core.instruction_limit - inst_index
                                    < advance):  # budget spent
                                if not outstanding \
                                        and not core._fp_done:
                                    core._fp_done = True
                                    active -= 1
                            else:
                                rob_block = False
                                if order:
                                    oldest = order[0][1]
                                    rob_block = (inst_index + advance
                                                 - oldest >= core.rob)
                                issue_f = (core.dispatch_ps
                                           + gap * core.pspi)
                                if issue_f < core._resume_floor:
                                    issue_f = core._resume_floor
                                if rob_block or int(issue_f) <= time_ps:
                                    if self._drive_core(core, time_ps) \
                                            and not core._fp_done:
                                        core._fp_done = True
                                        active -= 1
                                # else: the pending wake already covers
                                # this issue time; skip the duplicate.
                elif op == OP_DRIVE:
                    core = entry[3]
                    if self._drive_core(core, time_ps) \
                            and not core._fp_done:
                        core._fp_done = True
                        active -= 1
                elif op == OP_TIMEOUT:
                    bank_index, stamp = entry[4]
                    entry[3]._timeout_close(bank_index, stamp, time_ps)
                elif op == OP_REF:
                    entry[3]._ref_event(time_ps)
                elif op == OP_REFSB:
                    entry[3]._refsb_event(time_ps)
                else:
                    entry[3]._rfm_event(time_ps)
            else:
                # Legacy closure event (LLC path, external schedulers):
                # it may do anything, so refresh every core's done flag.
                op(time_ps)
                active = 0
                for core in cores:
                    if core._fp_done:
                        continue
                    if core_done(core):
                        core._fp_done = True
                    else:
                        active += 1
        self._now = now
        self._fastforward_ps = ff[0]
