"""Experiment runner: named configurations, weighted speedup, caching.

This is the layer the benchmarks and examples talk to. A *design point* is
``(workload, design, trh, overrides)``; :func:`simulate` builds the traces
and policies, runs the :class:`~repro.sim.system.System`, and caches the
result so a sweep reuses its baseline runs.

Caching is two-layered: a per-process memo (``memo_get``/``memo_put``)
plus, when ``REPRO_CACHE_DIR`` is set, the content-addressed on-disk
:class:`~repro.exec.cache.ResultCache`, so re-running a figure skips
every simulation it has already performed — in any earlier process.
:func:`sweep` fans its points out through the
:mod:`repro.exec.engine` (``parallel=False`` restores the inline
path; both produce bit-identical numbers).

Designs (paper nomenclature):

* ``baseline``   — unprotected DDR5,
* ``prac``       — PRAC + ABO with MOAT (Figure 2's 10% offender),
* ``qprac``      — PRAC with proactive priority-queue service (S 9.1),
* ``mopac-c``    — Section 5,
* ``mopac-d``    — Section 6,
* ``mopac-d-nup``— Section 8.

Slowdown is reported as the paper does: 1 - WS(design)/WS(baseline) with
weighted speedup normalised per-core against the baseline run of the same
workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import SystemConfig
from ..mitigations.base import MitigationPolicy
from ..mitigations.mopac_c import MoPACCPolicy
from ..mitigations.mopac_d import MoPACDPolicy
from ..mitigations.prac import BaselinePolicy, PRACMoatPolicy
from ..obs.log import get_logger
from ..obs.profiler import PhaseProfiler
from ..obs.spans import span
from ..obs.tracer import EventTracer
from ..workloads.catalog import workload_cores
from ..workloads.synthetic import TraceGenerator
from .system import System, SystemResult

log = get_logger(__name__)

DESIGNS = ("baseline", "prac", "qprac", "mopac-c", "mopac-d",
           "mopac-d-nup", "moat", "qprac-proactive", "cnc-prac",
           "practical", "mint", "pride", "trr")

#: Default experiment scale: instructions per core. The paper runs 100M;
#: slowdown ratios are stationary, so the scaled default converges to the
#: same relative numbers (see EXPERIMENTS.md for the convergence check).
DEFAULT_INSTRUCTIONS = 150_000

#: Refresh-window scale for reduced runs (keeps tREFI, shrinks tREFW).
DEFAULT_REFRESH_SCALE = 1 / 64

#: Rows per bank in reduced geometry.
DEFAULT_ROWS = 4096


@dataclass(frozen=True)
class DesignPoint:
    """A fully-specified simulation configuration."""

    workload: str
    design: str
    trh: int = 500
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = 0x5EED
    page_policy: str = "open"
    chips: int = 1
    srq_size: int = 16
    drain_on_ref: int | None = None
    p: float | None = None
    rows_per_bank: int = DEFAULT_ROWS
    refresh_scale: float = DEFAULT_REFRESH_SCALE
    collect_row_activity: bool = False
    #: use the Row-Press-derated ATH* parameters (Appendix A)
    rowpress: bool = False
    #: MoPAC-D selection mechanism: "mint" (paper) or "para" (footnote 6)
    sampler: str = "mint"
    #: JEDEC ABO mitigation level: RFMs per ALERT (paper: 1)
    abo_level: int = 1
    #: REF style: "all-bank" (paper) or "same-bank" (DDR5 REFsb)
    refresh_mode: str = "all-bank"

    def __post_init__(self) -> None:
        if self.design not in DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; "
                             f"choose from {DESIGNS}")

    def baseline(self) -> "DesignPoint":
        """The matching baseline point (same everything, no mitigation)."""
        return DesignPoint(
            workload=self.workload, design="baseline", trh=self.trh,
            instructions=self.instructions, seed=self.seed,
            page_policy=self.page_policy,
            rows_per_bank=self.rows_per_bank,
            refresh_scale=self.refresh_scale,
            collect_row_activity=self.collect_row_activity,
            refresh_mode=self.refresh_mode,
        )


def make_policy_factory(point: DesignPoint,
                        config: SystemConfig) -> Callable[[int], MitigationPolicy]:
    """Build the per-sub-channel policy constructor for a design point."""
    banks = config.dram.banks_per_subchannel
    rows = config.dram.rows_per_bank
    groups = min(8192, rows)
    timing = config.dram.timing

    def factory(subchannel: int) -> MitigationPolicy:
        if point.design == "baseline":
            return BaselinePolicy(timing=timing)
        if point.design == "prac":
            from ..dram.timing import ddr5_prac
            prac_timing = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            return PRACMoatPolicy(point.trh, banks, rows, groups,
                                  timing=prac_timing)
        if point.design == "qprac":
            from ..dram.timing import ddr5_prac
            from ..mitigations.qprac import QPRACPolicy
            prac_timing = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            return QPRACPolicy(point.trh, banks, rows, groups,
                               timing=prac_timing)
        if point.design == "mopac-c":
            import random
            from ..dram.timing import MoPACTimings, ddr5_prac
            from ..security.rowpress import mopac_c_rowpress_params
            cu = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            pair = MoPACTimings(normal=timing, counter_update=cu)
            params = (mopac_c_rowpress_params(point.trh, point.p)
                      if point.rowpress else None)
            return MoPACCPolicy(point.trh, banks, rows, p=point.p,
                                refresh_groups=groups, timings=pair,
                                rng=random.Random(point.seed ^ subchannel),
                                params=params)
        if point.design in ("mopac-d", "mopac-d-nup"):
            import random
            from ..security.rowpress import mopac_d_rowpress_params
            params = (mopac_d_rowpress_params(point.trh, point.p)
                      if point.rowpress else None)
            return MoPACDPolicy(
                point.trh, banks, rows, p=point.p,
                srq_size=point.srq_size,
                drain_on_ref=point.drain_on_ref,
                nup=(point.design == "mopac-d-nup"),
                chips=point.chips, refresh_groups=groups, timing=timing,
                rng=random.Random(point.seed ^ (subchannel << 4)),
                params=params, sampler=point.sampler,
                abo_level=point.abo_level)
        if point.design == "moat":
            from ..dram.timing import ddr5_prac
            from ..mitigations.moat import MOATPolicy
            prac_timing = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            return MOATPolicy(point.trh, banks, rows, groups,
                              timing=prac_timing)
        if point.design == "qprac-proactive":
            from ..dram.timing import ddr5_prac
            from ..mitigations.qprac import QPRACProactivePolicy
            prac_timing = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            return QPRACProactivePolicy(point.trh, banks, rows, groups,
                                        timing=prac_timing)
        if point.design == "cnc-prac":
            from ..mitigations.cnc_prac import CnCPRACPolicy
            return CnCPRACPolicy(point.trh, banks, rows, groups,
                                 timing=timing)
        if point.design == "practical":
            from ..dram.timing import MoPACTimings, ddr5_prac
            from ..mitigations.practical import PRACticalPolicy
            cu = ddr5_prac().scaled_refresh(point.refresh_scale) \
                if point.refresh_scale < 1 else ddr5_prac()
            pair = MoPACTimings(normal=timing, counter_update=cu)
            return PRACticalPolicy(point.trh, banks, rows, groups,
                                   timings=pair)
        if point.design == "mint":
            import random
            from ..mitigations.mint import MINTPolicy
            return MINTPolicy(banks=banks, rows=rows, refresh_groups=groups,
                              timing=timing,
                              rng=random.Random(point.seed ^ subchannel))
        if point.design == "pride":
            import random
            from ..mitigations.pride import PrIDEPolicy
            return PrIDEPolicy(banks=banks, rows=rows,
                               refresh_groups=groups, timing=timing,
                               rng=random.Random(point.seed ^ subchannel))
        if point.design == "trr":
            from ..mitigations.trr import TRRPolicy
            return TRRPolicy(banks=banks, rows=rows, refresh_groups=groups,
                             timing=timing)
        raise AssertionError(point.design)

    return factory


def build_config(point: DesignPoint) -> SystemConfig:
    return SystemConfig.reduced(point.rows_per_bank, point.refresh_scale)


def build_traces(point: DesignPoint, config: SystemConfig) -> list:
    specs = workload_cores(point.workload, config.cores)
    return [TraceGenerator(spec, config.dram, core_id=i, seed=point.seed)
            for i, spec in enumerate(specs)]


#: Per-process memo: point -> result. Layer one of the cache; layer two
#: is the on-disk ResultCache enabled by REPRO_CACHE_DIR.
_cache: dict[DesignPoint, SystemResult] = {}

#: Lazily-constructed disk cache, keyed by the directory it serves so a
#: changed REPRO_CACHE_DIR takes effect mid-process (tests rely on this).
_disk_state: tuple[str, Any] | None = None


def _disk_cache():
    global _disk_state
    from ..exec.env import env_str  # deferred: sim must not import exec eagerly
    path = env_str("REPRO_CACHE_DIR")
    if not path:
        return None
    if _disk_state is None or _disk_state[0] != path:
        from ..exec.cache import ResultCache
        _disk_state = (path, ResultCache(path))
    return _disk_state[1]


def memo_get(point: DesignPoint) -> SystemResult | None:
    """In-process memo lookup (used by the exec engine)."""
    return _cache.get(point)


def memo_put(point: DesignPoint, result: SystemResult) -> None:
    """Populate the in-process memo (used by the exec engine)."""
    _cache[point] = result


def resolve_engine(engine: str | None = None) -> type[System]:
    """System class for ``engine`` (default: the ``REPRO_ENGINE`` knob).

    ``reference`` is the original event loop; ``fast`` is the
    bit-identical fast engine. Unknown names raise ``ValueError`` (and
    a bad ``REPRO_ENGINE`` value raises
    :class:`~repro.exec.env.EnvKnobError` at resolution time).
    """
    from ..exec.env import ENGINES, engine_choice

    if engine is None:
        engine = engine_choice()
    if engine == "fast":
        from .fastpath import FastSystem
        return FastSystem
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"choose from {ENGINES}")
    return System


def run_point(point: DesignPoint,
              tracer: EventTracer | None = None,
              profiler: PhaseProfiler | None = None,
              engine: str | None = None) -> SystemResult:
    """Simulate one design point from scratch (no cache layers).

    ``tracer`` (opt-in) records the run's DRAM command events;
    ``profiler`` accumulates the tracegen/warmup/sim phase breakdown
    (one is created per call when omitted). The breakdown is attached
    to the result as ``result.phases`` either way. ``engine`` overrides
    the ``REPRO_ENGINE`` knob (``reference``/``fast``); both engines
    are bit-identical (see docs/performance.md), so results are
    interchangeable.
    """
    profiler = profiler or PhaseProfiler()
    system_cls = resolve_engine(engine)
    log.debug("run_point %s.%s.t%d", point.workload, point.design,
              point.trh)
    with profiler.phase("tracegen"), span("sim.tracegen",
                                          workload=point.workload):
        config = build_config(point)
        specs = workload_cores(point.workload, config.cores)
        windows = [round(config.rob_entries * spec.mlp_boost)
                   for spec in specs]
        traces = build_traces(point, config)
    with profiler.phase("warmup"), span("sim.warmup",
                                        design=point.design):
        system = system_cls(
            config=config,
            policy_factory=make_policy_factory(point, config),
            traces=traces,
            instruction_limit=point.instructions,
            page_policy=point.page_policy,
            collect_row_activity=point.collect_row_activity,
            windows=windows,
            refresh_mode=point.refresh_mode,
            tracer=tracer,
        )
    with profiler.phase("sim"), span("sim.run", workload=point.workload,
                                     design=point.design, trh=point.trh):
        result = system.run()
    result.phases = profiler.snapshot()
    return result


def simulate(point: DesignPoint, use_cache: bool = True) -> SystemResult:
    """Run (or fetch) one design point."""
    if use_cache and point in _cache:
        return _cache[point]
    disk = _disk_cache() if use_cache else None
    if disk is not None:
        result = disk.get(point)
        if result is not None:
            _cache[point] = result
            return result
    result = run_point(point)
    if use_cache:
        _cache[point] = result
        if disk is not None:
            disk.put(point, result)
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process memo (and optionally the on-disk cache)."""
    _cache.clear()
    if disk:
        store = _disk_cache()
        if store is not None:
            store.clear()


def weighted_speedup(result: SystemResult,
                     baseline: SystemResult) -> float:
    """Per-core-normalised weighted speedup (paper Section 3.2).

    Cores whose baseline IPC is zero (an idle or unstarted core) carry
    no signal and are excluded from both the sum and the divisor —
    mirroring :func:`harmonic_speedup` — rather than silently deflating
    the mean.
    """
    pairs = [(x, b) for x, b in zip(result.ipcs, baseline.ipcs) if b > 0]
    if not pairs:
        return 0.0
    return sum(x / b for x, b in pairs) / len(pairs)


def harmonic_speedup(result: SystemResult,
                     baseline: SystemResult) -> float:
    """Harmonic-mean speedup: balances throughput and fairness."""
    pairs = [(x, b) for x, b in zip(result.ipcs, baseline.ipcs)
             if x > 0 and b > 0]
    if not pairs:
        return 0.0
    return len(pairs) / sum(b / x for x, b in pairs)


def fairness(result: SystemResult, baseline: SystemResult) -> float:
    """Min/max per-core relative-progress ratio (1.0 = perfectly fair).

    A mitigation that stalls one core's hot bank while others run free
    shows up here even when the weighted speedup looks fine.
    """
    ratios = [x / b for x, b in zip(result.ipcs, baseline.ipcs) if b > 0]
    if not ratios:
        return 0.0
    return min(ratios) / max(ratios)


def slowdown(point: DesignPoint, use_cache: bool = True) -> float:
    """Slowdown of a design point vs its baseline: 1 - WS."""
    result = simulate(point, use_cache)
    base = simulate(point.baseline(), use_cache)
    return 1.0 - weighted_speedup(result, base)


@dataclass
class SweepResult:
    """Per-workload slowdowns for one design/threshold."""

    design: str
    trh: int
    slowdowns: dict[str, float] = field(default_factory=dict)

    @property
    def average(self) -> float:
        if not self.slowdowns:
            return 0.0
        return sum(self.slowdowns.values()) / len(self.slowdowns)

    @property
    def worst(self) -> tuple[str, float]:
        return max(self.slowdowns.items(), key=lambda kv: kv[1])


def sweep(workloads: list[str], design: str, trh: int,
          parallel: bool | None = None, workers: int | None = None,
          **overrides: Any) -> SweepResult:
    """Slowdown of ``design`` across ``workloads`` at one threshold.

    Points (and their baselines) are resolved through the
    :class:`~repro.exec.engine.SweepEngine`: cached results are reused,
    misses fan out across worker processes. ``parallel=False`` is the
    inline escape hatch; both paths return bit-identical numbers.
    """
    from ..exec.engine import run_points

    result = SweepResult(design=design, trh=trh)
    points = [DesignPoint(workload=name, design=design, trh=trh,
                          **overrides)
              for name in workloads]
    flat: list[DesignPoint] = []
    for point in points:
        flat.append(point)
        flat.append(point.baseline())
    results = run_points(flat, parallel=parallel, workers=workers)
    for name, run, base in zip(workloads, results[0::2], results[1::2]):
        result.slowdowns[name] = 1.0 - weighted_speedup(run, base)
    return result
