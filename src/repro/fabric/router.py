"""Health- and admission-aware routing over the rendezvous ring.

The :class:`Router` turns the ring's pure owner order into a live
placement decision:

* the **ring** says who *should* own a key (deterministic, shared by
  every client);
* the **router** walks that preference order past nodes that are down
  (transport errors) or saturated (the node's advertised admission
  bound — ``/healthz`` carries ``queue_depth``/``max_queue``), so a
  hot or dead node sheds load to the next rendezvous choice instead
  of stalling the campaign.

Probing is pluggable (``probe(address) -> healthz document``) so unit
tests drive the router with canned health states and no sockets. The
router never caches a "down" verdict forever: every placement re-walks
the preference order, so a recovered node starts taking its keys back
on the next submission — membership changes need no epoch protocol.
"""

from __future__ import annotations

from typing import Any, Callable

from ..obs.log import get_logger
from .ring import Ring

log = get_logger(__name__)


class NoNodeAvailable(RuntimeError):
    """Every candidate owner for a key is down or saturated."""


class Router:
    """Placement over a :class:`~repro.fabric.ring.Ring` with shedding.

    ``probe`` is called per candidate node and must return that node's
    ``/healthz`` document (raising on transport failure). A node is
    *admissible* when it answers, is not draining, and its queue depth
    is below its advertised admission bound.
    """

    def __init__(self, nodes: list[str],
                 probe: Callable[[str], dict[str, Any]] | None = None):
        self.ring = Ring(nodes)
        self.probe = probe
        #: per-node consecutive probe failures (observability)
        self.failures: dict[str, int] = {node: 0 for node in self.ring.nodes}
        #: how many placements were shed off a saturated node
        self.sheds = 0
        #: how many placements skipped an unreachable node
        self.reroutes = 0

    # ------------------------------------------------------------------
    def owners(self, key: str, count: int | None = None) -> list[str]:
        """The ring's deterministic preference order (no probing)."""
        return self.ring.owners(key, count)

    def admissible(self, node: str) -> bool:
        """One probe: is ``node`` up, accepting, and under its bound?"""
        if self.probe is None:
            return True
        try:
            health = self.probe(node)
        except Exception as error:  # transport: node down/mid-restart
            self.failures[node] = self.failures.get(node, 0) + 1
            log.debug("probe %s failed (%s)", node, error)
            return False
        self.failures[node] = 0
        if health.get("draining"):
            return False
        max_queue = health.get("max_queue")
        if max_queue and health.get("queue_depth", 0) >= max_queue:
            return False
        return True

    def place(self, key: str) -> str:
        """The first admissible owner of ``key``, shedding as needed.

        Walks the rendezvous preference order; saturated nodes count as
        sheds, unreachable ones as reroutes. Raises
        :class:`NoNodeAvailable` when the whole fabric refuses.
        """
        candidates = self.owners(key)
        for position, node in enumerate(candidates):
            if self.admissible(node):
                if position > 0:
                    self.reroutes += 1
                return node
            if self.failures.get(node, 0) == 0:
                # answered but refused: admission shed, not an outage
                self.sheds += 1
        raise NoNodeAvailable(
            f"no admissible node for key {key[:12]} among "
            f"{candidates!r}")

    def place_all(self, keys: list[str]) -> dict[str, list[str]]:
        """Group ``keys`` by placement (node -> keys, input order).

        Each distinct primary owner is probed once per call, not once
        per key — a million-point campaign must not issue a million
        health checks.
        """
        verdicts: dict[str, bool] = {}

        def admitted(node: str) -> bool:
            if node not in verdicts:
                verdicts[node] = self.admissible(node)
            return verdicts[node]

        groups: dict[str, list[str]] = {}
        for key in keys:
            placed = None
            candidates = self.owners(key)
            for position, node in enumerate(candidates):
                if admitted(node):
                    if position > 0:
                        self.reroutes += 1
                    placed = node
                    break
                if self.failures.get(node, 0) == 0 and position == 0:
                    self.sheds += 1
            if placed is None:
                raise NoNodeAvailable(
                    f"no admissible node for key {key[:12]} among "
                    f"{candidates!r}")
            groups.setdefault(placed, []).append(key)
        return groups
