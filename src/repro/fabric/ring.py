"""Deterministic rendezvous (highest-random-weight) hashing.

Every fabric participant — client, router, hedger — must agree on
which node owns a design point *without talking to each other*. The
ring gives that: the owner order of a cache key is a pure function of
``(key, membership)``, computed as the descending order of
``sha256(key | node)`` weights. Properties the fabric leans on:

* **agreement** — any process with the same membership list computes
  the same owner order for every key (list order does not matter);
* **minimal disruption** — removing a node only reassigns the keys it
  owned (every other key's first choice is unchanged), which is what
  makes node-loss failover cheap;
* **spread** — weights are uniform, so keys spread evenly across
  nodes without virtual-node bookkeeping.

Nothing here reads a clock, the environment, or ``repro.rng`` — owner
computation sits on the bit-identity path (the same sweep must route
the same way on every client).
"""

from __future__ import annotations

import hashlib


def node_weight(key: str, node: str) -> int:
    """Rendezvous weight of ``node`` for ``key`` (256-bit integer)."""
    digest = hashlib.sha256(f"{key}|{node}".encode()).digest()
    return int.from_bytes(digest, "big")


def rank_nodes(key: str, nodes: list[str]) -> list[str]:
    """``nodes`` in descending rendezvous-weight order for ``key``.

    Ties (only possible for duplicate node ids, which
    :class:`Ring` rejects) break on the node id so the order is total.
    """
    return sorted(nodes, key=lambda node: (-node_weight(key, node), node))


class Ring:
    """A fixed membership list with rendezvous owner lookup."""

    def __init__(self, nodes: list[str]):
        cleaned = [node.strip() for node in nodes if node and node.strip()]
        if not cleaned:
            raise ValueError("a fabric needs at least one node")
        if len(set(cleaned)) != len(cleaned):
            raise ValueError(f"duplicate node addresses in {cleaned!r}")
        #: membership in a canonical order (sorted, so two rings built
        #: from differently-ordered lists compare equal)
        self.nodes = sorted(cleaned)

    def __len__(self) -> int:
        return len(self.nodes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ring) and self.nodes == other.nodes

    def owners(self, key: str, count: int | None = None) -> list[str]:
        """Owner preference order for ``key``: primary first, then the
        hedge/failover targets. ``count`` truncates (None = all)."""
        ranked = rank_nodes(key, self.nodes)
        return ranked if count is None else ranked[:count]

    def owner(self, key: str) -> str:
        """The primary owner of ``key``."""
        return self.owners(key, 1)[0]

    def without(self, node: str) -> "Ring":
        """A ring with ``node`` removed (node-loss reroute)."""
        survivors = [n for n in self.nodes if n != node]
        return Ring(survivors)

    def assignment(self, keys: list[str]) -> dict[str, list[str]]:
        """Keys grouped by primary owner (owner -> keys, input order)."""
        groups: dict[str, list[str]] = {node: [] for node in self.nodes}
        for key in keys:
            groups[self.owner(key)].append(key)
        return groups
