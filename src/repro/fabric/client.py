"""The fabric-aware client: sharded submit, hedging, failover.

:class:`FabricClient` layers on :class:`~repro.serve.client.ServeClient`
to make N serve nodes look like one campaign service::

    from repro.fabric.client import FabricClient
    fabric = FabricClient(["unix:/run/n0.sock", "unix:/run/n1.sock",
                           "unix:/run/n2.sock"])
    results = fabric.run(points)        # original order, bit-identical

Mechanics (knobs and failure semantics in ``docs/fabric.md``):

* **sharding** — every unique cache key routes to its rendezvous
  owner (:mod:`repro.fabric.ring`) through the admission-aware
  :class:`~repro.fabric.router.Router`; one job is submitted per
  placed node. Duplicate points in the input collapse to one key and
  fan back out on return.
* **retry + backoff** — status polling uses the same jittered
  exponential backoff as ``ServeClient.wait``
  (:func:`repro.serve.client.poll_delays`), seeded per run, so a
  thousand fabric clients never stampede a node in lockstep.
* **hedged requests** — a job still unfinished after ``hedge_s``
  (``REPRO_FABRIC_HEDGE_S``) is duplicated, once, to the next owner in
  the key's rendezvous order. The hedge can never duplicate a
  simulation: the primary holds the remote tier's in-flight claim, so
  the secondary's :class:`~repro.serve.pool.PointRunner` waits for the
  claimed result instead of re-simulating (``serve.remote_waits``).
* **node-loss failover** — a node whose polls fail
  ``node_down_after`` consecutive times is declared lost; its
  unresolved keys re-place onto the surviving owners (the dead node's
  stale claims age out and are stolen, so even points it was *mid-
  simulation* on complete elsewhere). A restarted node replays its
  journal and finishes its copy of the job from the result cache —
  nothing is simulated twice.

The wall-clock reads here schedule polling and hedging only; like the
``ServeClient`` deadline clock they never reach a result document or
cache key.
"""

from __future__ import annotations

import dataclasses
import http.client
import time
from typing import Any, Callable

from ..exec.cache import point_key
from ..obs.log import get_logger
from ..obs.registry import StatsRegistry
from ..serve.client import ServeClient, ServeError, poll_delays
from . import hedge_s as hedge_knob
from .router import Router

log = get_logger(__name__)

#: Transport-level failures (node down, socket gone, mid-restart).
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def _mono_s() -> float:
    """Monotonic clock for poll/hedge scheduling, never in payloads."""
    # repro: allow(determinism) — client-side scheduling only
    return time.monotonic()


def _sleep(seconds: float) -> None:
    """Indirected for tests (fake clocks drive the wait loop)."""
    time.sleep(seconds)


class FabricError(RuntimeError):
    """A fabric campaign cannot complete."""


@dataclasses.dataclass
class NodeJob:
    """One job submitted to one node on behalf of a fabric run."""

    node: str
    job_id: str
    keys: list[str]
    hedge: bool = False
    #: monotonic stamp of submission (hedge timer)
    submitted_mono: float = 0.0
    #: consecutive failed polls (node-loss detector)
    failures: int = 0
    #: terminal on this node (done, abandoned, or failed over)
    closed: bool = False
    #: a hedge for this job's keys has already been issued
    hedged: bool = False


class FabricRun:
    """State of one sharded submission across the fabric."""

    def __init__(self, points: list[Any]):
        self.points = list(points)
        #: cache key of every submitted point, input order
        self.keys = [point_key(p) for p in self.points]
        #: first point carrying each unique key, first-seen order
        self.unique: dict[str, Any] = {}
        for key, p in zip(self.keys, self.points):
            self.unique.setdefault(key, p)
        self.jobs: list[NodeJob] = []
        #: resolved results by unique key
        self.results: dict[str, Any] = {}

    def resolved(self) -> bool:
        return len(self.results) == len(self.unique)

    def pending(self, job: NodeJob) -> list[str]:
        """The job's keys that no job has resolved yet."""
        return [key for key in job.keys if key not in self.results]

    def output(self) -> list[Any]:
        """Results in the original submission order (duplicates fanned
        back out)."""
        return [self.results[key] for key in self.keys]

    def describe(self) -> dict[str, Any]:
        """Persistable summary (``campaign --fabric`` writes this to
        ``job.json``; :meth:`FabricClient.attach` rebuilds from it)."""
        return {
            "points": len(self.points),
            "unique": len(self.unique),
            "jobs": [{"server": job.node, "id": job.job_id,
                      "hedge": job.hedge, "keys": list(job.keys)}
                     for job in self.jobs],
        }


class FabricClient:
    """N serve nodes presented as one campaign service."""

    def __init__(self, nodes: list[str], timeout_s: float = 30.0,
                 hedge_after_s: float | None | str = "env",
                 node_down_after: int = 3,
                 poll_s: float = 0.05, max_poll_s: float = 2.0,
                 registry: StatsRegistry | None = None,
                 client_factory: Callable[[str], ServeClient] | None = None):
        factory = client_factory or (
            lambda address: ServeClient(address, timeout_s=timeout_s))
        self.clients: dict[str, ServeClient] = {
            node: factory(node) for node in dict.fromkeys(nodes)}
        self.router = Router(list(self.clients), probe=self._probe)
        self.hedge_after_s = hedge_knob() if hedge_after_s == "env" \
            else hedge_after_s
        if node_down_after < 1:
            raise ValueError("node_down_after must be >= 1")
        self.node_down_after = node_down_after
        self.poll_s = poll_s
        self.max_poll_s = max(poll_s, max_poll_s)
        self._run_counter = 0

        self.registry = registry if registry is not None else StatsRegistry()
        self._c_runs = self.registry.counter("fabric.runs")
        self._c_jobs = self.registry.counter("fabric.jobs_submitted")
        self._c_hedges = self.registry.counter("fabric.hedges")
        self._c_failovers = self.registry.counter("fabric.failovers")
        self._c_submit_retries = self.registry.counter(
            "fabric.submit_retries")
        self.registry.register("fabric.router", lambda: {
            "sheds": self.router.sheds,
            "reroutes": self.router.reroutes,
        })

    # ------------------------------------------------------------------
    def _probe(self, node: str) -> dict[str, Any]:
        return self.clients[node].healthz()

    def stats(self) -> dict[str, Any]:
        """Flat ``fabric.*`` counter snapshot (mirrors ``/stats``)."""
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, points: list[Any], priority: int = 0,
               timeout_s: float | None = None) -> FabricRun:
        """Shard ``points`` by rendezvous owner and submit one job per
        placed node. Returns the :class:`FabricRun` to pass to
        :meth:`wait`."""
        if not points:
            raise ValueError("no points to submit")
        run = FabricRun(points)
        self._run_counter += 1
        self._c_runs.inc()
        groups = self.router.place_all(list(run.unique))
        for node, keys in groups.items():
            self._submit_keys(run, node, keys, priority, timeout_s)
        log.info("fabric run: %d point(s), %d unique, %d job(s) across "
                 "%d node(s)", len(run.points), len(run.unique),
                 len(run.jobs), len(groups))
        return run

    def _submit_keys(self, run: FabricRun, node: str, keys: list[str],
                     priority: int, timeout_s: float | None = None,
                     hedge: bool = False, depth: int = 0) -> None:
        """Submit ``keys`` to ``node``, re-placing on refusal/loss."""
        if depth > len(self.clients):
            raise FabricError(
                f"could not place {len(keys)} point(s) anywhere "
                f"(all nodes down or saturated)")
        try:
            job_id = self.clients[node].submit(
                [run.unique[key] for key in keys], priority=priority,
                timeout_s=timeout_s, hedge=hedge)
        except (ServeError, *TRANSPORT_ERRORS) as error:
            # shed (503) or transport loss: walk each key down its own
            # rendezvous order past the refusing node
            self._c_submit_retries.inc()
            log.warning("submit of %d key(s) to %s refused (%s); "
                        "re-placing", len(keys), node, error)
            regroups: dict[str, list[str]] = {}
            for key in keys:
                candidates = [n for n in self.router.owners(key)
                              if n != node]
                target = None
                for candidate in candidates:
                    if self.router.admissible(candidate):
                        target = candidate
                        break
                if target is None:
                    raise FabricError(
                        f"no surviving node admits key {key[:12]} "
                        f"({error})") from error
                regroups.setdefault(target, []).append(key)
            for target, regrouped in regroups.items():
                self._submit_keys(run, target, regrouped, priority,
                                  timeout_s, hedge, depth + 1)
            return
        run.jobs.append(NodeJob(node=node, job_id=job_id, keys=keys,
                                hedge=hedge,
                                submitted_mono=_mono_s()))
        self._c_jobs.inc()

    def attach(self, points: list[Any],
               jobs: list[dict[str, Any]]) -> FabricRun:
        """Rebuild a :class:`FabricRun` from a persisted
        :meth:`FabricRun.describe` document (``campaign fetch`` after a
        ``campaign submit --fabric`` in an earlier process).

        The hedge timers restart at attach time — an old submission is
        not "instantly slow" just because the fetching process started
        late.
        """
        run = FabricRun(points)
        known = set(run.unique)
        for document in jobs:
            keys = list(document["keys"])
            strays = [key for key in keys if key not in known]
            if strays:
                raise FabricError(
                    f"job {document['id']} on {document['server']} "
                    f"covers {len(strays)} key(s) the given points do "
                    f"not; was the campaign re-planned after submit?")
            run.jobs.append(NodeJob(
                node=document["server"], job_id=document["id"],
                keys=keys, hedge=bool(document.get("hedge")),
                submitted_mono=_mono_s()))
        covered = {key for job in run.jobs for key in job.keys}
        missing = known - covered
        if missing:
            raise FabricError(
                f"{len(missing)} point(s) have no submitted job; was "
                f"the campaign re-planned after submit?")
        return run

    # ------------------------------------------------------------------
    # Completion: poll, hedge, fail over
    # ------------------------------------------------------------------
    def wait(self, run: FabricRun, timeout_s: float = 600.0) -> list[Any]:
        """Drive ``run`` to completion; returns results in submission
        order, bit-identical to a serial local sweep."""
        deadline = _mono_s() + timeout_s
        delays = poll_delays(f"fabric-{self._run_counter}",
                             self.poll_s, self.max_poll_s)
        while not run.resolved():
            for job in list(run.jobs):
                if job.closed:
                    continue
                self._poll_job(run, job)
            if run.resolved():
                break
            if _mono_s() >= deadline:
                missing = len(run.unique) - len(run.results)
                raise FabricError(
                    f"{missing} point(s) unresolved after "
                    f"{timeout_s:g}s")
            _sleep(min(next(delays), max(0.0, deadline - _mono_s())))
        return run.output()

    def run(self, points: list[Any], priority: int = 0,
            timeout_s: float = 600.0) -> list[Any]:
        """:meth:`submit` + :meth:`wait` in one call."""
        return self.wait(self.submit(points, priority=priority),
                         timeout_s=timeout_s)

    def _poll_job(self, run: FabricRun, job: NodeJob) -> None:
        try:
            document = self.clients[job.node].status(job.job_id)
            job.failures = 0
        except ServeError as error:
            if error.status == 404:
                # node lost its journal (fresh state dir): treat as loss
                self._fail_over(run, job, f"job unknown ({error})")
            else:
                job.failures += 1
            return
        except TRANSPORT_ERRORS as error:
            job.failures += 1
            if job.failures >= self.node_down_after:
                self._fail_over(run, job, f"unreachable ({error})")
            return

        state = document["state"]
        if state == "done":
            self._collect(run, job)
        elif state in ("failed", "cancelled"):
            if self._pending_elsewhere(run, job):
                # a hedge/failover twin still owes these keys; this
                # copy's failure is not fatal
                job.closed = True
            else:
                raise FabricError(
                    f"job {job.job_id} on {job.node} ended {state}: "
                    f"{document.get('error')}")
        else:
            self._maybe_hedge(run, job)

    def _collect(self, run: FabricRun, job: NodeJob) -> None:
        try:
            results = self.clients[job.node].result(job.job_id)
        except ServeError as error:
            raise FabricError(
                f"job {job.job_id} on {job.node}: {error}") from error
        except TRANSPORT_ERRORS as error:
            # done but unreachable for the fetch: retry next poll tick
            job.failures += 1
            if job.failures >= self.node_down_after:
                self._fail_over(run, job, f"unreachable ({error})")
            return
        for key, result in zip(job.keys, results):
            run.results.setdefault(key, result)
        job.closed = True

    def _pending_elsewhere(self, run: FabricRun, job: NodeJob) -> bool:
        """Is every pending key of ``job`` also owed by another open
        job?"""
        pending = set(run.pending(job))
        if not pending:
            return True
        for other in run.jobs:
            if other is job or other.closed:
                continue
            pending -= set(other.keys)
        return not pending

    def _maybe_hedge(self, run: FabricRun, job: NodeJob) -> None:
        if (self.hedge_after_s is None or job.hedged or job.hedge
                or len(self.clients) < 2):
            return
        if _mono_s() - job.submitted_mono < self.hedge_after_s:
            return
        pending = run.pending(job)
        if not pending:
            return
        job.hedged = True
        target = self._hedge_target(pending[0], job.node)
        if target is None:
            return
        log.info("hedging %d pending key(s) of %s from %s to %s",
                 len(pending), job.job_id, job.node, target)
        self._c_hedges.inc()
        self._submit_keys(run, target, pending, priority=0, hedge=True)

    def _hedge_target(self, key: str, primary: str) -> str | None:
        for node in self.router.owners(key):
            if node != primary and self.router.admissible(node):
                return node
        return None

    def _fail_over(self, run: FabricRun, job: NodeJob, why: str) -> None:
        """Re-place a lost node's unresolved keys on the survivors."""
        job.closed = True
        pending = run.pending(job)
        # keys another open job already owes (a hedge twin) need no
        # replacement — double-placing them would double the load
        for other in run.jobs:
            if other is not job and not other.closed:
                pending = [k for k in pending if k not in other.keys]
        log.warning("node %s lost (%s); failing over %d key(s)",
                    job.node, why, len(pending))
        if not pending:
            return
        self._c_failovers.inc()
        groups: dict[str, list[str]] = {}
        for key in pending:
            target = None
            for node in self.router.owners(key):
                if node != job.node and self.router.admissible(node):
                    target = node
                    break
            if target is None:
                raise FabricError(
                    f"no surviving node admits key {key[:12]} after "
                    f"losing {job.node}")
            groups.setdefault(target, []).append(key)
        for target, keys in groups.items():
            self._submit_keys(run, target, keys, priority=0)
