"""Directory-backed remote result tier with in-flight claims.

:class:`SharedDirTier` implements the
:class:`repro.exec.cache.RemoteTier` interface on a directory every
fabric node can reach (NFS export, bind mount, or plain local path for
in-process fabrics). Layout::

    <root>/
        <kk>/<key>.json          # result documents (ResultCache layout)
        inflight/<key>.claim     # claim files: body = owner node id

**Results** use the same atomic temp-file + ``os.replace`` protocol as
the local cache, so concurrent writers from different nodes can never
tear an entry, and a reader either sees a full document or nothing.

**Claims** are the fabric-wide in-flight dedup primitive. A node about
to simulate key ``K`` creates ``inflight/K.claim`` with
``O_CREAT | O_EXCL`` — the filesystem arbitrates, exactly one node
wins. Everyone else polls for the result instead of simulating.
Claims carry no lease service: a claim older than the configured TTL
(its file mtime) is presumed dead (SIGKILLed node) and may be
*stolen*. Stealing is race-free by rename: the stealer first renames
the stale claim away — ``os.rename`` succeeds for exactly one of N
racing stealers — then re-claims with ``O_CREAT | O_EXCL``. The
loser of either step goes back to waiting, so no interleaving yields
two simultaneous claim holders.

The wall-clock reads here (claim ages) are operator-facing liveness
bookkeeping only — never part of a result document or cache key — and
carry determinism waivers like the serve-side clock helpers.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from ..exec.cache import TieredCache
from ..obs.log import get_logger

log = get_logger(__name__)


def _wall_s() -> float:
    """Claim-age clock: liveness bookkeeping, never in results."""
    # repro: allow(determinism) — claim staleness only, never in payloads
    return time.time()


class SharedDirTier:
    """Shared-directory :class:`~repro.exec.cache.RemoteTier`."""

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.inflight_dir = self.root / "inflight"
        self.inflight_dir.mkdir(parents=True, exist_ok=True)

    # -- results -----------------------------------------------------------
    def _blob_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get_blob(self, key: str) -> dict | None:
        try:
            with open(self._blob_path(key), encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            log.warning("remote entry %s unreadable (%s); miss",
                        key[:12], error)
            return None

    def put_blob(self, key: str, document: dict) -> None:
        path = self._blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))

    # -- claims ------------------------------------------------------------
    def _claim_path(self, key: str) -> pathlib.Path:
        return self.inflight_dir / f"{key}.claim"

    def claim(self, key: str, owner: str) -> bool:
        try:
            fd = os.open(self._claim_path(key),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(owner)
        return True

    def claim_owner(self, key: str) -> str | None:
        try:
            return self._claim_path(key).read_text(
                encoding="utf-8").strip() or None
        except OSError:
            return None

    def claim_age_s(self, key: str) -> float | None:
        try:
            stat = self._claim_path(key).stat()
        except OSError:
            return None
        return max(0.0, _wall_s() - stat.st_mtime)

    def release(self, key: str, owner: str) -> None:
        # owner check is best-effort: a claim stolen between the read
        # and the unlink belongs to someone else, and unlinking it
        # would re-open the key to duplicate simulation — so only
        # unlink what still names us
        if self.claim_owner(key) != owner:
            return
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def steal_claim(self, key: str, owner: str) -> bool:
        path = self._claim_path(key)
        # one winner per stale claim: os.rename is atomic, so of N
        # stealers exactly one moves the file aside; the rest lose
        # with FileNotFoundError and return to waiting
        grave = path.with_suffix(f".stolen-{os.getpid()}")
        try:
            os.rename(path, grave)
        except OSError:
            return False
        try:
            os.unlink(grave)
        except OSError:
            pass
        # the rename winner still races fresh claimants arriving after
        # the rename; O_EXCL arbitrates that too
        return self.claim(key, owner)

    def claims(self) -> list[str]:
        try:
            names = os.listdir(self.inflight_dir)
        except OSError:
            return []
        return sorted(name[:-len(".claim")] for name in names
                      if name.endswith(".claim"))


def make_tiered_cache(local_dir: str | pathlib.Path,
                      remote_root: str | pathlib.Path,
                      owner: str,
                      claim_ttl_s: float | None = None) -> TieredCache:
    """A :class:`~repro.exec.cache.TieredCache` over a shared directory.

    ``claim_ttl_s`` defaults to ``REPRO_FABRIC_CLAIM_TTL_S`` (60 s when
    unset) — the staleness bound after which a dead node's in-flight
    claims may be stolen by survivors.
    """
    from . import claim_ttl_s as default_ttl
    ttl = claim_ttl_s if claim_ttl_s is not None else default_ttl()
    return TieredCache(local_dir, SharedDirTier(remote_root),
                       owner=owner, claim_ttl_s=ttl)
