"""``repro.fabric``: a sharded multi-node campaign fabric.

The fabric coordinates multiple :mod:`repro.serve` nodes into one
logical campaign service (see ``docs/fabric.md``):

* :mod:`repro.fabric.ring` — deterministic rendezvous hashing of
  design points (by their :func:`repro.exec.cache.point_key`) onto
  nodes, so every client computes the same owner with no coordinator;
* :mod:`repro.fabric.tiers` — :class:`~repro.fabric.tiers.SharedDirTier`,
  the directory-backed remote result tier (read-through / write-behind
  via :class:`repro.exec.cache.TieredCache`) with in-flight claims;
* :mod:`repro.fabric.router` — health- and admission-aware owner
  selection (shed/saturated nodes are re-routed around);
* :mod:`repro.fabric.client` — :class:`~repro.fabric.client.FabricClient`,
  the fabric-aware client with per-node retry, backoff, hedged
  requests, and node-loss failover;
* :mod:`repro.fabric.smoke` — ``python -m repro.fabric.smoke`` boots a
  real 3-node fabric and proves the contracts (bit-identity vs a
  serial run, zero duplicate simulations, node-loss recovery, warm
  remote-tier reruns).

Environment knobs (every one parses through :mod:`repro.exec.env`;
``tests/fabric/test_env.py`` enforces this):

========================== ============================================
``REPRO_REMOTE_CACHE_DIR``  shared remote-tier directory (server side)
``REPRO_FABRIC_CLAIM_TTL_S`` claim staleness bound before stealing
``REPRO_FABRIC_HEDGE_S``    client hedge delay (unset = no hedging)
``REPRO_FABRIC_MAX_QUEUE``  per-node admission bound (queue depth)
``REPRO_FABRIC_NODES``      default comma-separated node address list
========================== ============================================
"""

from __future__ import annotations

from ..exec.env import env_float, env_int, env_str

#: Shared remote-tier directory; unset = the node runs un-federated.
REMOTE_DIR_ENV = "REPRO_REMOTE_CACHE_DIR"

#: Seconds before another node may steal an in-flight claim.
CLAIM_TTL_ENV = "REPRO_FABRIC_CLAIM_TTL_S"

#: Client-side hedge delay in seconds; unset disables hedging.
HEDGE_ENV = "REPRO_FABRIC_HEDGE_S"

#: Per-node admission bound: submissions shed once the queue is this deep.
MAX_QUEUE_ENV = "REPRO_FABRIC_MAX_QUEUE"

#: Default fabric membership: comma-separated node addresses.
NODES_ENV = "REPRO_FABRIC_NODES"

#: Default claim TTL — generous, so only dead claimants get stolen.
DEFAULT_CLAIM_TTL_S = 60.0


def remote_dir() -> str | None:
    """``REPRO_REMOTE_CACHE_DIR``, or ``None`` (no remote tier)."""
    return env_str(REMOTE_DIR_ENV)


def claim_ttl_s() -> float:
    """``REPRO_FABRIC_CLAIM_TTL_S`` (> 0), default 60 s."""
    return env_float(CLAIM_TTL_ENV, DEFAULT_CLAIM_TTL_S,
                     minimum=0.0, exclusive=True)


def hedge_s() -> float | None:
    """``REPRO_FABRIC_HEDGE_S`` (> 0), or ``None`` (hedging off)."""
    return env_float(HEDGE_ENV, None, minimum=0.0, exclusive=True)


def max_queue() -> int | None:
    """``REPRO_FABRIC_MAX_QUEUE`` (>= 1), or ``None`` (no admission bound)."""
    return env_int(MAX_QUEUE_ENV, None, minimum=1)


def fabric_nodes() -> list[str]:
    """``REPRO_FABRIC_NODES`` split on commas, or ``[]`` when unset."""
    raw = env_str(NODES_ENV)
    if raw is None:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


#: Every fabric knob with its strict reader — the meta-test in
#: ``tests/fabric/test_env.py`` walks this to prove each one rejects
#: garbage through :class:`repro.exec.env.EnvKnobError`.
ENV_KNOBS = {
    REMOTE_DIR_ENV: remote_dir,
    CLAIM_TTL_ENV: claim_ttl_s,
    HEDGE_ENV: hedge_s,
    MAX_QUEUE_ENV: max_queue,
    NODES_ENV: fabric_nodes,
}
