"""End-to-end self-check of the fabric (``python -m repro.fabric.smoke``).

Boots a real multi-node fabric — three ``repro.serve`` subprocesses
sharing one remote result tier — and verifies the fabric contracts:

1. **Sharded correctness** — a sweep submitted through
   :class:`~repro.fabric.client.FabricClient` (with hedging forced on)
   returns results bit-identical (modulo wall-time provenance) to the
   serial :mod:`repro.exec` path, and the fabric simulates each unique
   point exactly once *across all nodes* — hedged duplicates resolve
   through remote-tier claims, never a second simulation.
2. **Tiered read-through** — a warm rerun on three *fresh* nodes
   (empty local caches, same remote tier) simulates nothing and
   serves every point from the remote tier
   (``exec.cache.remote.hits`` > 0).
3. **Node loss** — SIGKILL one node mid-campaign: the client fails
   its keys over to the survivors, stale claims are stolen, the sweep
   completes bit-identically, and no orphaned in-flight claim is left
   on the tier.

Exit status 0 on success; nonzero with a diagnostic otherwise. CI runs
this via ``make fabric-smoke``.

Options::

    python -m repro.fabric.smoke [--workers N] [--quiet]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from ..obs.log import configure, get_logger
from ..serve.smoke import comparable, serial_reference, smoke_points
from .client import FabricClient
from .tiers import SharedDirTier

log = get_logger("repro.fabric.smoke")

NODES = 3


def start_node(state_dir: pathlib.Path, address: str, remote: pathlib.Path,
               node_id: str, workers: int, max_jobs: int = 4,
               drain_s: float = 10.0,
               claim_ttl_s: float | None = None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.serve",
               "--state-dir", str(state_dir), "--address", address,
               "--workers", str(workers), "--max-jobs", str(max_jobs),
               "--drain-s", str(drain_s),
               "--remote-cache", str(remote), "--node-id", node_id]
    if claim_ttl_s is not None:
        command += ["--claim-ttl-s", str(claim_ttl_s)]
    # own session (= own process group): SIGKILLing a node must also
    # reap its forked pool workers, or the orphans outlive the smoke
    # holding stdout open (CI pipes would wait on them forever)
    return subprocess.Popen(command, start_new_session=True)


def start_fabric(tmp: pathlib.Path, tag: str, remote: pathlib.Path,
                 workers: int, claim_ttl_s: float | None = None,
                 ) -> tuple[list[str], list[subprocess.Popen]]:
    addresses, processes = [], []
    for n in range(NODES):
        address = f"unix:{tmp / f'{tag}{n}.sock'}"
        addresses.append(address)
        processes.append(start_node(
            tmp / f"{tag}{n}-state", address, remote,
            node_id=f"{tag}{n}", workers=workers,
            claim_ttl_s=claim_ttl_s))
    return addresses, processes


def stop_fabric(processes: list[subprocess.Popen],
                timeout_s: float = 30.0) -> int:
    code = 0
    for process in processes:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
    for process in processes:
        try:
            code |= abs(process.wait(timeout=timeout_s))
        except subprocess.TimeoutExpired:
            process.kill()
            code |= 1
    return code


def node_stats(fabric: FabricClient) -> list[dict]:
    stats = []
    for node, client in fabric.clients.items():
        try:
            stats.append(client.stats())
        except OSError:
            log.info("node %s unreachable for stats (killed?)", node)
    return stats


def fabric_sum(stats: list[dict], name: str) -> float:
    return sum(document.get(name, 0) for document in stats)


# ----------------------------------------------------------------------
# Legs 1+2: cold sharded sweep with hedging, then warm read-through
# ----------------------------------------------------------------------
def check_cold(fabric: FabricClient, expected: list[dict],
               points: list) -> int:
    results = fabric.run(points, timeout_s=300.0)
    got = [comparable(result) for result in results]
    if got != expected:
        log.error("FAIL: fabric results differ from serial run")
        return 1

    stats = node_stats(fabric)
    simulated = fabric_sum(stats, "serve.points_simulated")
    hedged = fabric_sum(stats, "serve.jobs_hedged")
    waits = fabric_sum(stats, "serve.remote_waits")
    unique = len({str(doc) for doc in expected})
    log.info("cold fabric: simulated=%d (unique=%d) hedged=%d "
             "remote_waits=%d client=%s", simulated, unique, hedged,
             waits, fabric.stats())
    if simulated != unique:
        log.error("FAIL: %d simulations fabric-wide for %d unique "
                  "points (hedge/raced duplicates must dedup through "
                  "claims)", simulated, unique)
        return 1
    if fabric.stats().get("fabric.hedges", 0) < 1 or hedged < 1:
        log.error("FAIL: no hedge observed despite hedge_after_s=0")
        return 1
    log.info("OK: sharded sweep bit-identical to serial, %d unique "
             "points simulated exactly once fabric-wide", unique)
    return 0


def check_warm(tmp: pathlib.Path, remote: pathlib.Path, workers: int,
               expected: list[dict], points: list) -> int:
    addresses, processes = start_fabric(tmp, "warm", remote, workers)
    fabric = FabricClient(addresses, hedge_after_s=None)
    try:
        for client in fabric.clients.values():
            client.wait_ready()
        results = fabric.run(points, timeout_s=300.0)
        got = [comparable(result) for result in results]
        if got != expected:
            log.error("FAIL: warm fabric results differ from serial run")
            return 1
        stats = node_stats(fabric)
        simulated = fabric_sum(stats, "serve.points_simulated")
        remote_hits = fabric_sum(stats, "exec.cache.remote.hits")
        hit_rates = [doc.get("exec.cache.remote.hit_rate", 0.0)
                     for doc in stats]
        log.info("warm fabric: simulated=%d remote_hits=%d "
                 "hit_rates=%s", simulated, remote_hits, hit_rates)
        if simulated != 0:
            log.error("FAIL: warm rerun simulated %d point(s); all "
                      "should read through from the remote tier",
                      simulated)
            return 1
        if remote_hits < 1 or max(hit_rates, default=0.0) <= 0.0:
            log.error("FAIL: warm rerun shows no remote-tier "
                      "read-through hits")
            return 1
        log.info("OK: warm rerun on fresh nodes served entirely from "
                 "the remote tier (%d hits)", int(remote_hits))
        return 0
    finally:
        code = stop_fabric(processes)
        if code:
            log.error("FAIL: warm fabric shutdown exited %d", code)
            return 1


# ----------------------------------------------------------------------
# Leg 3: SIGKILL a node mid-campaign; survivors finish the sweep
# ----------------------------------------------------------------------
def check_node_loss(tmp: pathlib.Path, workers: int) -> int:
    remote = tmp / "remote-loss"
    points = smoke_points(seed=7)  # cold keys: real work to interrupt
    expected = serial_reference(points)
    addresses, processes = start_fabric(tmp, "loss", remote,
                                        workers=1, claim_ttl_s=1.0)
    by_address = dict(zip(addresses, processes))
    fabric = FabricClient(addresses, hedge_after_s=None,
                          node_down_after=2)
    try:
        for client in fabric.clients.values():
            client.wait_ready()
        run = fabric.submit(points)
        # kill the node holding the most keys, mid-simulation
        victim = max(run.jobs, key=lambda job: len(job.keys)).node
        time.sleep(0.3)
        process = by_address[victim]
        os.killpg(process.pid, signal.SIGKILL)  # node + pool workers
        process.wait(timeout=10.0)
        log.info("SIGKILLed %s while it held %d key(s)", victim,
                 max(len(j.keys) for j in run.jobs))
        results = fabric.wait(run, timeout_s=300.0)
        got = [comparable(result) for result in results]
        if got != expected:
            log.error("FAIL: post-kill results differ from serial run")
            return 1
        leftovers = SharedDirTier(remote).claims()
        if leftovers:
            log.error("FAIL: %d orphaned in-flight claim(s) on the "
                      "tier after the sweep: %s", len(leftovers),
                      [key[:12] for key in leftovers])
            return 1
        stats = node_stats(fabric)
        log.info("survivors: simulated=%d remote_waits=%d steals=%d "
                 "failovers=%d",
                 fabric_sum(stats, "serve.points_simulated"),
                 fabric_sum(stats, "serve.remote_waits"),
                 fabric_sum(stats, "exec.cache.remote.steals"),
                 fabric.stats().get("fabric.failovers", 0))
        log.info("OK: killed node's pending points completed on "
                 "survivors, bit-identical, no orphaned claims")
        return 0
    finally:
        code = stop_fabric([p for p in processes if p.poll() is None])
        if code:
            log.error("FAIL: node-loss fabric shutdown exited %d", code)
            return 1


def run_smoke(workers: int) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-fabric-") as name:
        tmp = pathlib.Path(name)
        remote = tmp / "remote"
        points = smoke_points()
        points = points + [points[0]]  # duplicate: client-side collapse
        expected = serial_reference(points)

        addresses, processes = start_fabric(tmp, "cold", remote, workers)
        # hedge_after_s=0: every first poll of an unfinished job hedges,
        # so the zero-duplicate assertion exercises the claim path
        fabric = FabricClient(addresses, hedge_after_s=0.0)
        try:
            for client in fabric.clients.values():
                client.wait_ready()
            code = check_cold(fabric, expected, points)
        finally:
            stop_code = stop_fabric(processes)
        if code:
            return code
        if stop_code != 0:
            log.error("FAIL: cold fabric exited %d on SIGTERM",
                      stop_code)
            return 1
        code = check_warm(tmp, remote, workers, expected, points)
        if code:
            return code
        return check_node_loss(tmp, workers)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.fabric.smoke", description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    return run_smoke(args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
