"""Content-addressed on-disk cache of simulation results.

Layout
------
One JSON document per design point, sharded by key prefix to keep
directories small::

    <cache_dir>/
        <kk>/                      # first two hex digits of the key
            <key>.json             # serialized SystemResult document

The key is ``sha256`` over a canonical JSON rendering of

* the full :class:`~repro.sim.runner.DesignPoint` field dict,
* the serialization :data:`~repro.exec.serialize.SCHEMA_VERSION`, and
* the :data:`CACHE_SALT` version salt.

Two points with equal fields therefore share one entry regardless of
which process produced it, and *any* change to a point parameter
changes the key.

Versioning salt
---------------
``CACHE_SALT`` names the simulator behaviour generation. Bump it
whenever a change to the simulator alters the numbers a design point
produces (timing model, policy behaviour, workload generation, …):
stale entries then simply stop matching and are re-simulated — no
manual cache invalidation step is needed. ``REPRO_CACHE_SALT`` in the
environment appends an extra user salt (useful for A/B-ing local
edits without clearing the cache).

Robustness
----------
Writes are atomic (temp file + ``os.replace``), so a killed run never
leaves a half-written entry behind. Reads treat *any* undecodable,
truncated, or schema-mismatched file as a miss (counted in
``counters.corrupt``), never as an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import queue
import tempfile
import threading
from typing import Any

from ..obs.log import get_logger
from .env import env_str
from .serialize import SCHEMA_VERSION, result_from_dict, result_to_dict

log = get_logger(__name__)

#: Simulator behaviour generation. Bump on any change that alters the
#: numbers a DesignPoint produces.
CACHE_SALT = "mopac-sim-1"

#: Environment variable naming the cache directory. Unset = no disk cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def effective_salt(salt: str = CACHE_SALT) -> str:
    """The configured salt plus the user salt and engine from the env.

    The simulation engine (``REPRO_ENGINE``) is folded in only when it
    differs from the reference: the engines are proven bit-identical
    (determinism matrix + ``make bench-engine``), but a regression in
    one must not be able to poison the other's entries — and existing
    reference-engine caches keep their keys.
    """
    from .env import engine_choice

    extra = env_str("REPRO_CACHE_SALT")
    if extra:
        salt = f"{salt}+{extra}"
    engine = engine_choice()
    if engine != "reference":
        salt = f"{salt}@{engine}"
    return salt


def default_cache_dir() -> pathlib.Path | None:
    """Directory named by ``REPRO_CACHE_DIR``, or ``None`` when unset."""
    path = env_str(CACHE_DIR_ENV)
    return pathlib.Path(path) if path else None


def point_key(point: Any, salt: str | None = None) -> str:
    """Stable content hash of a design point (hex sha256)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "salt": effective_salt() if salt is None else salt,
        "point": dataclasses.asdict(point),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclasses.dataclass
class CacheCounters:
    """Observability counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return dict(hits=self.hits, misses=self.misses,
                    corrupt=self.corrupt, writes=self.writes)


class ResultCache:
    """Content-addressed result store rooted at ``directory``."""

    def __init__(self, directory: str | pathlib.Path,
                 salt: str | None = None):
        self.directory = pathlib.Path(directory)
        self.salt = effective_salt() if salt is None else salt
        self.counters = CacheCounters()

    def register_stats(self, registry, prefix: str = "exec.cache") -> None:
        """Expose the hit/miss/corrupt/write counters via an obs registry."""
        registry.register(prefix, self.counters.as_dict)

    def path_for(self, point: Any) -> pathlib.Path:
        key = point_key(point, self.salt)
        return self.directory / key[:2] / f"{key}.json"

    def get(self, point: Any):
        """Cached result for ``point``, or ``None`` (miss)."""
        path = self.path_for(point)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            result = result_from_dict(data)
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            # Truncated/corrupt/stale-schema entries are misses, not
            # crashes; the entry is overwritten on the next put().
            log.warning("treating %s as a miss (%s: %s)", path,
                        type(error).__name__, error)
            self.counters.corrupt += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return result

    def put(self, point: Any, result: Any) -> pathlib.Path:
        """Atomically persist ``result`` under ``point``'s key."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result_to_dict(result))
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.counters.writes += 1
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[tuple[float, int, pathlib.Path]]:
        """Every entry as ``(mtime, size_bytes, path)``, oldest first.

        Entries that vanish or cannot be statted mid-scan (a concurrent
        writer or GC) are skipped, never raised.
        """
        scanned: list[tuple[int, float, int, pathlib.Path]] = []
        if not self.directory.is_dir():
            return []
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            # Sort on st_mtime_ns, not the float st_mtime: on coarse
            # filesystems same-second writes are exact float ties, and
            # even ns-distinct stamps can collide after the float
            # rounding — the path tie-break must then decide, and the
            # ns integer never loses ordering the float still had.
            scanned.append((stat.st_mtime_ns, stat.st_mtime,
                            stat.st_size, path))
        scanned.sort(key=lambda item: (item[0], str(item[3])))
        return [(mtime, size, path)
                for _, mtime, size, path in scanned]

    def size_bytes(self) -> int:
        """Total bytes held by cache entries."""
        return sum(size for _, size, _ in self.entries())

    def prune_plan(self, max_bytes: int
                   ) -> list[tuple[float, int, pathlib.Path]]:
        """What :meth:`prune` *would* evict, oldest-ns-mtime-first.

        Returns ``(mtime, size_bytes, path)`` tuples in eviction order
        — the exact candidates a real prune with the same ``max_bytes``
        starts unlinking (a concurrent writer can of course shift the
        picture between planning and pruning). Read-only: nothing is
        deleted.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        scanned = self.entries()
        total = sum(size for _, size, _ in scanned)
        plan: list[tuple[float, int, pathlib.Path]] = []
        freed = 0
        for mtime, size, path in scanned:
            if total - freed <= max_bytes:
                break
            plan.append((mtime, size, path))
            freed += size
        return plan

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict oldest entries until the cache holds <= ``max_bytes``.

        Eviction is strictly oldest-``mtime``-first (ties broken by
        path for determinism). Unreadable or corrupt entries need no
        special casing — eviction never parses the documents — and
        files already deleted by a concurrent process are counted as
        freed. Returns ``(entries_removed, bytes_freed)``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        scanned = self.entries()
        total = sum(size for _, size, _ in scanned)
        removed = freed = 0
        for _, size, path in scanned:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            except OSError as error:
                log.warning("could not evict %s (%s)", path, error)
                continue
            removed += 1
            freed += size
        return removed, freed


# ----------------------------------------------------------------------
# Remote tier: fabric-wide shared result store behind the local cache
# ----------------------------------------------------------------------
class RemoteTier:
    """Interface of a shared, fabric-wide result tier.

    A remote tier stores the same schema-versioned JSON documents the
    local :class:`ResultCache` holds, keyed by the same content hash,
    plus **in-flight claims**: a node about to simulate key ``K``
    claims it first, so every other node (including a hedged secondary)
    waits for the result instead of duplicating the simulation. The
    shipped implementation is
    :class:`repro.fabric.tiers.SharedDirTier`; anything with this
    surface (an object store, a network KV) plugs into
    :class:`TieredCache` the same way.

    All methods must be safe to call concurrently from multiple
    processes on multiple hosts.
    """

    def get_blob(self, key: str) -> dict | None:
        """The stored document for ``key``, or ``None`` (miss)."""
        raise NotImplementedError

    def put_blob(self, key: str, document: dict) -> None:
        """Atomically store ``document`` under ``key``."""
        raise NotImplementedError

    def claim(self, key: str, owner: str) -> bool:
        """Atomically claim ``key`` for ``owner``; ``False`` if held."""
        raise NotImplementedError

    def release(self, key: str, owner: str) -> None:
        """Drop ``owner``'s claim on ``key`` (no-op if not held)."""
        raise NotImplementedError

    def claim_age_s(self, key: str) -> float | None:
        """Seconds since ``key`` was claimed, or ``None`` (unclaimed)."""
        raise NotImplementedError

    def steal_claim(self, key: str, owner: str) -> bool:
        """Atomically take over a stale claim; ``True`` if ``owner``
        now holds it (exactly one of N racing stealers wins)."""
        raise NotImplementedError

    def claims(self) -> list[str]:
        """Keys currently claimed (observability / orphan checks)."""
        raise NotImplementedError


@dataclasses.dataclass
class RemoteCounters:
    """Observability counters for the remote tier of a :class:`TieredCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    claims: int = 0
    claim_denied: int = 0
    steals: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(hits=self.hits, misses=self.misses,
                    writes=self.writes, write_errors=self.write_errors,
                    claims=self.claims, claim_denied=self.claim_denied,
                    steals=self.steals, hit_rate=self.hit_rate)


class TieredCache(ResultCache):
    """Local :class:`ResultCache` backed by a shared :class:`RemoteTier`.

    * **read-through** — a local miss falls through to the remote tier;
      a remote hit is decoded, written into the local tier, and served,
      so a point simulated on *any* fabric node is a cache hit
      everywhere after one remote round trip;
    * **write-behind** — :meth:`put` persists locally (synchronously,
      atomically — the correctness path), then publishes to the remote
      tier from a background writer thread, so simulation latency never
      pays for remote IO. A crash before the flush loses only remote
      *visibility*: the point re-simulates elsewhere bit-identically.
    * **claims** — :meth:`try_claim`/:meth:`release_claim` expose the
      tier's in-flight claims; :meth:`put_claimed` orders the claim
      release *after* the remote publish on the writer thread, so a
      waiter never observes "claim gone, result missing" in the normal
      path.

    Local counters stay under ``exec.cache.*``; the remote tier's under
    ``exec.cache.remote.*``.
    """

    def __init__(self, directory: str | pathlib.Path, tier: RemoteTier,
                 owner: str = "node", salt: str | None = None,
                 claim_ttl_s: float = 30.0, write_behind: bool = True):
        super().__init__(directory, salt=salt)
        if claim_ttl_s <= 0:
            raise ValueError("claim_ttl_s must be positive")
        self.tier = tier
        self.owner = owner
        self.claim_ttl_s = claim_ttl_s
        self.write_behind = write_behind
        self.remote = RemoteCounters()
        self._queue: queue.Queue = queue.Queue()
        self._writer: threading.Thread | None = None

    def register_stats(self, registry, prefix: str = "exec.cache") -> None:
        super().register_stats(registry, prefix)
        registry.register("exec.cache.remote", self.remote.as_dict)

    # -- read-through ------------------------------------------------------
    def get(self, point: Any):
        result = super().get(point)
        if result is not None:
            return result
        return self._remote_get(point, count_miss=True)

    def peek_remote(self, point: Any):
        """Remote-only probe that never counts a miss.

        Poll loops (a node waiting out another node's claim) call this
        every tick; counting each empty poll as a miss would swamp the
        ``exec.cache.remote.hit_rate`` signal the fabric dashboards
        key on.
        """
        return self._remote_get(point, count_miss=False)

    def _remote_get(self, point: Any, count_miss: bool):
        key = point_key(point, self.salt)
        try:
            blob = self.tier.get_blob(key)
        except OSError as error:
            log.warning("remote tier get %s failed (%s)", key[:12], error)
            blob = None
        if blob is None:
            if count_miss:
                self.remote.misses += 1
            return None
        try:
            result = result_from_dict(blob)
        except (ValueError, KeyError, TypeError) as error:
            log.warning("remote entry %s undecodable (%s: %s); miss",
                        key[:12], type(error).__name__, error)
            if count_miss:
                self.remote.misses += 1
            return None
        self.remote.hits += 1
        # populate the local tier so the next lookup is a disk hit;
        # ResultCache.put (not self.put) — a read-through fill must not
        # echo the document back to the tier it just came from
        ResultCache.put(self, point, result)
        return result

    # -- write-behind ------------------------------------------------------
    def put(self, point: Any, result: Any) -> pathlib.Path:
        path = super().put(point, result)
        self._publish(point_key(point, self.salt), result_to_dict(result),
                      release=False)
        return path

    def put_claimed(self, point: Any, result: Any) -> pathlib.Path:
        """Store a result produced under a held claim.

        The claim release is ordered after the remote publish (both run
        on the writer thread in FIFO order), so other nodes waiting on
        the claim wake up to a remote hit, never to a missing result.
        """
        path = ResultCache.put(self, point, result)
        self._publish(point_key(point, self.salt), result_to_dict(result),
                      release=True)
        return path

    def _publish(self, key: str, document: dict, release: bool) -> None:
        if not self.write_behind:
            self._remote_put(key, document)
            if release:
                self._release(key)
            return
        self._ensure_writer()
        self._queue.put(("put", key, document))
        if release:
            self._queue.put(("release", key, None))

    def _ensure_writer(self) -> None:
        if self._writer is None or not self._writer.is_alive():
            self._writer = threading.Thread(
                target=self._drain_writes, name="tiered-cache-writer",
                daemon=True)
            self._writer.start()

    def _drain_writes(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                op, key, document = item
                if op == "put":
                    self._remote_put(key, document)
                elif op == "release":
                    self._release(key)
            finally:
                self._queue.task_done()

    def _remote_put(self, key: str, document: dict) -> None:
        try:
            self.tier.put_blob(key, document)
            self.remote.writes += 1
        except OSError as error:
            # remote visibility is best-effort: the local entry is the
            # durable copy, other nodes just re-simulate bit-identically
            self.remote.write_errors += 1
            log.warning("remote tier put %s failed (%s)", key[:12], error)

    def _release(self, key: str) -> None:
        try:
            self.tier.release(key, self.owner)
        except OSError as error:
            log.warning("claim release %s failed (%s); will go stale",
                        key[:12], error)

    def flush(self) -> None:
        """Block until every queued remote write/release has landed."""
        self._queue.join()

    def close(self) -> None:
        """Flush and stop the writer thread."""
        self.flush()
        if self._writer is not None and self._writer.is_alive():
            self._queue.put(None)
            self._writer.join(timeout=5.0)
        self._writer = None

    # -- claims ------------------------------------------------------------
    def try_claim(self, key: str) -> bool:
        """Claim ``key`` for this node; ``False`` when another node
        is already simulating it."""
        ok = self.tier.claim(key, self.owner)
        if ok:
            self.remote.claims += 1
        else:
            self.remote.claim_denied += 1
        return ok

    def release_claim(self, key: str) -> None:
        """Drop this node's claim immediately (failure paths only —
        the success path releases through :meth:`put_claimed`)."""
        self._release(key)

    def claim_age_s(self, key: str) -> float | None:
        return self.tier.claim_age_s(key)

    def steal_claim(self, key: str) -> bool:
        """Take over a claim past ``claim_ttl_s`` (dead claimant)."""
        ok = self.tier.steal_claim(key, self.owner)
        if ok:
            self.remote.steals += 1
        return ok


# ----------------------------------------------------------------------
# Maintenance CLI: ``python -m repro.exec.cache``
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Inspect, prune, or clear the on-disk result cache."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.exec.cache",
        description="Result-cache maintenance: stats, size-bounded GC.")
    parser.add_argument("--dir", default=None,
                        help=f"cache directory (default: ${CACHE_DIR_ENV})")
    parser.add_argument("--prune-bytes", type=int, default=None,
                        metavar="N",
                        help="evict oldest entries until <= N bytes remain")
    parser.add_argument("--dry-run", action="store_true",
                        help="with --prune-bytes: print what would be "
                             "evicted (oldest first) without deleting")
    parser.add_argument("--clear", action="store_true",
                        help="delete every entry")
    args = parser.parse_args(argv)

    directory = pathlib.Path(args.dir) if args.dir else default_cache_dir()
    if directory is None:
        parser.error(f"no cache directory: pass --dir or set "
                     f"{CACHE_DIR_ENV}")
    cache = ResultCache(directory)

    if args.clear:
        print(f"cleared {cache.clear()} entries from {directory}")
        return 0
    if args.prune_bytes is not None:
        if args.prune_bytes < 0:
            parser.error("--prune-bytes must be >= 0")
        if args.dry_run:
            plan = cache.prune_plan(args.prune_bytes)
            for _, size, path in plan:
                print(f"would evict {path} ({size} bytes)")
            freed = sum(size for _, size, _ in plan)
            print(f"dry run: would prune {len(plan)} entries "
                  f"({freed} bytes) from {directory}; "
                  f"{len(cache)} entries ({cache.size_bytes()} bytes) "
                  f"held now")
            return 0
        removed, freed = cache.prune(args.prune_bytes)
        print(f"pruned {removed} entries ({freed} bytes) from {directory}; "
              f"{len(cache)} entries ({cache.size_bytes()} bytes) remain")
        return 0
    if args.dry_run:
        parser.error("--dry-run requires --prune-bytes")
    print(f"{directory}: {len(cache)} entries, {cache.size_bytes()} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
