"""Content-addressed on-disk cache of simulation results.

Layout
------
One JSON document per design point, sharded by key prefix to keep
directories small::

    <cache_dir>/
        <kk>/                      # first two hex digits of the key
            <key>.json             # serialized SystemResult document

The key is ``sha256`` over a canonical JSON rendering of

* the full :class:`~repro.sim.runner.DesignPoint` field dict,
* the serialization :data:`~repro.exec.serialize.SCHEMA_VERSION`, and
* the :data:`CACHE_SALT` version salt.

Two points with equal fields therefore share one entry regardless of
which process produced it, and *any* change to a point parameter
changes the key.

Versioning salt
---------------
``CACHE_SALT`` names the simulator behaviour generation. Bump it
whenever a change to the simulator alters the numbers a design point
produces (timing model, policy behaviour, workload generation, …):
stale entries then simply stop matching and are re-simulated — no
manual cache invalidation step is needed. ``REPRO_CACHE_SALT`` in the
environment appends an extra user salt (useful for A/B-ing local
edits without clearing the cache).

Robustness
----------
Writes are atomic (temp file + ``os.replace``), so a killed run never
leaves a half-written entry behind. Reads treat *any* undecodable,
truncated, or schema-mismatched file as a miss (counted in
``counters.corrupt``), never as an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any

from ..obs.log import get_logger
from .env import env_str
from .serialize import SCHEMA_VERSION, result_from_dict, result_to_dict

log = get_logger(__name__)

#: Simulator behaviour generation. Bump on any change that alters the
#: numbers a DesignPoint produces.
CACHE_SALT = "mopac-sim-1"

#: Environment variable naming the cache directory. Unset = no disk cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def effective_salt(salt: str = CACHE_SALT) -> str:
    """The configured salt plus the user salt and engine from the env.

    The simulation engine (``REPRO_ENGINE``) is folded in only when it
    differs from the reference: the engines are proven bit-identical
    (determinism matrix + ``make bench-engine``), but a regression in
    one must not be able to poison the other's entries — and existing
    reference-engine caches keep their keys.
    """
    from .env import engine_choice

    extra = env_str("REPRO_CACHE_SALT")
    if extra:
        salt = f"{salt}+{extra}"
    engine = engine_choice()
    if engine != "reference":
        salt = f"{salt}@{engine}"
    return salt


def default_cache_dir() -> pathlib.Path | None:
    """Directory named by ``REPRO_CACHE_DIR``, or ``None`` when unset."""
    path = env_str(CACHE_DIR_ENV)
    return pathlib.Path(path) if path else None


def point_key(point: Any, salt: str | None = None) -> str:
    """Stable content hash of a design point (hex sha256)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "salt": effective_salt() if salt is None else salt,
        "point": dataclasses.asdict(point),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclasses.dataclass
class CacheCounters:
    """Observability counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return dict(hits=self.hits, misses=self.misses,
                    corrupt=self.corrupt, writes=self.writes)


class ResultCache:
    """Content-addressed result store rooted at ``directory``."""

    def __init__(self, directory: str | pathlib.Path,
                 salt: str | None = None):
        self.directory = pathlib.Path(directory)
        self.salt = effective_salt() if salt is None else salt
        self.counters = CacheCounters()

    def register_stats(self, registry, prefix: str = "exec.cache") -> None:
        """Expose the hit/miss/corrupt/write counters via an obs registry."""
        registry.register(prefix, self.counters.as_dict)

    def path_for(self, point: Any) -> pathlib.Path:
        key = point_key(point, self.salt)
        return self.directory / key[:2] / f"{key}.json"

    def get(self, point: Any):
        """Cached result for ``point``, or ``None`` (miss)."""
        path = self.path_for(point)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            result = result_from_dict(data)
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            # Truncated/corrupt/stale-schema entries are misses, not
            # crashes; the entry is overwritten on the next put().
            log.warning("treating %s as a miss (%s: %s)", path,
                        type(error).__name__, error)
            self.counters.corrupt += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return result

    def put(self, point: Any, result: Any) -> pathlib.Path:
        """Atomically persist ``result`` under ``point``'s key."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result_to_dict(result))
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.counters.writes += 1
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[tuple[float, int, pathlib.Path]]:
        """Every entry as ``(mtime, size_bytes, path)``, oldest first.

        Entries that vanish or cannot be statted mid-scan (a concurrent
        writer or GC) are skipped, never raised.
        """
        scanned: list[tuple[int, float, int, pathlib.Path]] = []
        if not self.directory.is_dir():
            return []
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            # Sort on st_mtime_ns, not the float st_mtime: on coarse
            # filesystems same-second writes are exact float ties, and
            # even ns-distinct stamps can collide after the float
            # rounding — the path tie-break must then decide, and the
            # ns integer never loses ordering the float still had.
            scanned.append((stat.st_mtime_ns, stat.st_mtime,
                            stat.st_size, path))
        scanned.sort(key=lambda item: (item[0], str(item[3])))
        return [(mtime, size, path)
                for _, mtime, size, path in scanned]

    def size_bytes(self) -> int:
        """Total bytes held by cache entries."""
        return sum(size for _, size, _ in self.entries())

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict oldest entries until the cache holds <= ``max_bytes``.

        Eviction is strictly oldest-``mtime``-first (ties broken by
        path for determinism). Unreadable or corrupt entries need no
        special casing — eviction never parses the documents — and
        files already deleted by a concurrent process are counted as
        freed. Returns ``(entries_removed, bytes_freed)``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        scanned = self.entries()
        total = sum(size for _, size, _ in scanned)
        removed = freed = 0
        for _, size, path in scanned:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            except OSError as error:
                log.warning("could not evict %s (%s)", path, error)
                continue
            removed += 1
            freed += size
        return removed, freed


# ----------------------------------------------------------------------
# Maintenance CLI: ``python -m repro.exec.cache``
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Inspect, prune, or clear the on-disk result cache."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.exec.cache",
        description="Result-cache maintenance: stats, size-bounded GC.")
    parser.add_argument("--dir", default=None,
                        help=f"cache directory (default: ${CACHE_DIR_ENV})")
    parser.add_argument("--prune-bytes", type=int, default=None,
                        metavar="N",
                        help="evict oldest entries until <= N bytes remain")
    parser.add_argument("--clear", action="store_true",
                        help="delete every entry")
    args = parser.parse_args(argv)

    directory = pathlib.Path(args.dir) if args.dir else default_cache_dir()
    if directory is None:
        parser.error(f"no cache directory: pass --dir or set "
                     f"{CACHE_DIR_ENV}")
    cache = ResultCache(directory)

    if args.clear:
        print(f"cleared {cache.clear()} entries from {directory}")
        return 0
    if args.prune_bytes is not None:
        if args.prune_bytes < 0:
            parser.error("--prune-bytes must be >= 0")
        removed, freed = cache.prune(args.prune_bytes)
        print(f"pruned {removed} entries ({freed} bytes) from {directory}; "
              f"{len(cache)} entries ({cache.size_bytes()} bytes) remain")
        return 0
    print(f"{directory}: {len(cache)} entries, {cache.size_bytes()} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
