"""End-to-end self-check of the sweep engine (``python -m repro.exec.smoke``).

Runs a tiny 2-design x 3-workload sweep (plus baselines) three ways and
verifies the engine's two contracts:

1. **Determinism** — the parallel run produces numerically identical
   results to the serial path (same seeds, deterministic merge order).
2. **Persistence** — a second, warm-cache invocation against the same
   cache directory performs zero simulations (verified via the
   engine's metrics, not timing).

Exit status 0 on success; nonzero with a diagnostic otherwise. CI runs
this after the tier-1 suite (see the Makefile ``smoke`` target).

Options::

    python -m repro.exec.smoke [--cache-dir DIR] [--workers N]

Without ``--cache-dir`` a temporary directory is used and removed.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from ..sim.runner import DesignPoint
from .cache import ResultCache
from .engine import SweepEngine

WORKLOADS = ("add", "mcf", "xalancbmk")
DESIGNS = ("prac", "mopac-d")
FAST = dict(trh=500, instructions=6_000, rows_per_bank=512,
            refresh_scale=1 / 256)


def smoke_points() -> list[DesignPoint]:
    points: list[DesignPoint] = []
    for workload in WORKLOADS:
        for design in DESIGNS:
            point = DesignPoint(workload=workload, design=design, **FAST)
            points.append(point)
            points.append(point.baseline())
    return points


def run_smoke(cache_dir: str, workers: int = 2,
              out=sys.stderr) -> int:
    points = smoke_points()

    serial = SweepEngine(parallel=False, cache=None, use_memo=False)
    serial_results = serial.run(points)
    print(f"serial:   {serial.metrics.summary()}", file=out)

    parallel = SweepEngine(parallel=True, workers=workers,
                           cache=ResultCache(cache_dir), use_memo=False)
    parallel_results = parallel.run(points)
    print(f"parallel: {parallel.metrics.summary()}", file=out)

    serial_ipcs = [r.ipcs for r in serial_results]
    parallel_ipcs = [r.ipcs for r in parallel_results]
    if serial_ipcs != parallel_ipcs:
        print("FAIL: parallel results differ from the serial path",
              file=out)
        return 1

    warm = SweepEngine(parallel=True, workers=workers,
                       cache=ResultCache(cache_dir), use_memo=False)
    warm_results = warm.run(points)
    print(f"warm:     {warm.metrics.summary()}", file=out)
    if warm.metrics.simulated != 0:
        print(f"FAIL: warm rerun simulated {warm.metrics.simulated} "
              f"points (expected 0)", file=out)
        return 1
    if [r.ipcs for r in warm_results] != serial_ipcs:
        print("FAIL: cached results differ from fresh ones", file=out)
        return 1

    print("OK: parallel == serial, warm rerun hit the cache for every "
          "point", file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exec.smoke", description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: temporary)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    if args.cache_dir:
        return run_smoke(args.cache_dir, args.workers)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        return run_smoke(tmp, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
