"""End-to-end self-check of the sweep engine (``python -m repro.exec.smoke``).

Runs a tiny 2-design x 3-workload sweep (plus baselines) three ways and
verifies the engine's two contracts:

1. **Determinism** — the parallel run produces numerically identical
   results to the serial path (same seeds, deterministic merge order).
2. **Persistence** — a second, warm-cache invocation against the same
   cache directory performs zero simulations (verified via the
   engine's metrics, not timing).

Exit status 0 on success; nonzero with a diagnostic otherwise. CI runs
this after the tier-1 suite (see the Makefile ``smoke`` target).

Options::

    python -m repro.exec.smoke [--cache-dir DIR] [--workers N]

Without ``--cache-dir`` a temporary directory is used and removed.
"""

from __future__ import annotations

import argparse
import tempfile

from ..obs.log import configure, get_logger
from ..sim.runner import DesignPoint
from .cache import ResultCache
from .engine import SweepEngine

log = get_logger("repro.exec.smoke")

WORKLOADS = ("add", "mcf", "xalancbmk")
DESIGNS = ("prac", "mopac-d")
FAST = dict(trh=500, instructions=6_000, rows_per_bank=512,
            refresh_scale=1 / 256)


def smoke_points() -> list[DesignPoint]:
    points: list[DesignPoint] = []
    for workload in WORKLOADS:
        for design in DESIGNS:
            point = DesignPoint(workload=workload, design=design, **FAST)
            points.append(point)
            points.append(point.baseline())
    return points


def run_smoke(cache_dir: str, workers: int = 2) -> int:
    points = smoke_points()

    serial = SweepEngine(parallel=False, cache=None, use_memo=False)
    serial_results = serial.run(points)
    log.info("serial:   %s", serial.metrics.summary())

    parallel = SweepEngine(parallel=True, workers=workers,
                           cache=ResultCache(cache_dir), use_memo=False)
    parallel_results = parallel.run(points)
    log.info("parallel: %s", parallel.metrics.summary())

    serial_ipcs = [r.ipcs for r in serial_results]
    parallel_ipcs = [r.ipcs for r in parallel_results]
    if serial_ipcs != parallel_ipcs:
        log.error("FAIL: parallel results differ from the serial path")
        return 1

    warm = SweepEngine(parallel=True, workers=workers,
                       cache=ResultCache(cache_dir), use_memo=False)
    warm_results = warm.run(points)
    log.info("warm:     %s", warm.metrics.summary())
    if warm.metrics.simulated != 0:
        log.error("FAIL: warm rerun simulated %d points (expected 0)",
                  warm.metrics.simulated)
        return 1
    if [r.ipcs for r in warm_results] != serial_ipcs:
        log.error("FAIL: cached results differ from fresh ones")
        return 1

    log.info("OK: parallel == serial, warm rerun hit the cache for "
             "every point")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exec.smoke", description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: temporary)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    if args.cache_dir:
        return run_smoke(args.cache_dir, args.workers)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        return run_smoke(tmp, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
