"""Strict parsing of ``REPRO_*`` environment knobs.

Every knob the execution layer reads from the environment goes through
these helpers so that a typo'd value fails loudly at startup instead of
silently misbehaving (the historical failure modes: ``REPRO_WORKERS=0``
was clamped to 1 without a word, and ``REPRO_SERIAL=0`` *enabled*
serial mode because any non-empty string was truthy).

Rules:

* unset or empty-string variables mean "use the default",
* integers must parse and respect their lower bound,
* flags accept ``1/0``, ``true/false``, ``yes/no``, ``on/off``
  (case-insensitive); anything else is an error.

All failures raise :class:`EnvKnobError` (a ``ValueError``) whose
message names the variable and the offending value.
"""

from __future__ import annotations

import os

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})

#: Simulation engines selectable via ``REPRO_ENGINE``.
ENGINES = ("reference", "fast")


class EnvKnobError(ValueError):
    """An environment knob holds a value that cannot be parsed."""

    def __init__(self, name: str, value: str, expected: str):
        self.name = name
        self.value = value
        super().__init__(
            f"{name}={value!r}: expected {expected}")


def env_int(name: str, default: int | None = None,
            minimum: int = 1) -> int | None:
    """Integer knob ``name``; ``default`` when unset/empty.

    Rejects non-integers and values below ``minimum`` with an
    :class:`EnvKnobError` naming the variable.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise EnvKnobError(name, raw, "an integer") from None
    if value < minimum:
        raise EnvKnobError(name, raw, f"an integer >= {minimum}")
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean knob ``name``; ``default`` when unset/empty.

    ``1/true/yes/on`` enable, ``0/false/no/off`` disable
    (case-insensitive); anything else raises :class:`EnvKnobError`.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise EnvKnobError(name, raw, "a boolean (1/0, true/false, "
                                  "yes/no, on/off)")


def env_float(name: str, default: float | None = None,
              minimum: float | None = None,
              exclusive: bool = False) -> float | None:
    """Float knob ``name``; ``default`` when unset/empty.

    Rejects non-floats, NaN/inf, and values below ``minimum`` (strictly
    below when ``exclusive`` — e.g. a timeout that must be positive)
    with an :class:`EnvKnobError` naming the variable.
    """
    import math

    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise EnvKnobError(name, raw, "a number") from None
    if not math.isfinite(value):
        raise EnvKnobError(name, raw, "a finite number")
    if minimum is not None:
        if exclusive and value <= minimum:
            raise EnvKnobError(name, raw, f"a number > {minimum:g}")
        if not exclusive and value < minimum:
            raise EnvKnobError(name, raw, f"a number >= {minimum:g}")
    return value


def env_str(name: str, default: str | None = None) -> str | None:
    """Free-form string knob ``name``; ``default`` when unset/empty.

    Whitespace-only values count as unset (a stray ``REPRO_CACHE_DIR=" "``
    must not create a directory named ``" "``). This is the one
    unvalidated shape — paths and salts — so every such knob still has
    a single, greppable access point here.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip()


def set_knob(name: str, value: str) -> None:
    """Set a ``REPRO_*`` knob for this process and its children.

    The only sanctioned environment *write* (the env-discipline lint
    rule bans raw ``os.environ`` mutation): tools that accept a CLI
    override (``campaign --cache-dir``) publish it to worker processes
    through here, keeping the knob namespace in one place.
    """
    if not name.startswith("REPRO_"):
        raise ValueError(f"refusing to set non-REPRO_* variable {name!r}")
    os.environ[name] = value


def env_choice(name: str, choices: tuple[str, ...],
               default: str) -> str:
    """Enumerated knob ``name``; ``default`` when unset/empty.

    The value is case-insensitive; anything outside ``choices`` raises
    :class:`EnvKnobError` naming the variable and the valid values.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip().lower()
    if value not in choices:
        raise EnvKnobError(name, raw, "one of " + "/".join(choices))
    return value


def engine_choice(default: str = "reference") -> str:
    """The simulation engine selected by ``REPRO_ENGINE``.

    ``reference`` is the original event loop; ``fast`` is the
    bit-identical fast engine (:mod:`repro.sim.fastpath`). See
    ``docs/performance.md``.
    """
    return env_choice("REPRO_ENGINE", ENGINES, default)
