"""Sweep execution: parallel fan-out plus a persistent result cache.

Public surface:

* :class:`~repro.exec.engine.SweepEngine` /
  :func:`~repro.exec.engine.run_points` /
  :func:`~repro.exec.engine.warm` — run design points across a process
  pool with deterministic merge order,
* :class:`~repro.exec.cache.ResultCache` /
  :func:`~repro.exec.cache.point_key` — the content-addressed on-disk
  store underneath (``REPRO_CACHE_DIR``),
* :mod:`repro.exec.serialize` — the JSON schema cached results use.

``python -m repro.exec.smoke`` runs the end-to-end self-check (serial
vs parallel equivalence, warm-cache rerun with zero simulations).
"""

from .cache import (CACHE_DIR_ENV, CACHE_SALT, CacheCounters, ResultCache,
                    default_cache_dir, point_key)
from .engine import (EngineMetrics, PointOutcome, SweepEngine, run_points,
                     warm)
from .serialize import (SCHEMA_VERSION, result_from_dict, result_to_dict)

__all__ = [
    "CACHE_DIR_ENV", "CACHE_SALT", "CacheCounters", "ResultCache",
    "default_cache_dir", "point_key",
    "EngineMetrics", "PointOutcome", "SweepEngine", "run_points", "warm",
    "SCHEMA_VERSION", "result_from_dict", "result_to_dict",
]
