"""Parallel sweep execution engine.

Design points are embarrassingly parallel: every
:class:`~repro.sim.runner.DesignPoint` is simulated from its own seed
with no shared mutable state, so a sweep fans out across a
``ProcessPoolExecutor`` and merges results back **in input order**,
which makes the parallel path bit-identical to the serial one.

Resolution order per point:

1. the in-process memo held by :mod:`repro.sim.runner` (``memo_hits``),
2. the on-disk :class:`~repro.exec.cache.ResultCache` (``cache_hits``),
3. a fresh simulation (``simulated``) — in a worker process when the
   engine runs parallel, inline otherwise.

Everything the engine computes is written back to both layers, so a
warm rerun of any campaign performs zero simulations and the rest of
the process (``simulate()``/``slowdown()`` calls) sees the results for
free.

Observability: pass ``progress=callable`` to receive one
:class:`PointOutcome` per *unique* point as it completes (completion
order under parallelism is nondeterministic; the returned result list
is not), and read :class:`EngineMetrics` afterwards for totals,
hit/miss split, and wall time.

Environment knobs (all optional):

* ``REPRO_CACHE_DIR``  — enables the disk cache at that directory,
* ``REPRO_WORKERS``    — default worker count (else ``os.cpu_count()``),
* ``REPRO_SERIAL=1``   — force the serial path everywhere.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.log import get_logger
from ..obs.profiler import PhaseProfiler
from ..obs.spans import current_span, current_tracer, span
from ..sim import runner
from .cache import ResultCache, default_cache_dir
from .env import env_flag, env_int

log = get_logger(__name__)

#: Sentinel distinguishing "use the env-configured cache" from "no cache".
_AUTO = "auto"



def _wall_clock() -> float:
    """Wall-time meter for engine metrics (``wall_s``, per-point cost).

    Telemetry only: wall times feed ``exec.engine`` stats, progress
    hooks, and log lines — never the simulation results themselves,
    which depend only on the DesignPoint.
    """
    # repro: allow(determinism) — wall-time metrics, never in results
    return time.perf_counter()


def _simulate_point(point: runner.DesignPoint) -> tuple[Any, float]:
    """Worker entry point: run one point, return (result, wall_s).

    Module-level so it pickles by reference into pool workers. Always
    simulates from scratch — workers never consult caches, which keeps
    the parallel path's numbers byte-for-byte those of a cold serial
    run.
    """
    start = _wall_clock()
    result = runner.run_point(point)
    return result, _wall_clock() - start


@dataclass(frozen=True)
class PointOutcome:
    """One resolved design point, as reported to progress hooks."""

    index: int  #: position among the engine's unique points
    point: runner.DesignPoint
    result: Any
    source: str  #: "memo" | "cache" | "simulated"
    wall_s: float  #: simulation wall time (0.0 for memo/cache hits)


@dataclass
class EngineMetrics:
    """Cumulative counters across an engine's ``run()`` calls."""

    points: int = 0  #: total points requested (including duplicates)
    unique_points: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    wall_s: float = 0.0  #: end-to-end engine wall time
    sim_wall_s: float = 0.0  #: summed per-point simulation time
    slowest_point_s: float = 0.0

    @property
    def hits(self) -> int:
        return self.memo_hits + self.cache_hits

    @property
    def speedup(self) -> float:
        """Summed point time over wall time (>1 under parallelism)."""
        return self.sim_wall_s / self.wall_s if self.wall_s else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "points": self.points,
            "unique_points": self.unique_points,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "wall_s": self.wall_s,
            "sim_wall_s": self.sim_wall_s,
        }

    def summary(self) -> str:
        return (f"{self.points} points ({self.unique_points} unique): "
                f"{self.memo_hits} memo + {self.cache_hits} cached + "
                f"{self.simulated} simulated in {self.wall_s:.1f}s")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, else ``os.cpu_count()``.

    Malformed values (non-integers, zero, negatives) raise
    :class:`~repro.exec.env.EnvKnobError` instead of being silently
    clamped.
    """
    value = env_int("REPRO_WORKERS", minimum=1)
    if value is not None:
        return value
    return os.cpu_count() or 1


def serial_forced() -> bool:
    """Whether ``REPRO_SERIAL`` forces the inline path.

    Accepts the usual boolean spellings; ``REPRO_SERIAL=0`` now means
    *not* serial (historically any non-empty string, including ``"0"``,
    enabled serial mode).
    """
    return env_flag("REPRO_SERIAL")


class SweepEngine:
    """Fan design points out over processes, through the result cache.

    Parameters
    ----------
    workers:
        Pool size; default ``REPRO_WORKERS`` or ``os.cpu_count()``.
    parallel:
        ``True``/``False`` force the path; ``None`` picks parallel
        whenever more than one point must actually be simulated and
        more than one worker is available (``REPRO_SERIAL=1`` forces
        serial).
    cache:
        A :class:`ResultCache`, ``None`` to disable the disk layer, or
        ``"auto"`` (default) to use ``REPRO_CACHE_DIR`` when set.
    use_memo:
        Whether to consult/populate the in-process memo in
        :mod:`repro.sim.runner`. Disable for cold-path measurements.
    progress:
        Optional hook receiving one :class:`PointOutcome` per unique
        point as it resolves.
    """

    def __init__(self, workers: int | None = None,
                 parallel: bool | None = None,
                 cache: ResultCache | None | str = _AUTO,
                 use_memo: bool = True,
                 progress: Callable[[PointOutcome], None] | None = None):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.parallel = parallel
        if cache == _AUTO:
            directory = default_cache_dir()
            cache = ResultCache(directory) if directory else None
        self.cache: ResultCache | None = cache
        self.use_memo = use_memo
        self.progress = progress
        self.metrics = EngineMetrics()
        #: wall-time breakdown: "lookup" (memo + cache reads),
        #: "simulate" (miss execution, inclusive), "cache_io" (writes)
        self.profiler = PhaseProfiler()

    def register_stats(self, registry, prefix: str = "exec") -> None:
        """Expose engine + cache counters through an obs registry.

        Snapshots gain ``<prefix>.engine.*`` (points, hit/miss split,
        wall times) and, when the disk cache is enabled,
        ``<prefix>.cache.*`` (hits/misses/corrupt/writes).
        """
        registry.register(f"{prefix}.engine", self.metrics.as_dict)
        if self.cache is not None:
            self.cache.register_stats(registry, f"{prefix}.cache")

    # ------------------------------------------------------------------
    def run(self, points: Sequence[runner.DesignPoint]) -> list[Any]:
        """Resolve every point; returns results in input order."""
        start = _wall_clock()
        points = list(points)
        self.metrics.points += len(points)

        unique: list[runner.DesignPoint] = []
        first_index: dict[runner.DesignPoint, int] = {}
        for point in points:
            if point not in first_index:
                first_index[point] = len(unique)
                unique.append(point)
        self.metrics.unique_points += len(unique)

        resolved: dict[int, Any] = {}
        misses: list[tuple[int, runner.DesignPoint]] = []
        with self.profiler.phase("lookup"):
            for index, point in enumerate(unique):
                with span("exec.cache_lookup", workload=point.workload,
                          design=point.design):
                    result, source = self._lookup(point)
                if result is not None:
                    resolved[index] = result
                    self._emit(PointOutcome(index, point, result,
                                            source, 0.0))
                else:
                    misses.append((index, point))

        if misses:
            with self.profiler.phase("simulate"):
                for index, point, result, wall in self._execute(misses):
                    resolved[index] = result
                    self.metrics.simulated += 1
                    self.metrics.sim_wall_s += wall
                    self.metrics.slowest_point_s = max(
                        self.metrics.slowest_point_s, wall)
                    with self.profiler.phase("cache_io"), \
                            span("exec.cache_write",
                                 workload=point.workload,
                                 design=point.design):
                        self._store(point, result)
                    self._emit(PointOutcome(index, point, result,
                                            "simulated", wall))

        self.metrics.wall_s += _wall_clock() - start
        log.debug("engine run: %s | %s", self.metrics.summary(),
                  self.profiler.summary())
        return [resolved[first_index[point]] for point in points]

    # ------------------------------------------------------------------
    def _lookup(self, point) -> tuple[Any, str]:
        if self.use_memo:
            result = runner.memo_get(point)
            if result is not None:
                self.metrics.memo_hits += 1
                return result, "memo"
        if self.cache is not None:
            result = self.cache.get(point)
            if result is not None:
                self.metrics.cache_hits += 1
                if self.use_memo:
                    runner.memo_put(point, result)
                return result, "cache"
            self.metrics.cache_misses += 1
        return None, ""

    def _store(self, point, result) -> None:
        if self.use_memo:
            runner.memo_put(point, result)
        if self.cache is not None:
            self.cache.put(point, result)

    def _emit(self, outcome: PointOutcome) -> None:
        if self.progress is not None:
            self.progress(outcome)

    def _run_parallel(self, misses: list) -> bool:
        if serial_forced():
            return False
        if self.parallel is not None:
            return self.parallel and self.workers > 1
        return self.workers > 1 and len(misses) > 1

    def _execute(self, misses: list):
        """Yield ``(index, point, result, wall_s)`` for every miss."""
        if not self._run_parallel(misses):
            for index, point in misses:
                with span("exec.simulate", workload=point.workload,
                          design=point.design):
                    result, wall = _simulate_point(point)
                yield index, point, result, wall
            return
        workers = min(self.workers, len(misses))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_simulate_point, point): (index, point)
                       for index, point in misses}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, point = futures[future]
                    result, wall = future.result()
                    self._record_remote_span(point, wall)
                    yield index, point, result, wall

    @staticmethod
    def _record_remote_span(point, wall_s: float) -> None:
        """Retroactive ``exec.simulate`` span for a pool-executed point.

        The worker process has no access to the parent's tracer, so the
        span is reconstructed at collection time from the measured wall
        time; its end edge is the moment the future was collected.
        """
        tracer = current_tracer()
        if tracer is None:
            return
        parent = current_span()
        # repro: allow(determinism) — span telemetry, never in results
        end_ns = time.perf_counter_ns()
        tracer.record("exec.simulate", end_ns - int(wall_s * 1e9), end_ns,
                      parent_id=parent.span_id if parent else None,
                      workload=point.workload, design=point.design,
                      remote=True)


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------
def run_points(points: Sequence[runner.DesignPoint],
               **engine_kwargs: Any) -> list[Any]:
    """One-shot engine run; results in input order."""
    return SweepEngine(**engine_kwargs).run(points)


def warm(points: Sequence[runner.DesignPoint],
         **engine_kwargs: Any) -> EngineMetrics:
    """Pre-simulate ``points`` into the memo/disk caches.

    After ``warm()``, plain ``simulate()`` / ``slowdown()`` calls over
    the same points are pure cache hits — this is how the experiment
    drivers gain parallelism without restructuring their loops.
    """
    engine = SweepEngine(**engine_kwargs)
    engine.run(points)
    return engine.metrics
