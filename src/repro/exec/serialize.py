"""JSON (de)serialisation of :class:`~repro.sim.system.SystemResult`.

The on-disk result cache (:mod:`repro.exec.cache`) stores one JSON
document per design point. The document carries everything a
:class:`SystemResult` holds — the resolved system configuration,
per-core stats (and hence IPCs), per-controller :class:`MCStats`,
per-sub-channel policy stats, and the optional row-activity census — so
a cache hit reconstructs a result that is indistinguishable from a
fresh simulation to every downstream consumer (weighted speedup,
energy model, table renderers).

``SCHEMA_VERSION`` is bumped whenever the document layout changes;
:func:`result_from_dict` rejects documents from other schema versions,
which the cache treats as a miss.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..config import DRAMConfig, SystemConfig
from ..cpu.core import CoreStats
from ..dram.timing import TimingSet
from ..mc.controller import MCStats
from ..sim.system import RowActivityStats, SystemResult

#: Layout version of the serialized result document.
#: v2 added the observability fields (``stats`` snapshot, ``phases``).
#: v3 added the ``mitigation.*.security.*`` telemetry family to the
#: stats snapshot (drift histograms, PRE rates, max disturbance).
SCHEMA_VERSION = 3


class SchemaMismatch(ValueError):
    """Document written under a different schema version.

    Subclasses ``ValueError`` so existing ``except ValueError`` cache
    paths keep treating it as a miss; carries the versions so tooling
    can report *which* layout was found.
    """

    def __init__(self, found: Any, expected: int):
        self.found = found
        self.expected = expected
        super().__init__(
            f"result schema {found!r}, expected {expected}")


def result_to_dict(result: SystemResult) -> dict[str, Any]:
    """Flatten a result into a JSON-serialisable document."""
    return {
        "schema": SCHEMA_VERSION,
        "config": dataclasses.asdict(result.config),
        "core_stats": [dataclasses.asdict(s) for s in result.core_stats],
        "mc_stats": [dataclasses.asdict(s) for s in result.mc_stats],
        "policy_stats": [dict(s) for s in result.policy_stats],
        "elapsed_ps": result.elapsed_ps,
        "row_activity": (dataclasses.asdict(result.row_activity)
                         if result.row_activity is not None else None),
        "stats": dict(result.stats),
        "phases": dict(result.phases),
    }


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` form."""
    dram_data = dict(data["dram"])
    timing = TimingSet(**dram_data.pop("timing"))
    dram = DRAMConfig(timing=timing, **dram_data)
    system_data = {k: v for k, v in data.items() if k != "dram"}
    return SystemConfig(dram=dram, **system_data)


def result_from_dict(data: dict[str, Any]) -> SystemResult:
    """Inverse of :func:`result_to_dict`.

    Raises :class:`SchemaMismatch` (a ``ValueError``) on documents from
    another schema version and ``KeyError`` / ``TypeError`` on
    structurally broken documents; the cache maps all of those to a
    miss.
    """
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise SchemaMismatch(schema, SCHEMA_VERSION)
    activity = data["row_activity"]
    return SystemResult(
        config=config_from_dict(data["config"]),
        core_stats=[CoreStats(**s) for s in data["core_stats"]],
        mc_stats=[MCStats(**s) for s in data["mc_stats"]],
        policy_stats=[dict(s) for s in data["policy_stats"]],
        elapsed_ps=data["elapsed_ps"],
        row_activity=(RowActivityStats(**activity)
                      if activity is not None else None),
        stats=dict(data["stats"]),
        phases=dict(data["phases"]),
    )
