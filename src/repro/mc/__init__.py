"""Memory-controller substrate: request types, page policies, FR-FCFS."""

from .controller import FRFCFS_WINDOW, MCStats, MemoryController
from .pagepolicy import (ClosePagePolicy, OpenPagePolicy, PagePolicy,
                         TimeoutPagePolicy, make_page_policy)
from .request import MemRequest

__all__ = [
    "ClosePagePolicy", "FRFCFS_WINDOW", "MCStats", "MemRequest",
    "MemoryController", "OpenPagePolicy", "PagePolicy", "TimeoutPagePolicy",
    "make_page_policy",
]
