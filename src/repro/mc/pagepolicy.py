"""Row-buffer closure policies (paper Section 3.1 and Appendix C).

The paper's default is open-page with MOP mapping: a row stays open until a
conflicting request arrives (or refresh closes it). Appendix C additionally
evaluates close-page (precharge as soon as no queued request wants the open
row) and timeout policies that close a row tON after its last access.
"""

from __future__ import annotations

from ..units import ns


class PagePolicy:
    """Decides whether to keep a row open after servicing a request."""

    name = "open"

    def keep_open(self, queued_hits: int) -> bool:
        """Called after a column access; ``queued_hits`` counts queued
        requests that target the currently open row."""
        return True

    def timeout_ps(self) -> int | None:
        """Auto-close delay after the last access, or None to never."""
        return None


class OpenPagePolicy(PagePolicy):
    """Keep the row open until a conflict forces it closed (default)."""

    name = "open"


class ClosePagePolicy(PagePolicy):
    """Close the row as soon as no queued request hits it."""

    name = "close"

    def keep_open(self, queued_hits: int) -> bool:
        return queued_hits > 0


class TimeoutPagePolicy(PagePolicy):
    """Close the row ``ton_ns`` after its last access (Appendix C)."""

    def __init__(self, ton_ns: float):
        if ton_ns <= 0:
            raise ValueError("ton_ns must be positive")
        self.ton = ns(ton_ns)
        self.name = f"ton{ton_ns:g}"

    def timeout_ps(self) -> int | None:
        return self.ton


def make_page_policy(kind: str) -> PagePolicy:
    """Factory: ``"open"``, ``"close"``, or ``"ton<ns>"`` (e.g. ton100)."""
    if kind == "open":
        return OpenPagePolicy()
    if kind == "close":
        return ClosePagePolicy()
    if kind.startswith("ton"):
        return TimeoutPagePolicy(float(kind[3:]))
    raise ValueError(f"unknown page policy: {kind!r}")
