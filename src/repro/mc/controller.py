"""Memory controller: one instance per DDR5 sub-channel.

Implements a per-bank-queue FR-FCFS scheduler (row hits first, then oldest)
over the :class:`~repro.dram.bank.Bank` state machines, a shared data bus,
ACT-to-ACT spacing, all-bank refresh every tREFI, the ABO ALERT protocol,
and the pluggable row-closure policies of Appendix C.

The controller is event-driven: the :class:`~repro.sim.system.System` owns
the event heap and hands it to the controller through the ``scheduler``
callable (``scheduler(time_ps, callback)``). Every DRAM-side decision asks
the mitigation policy for the episode's timing set, which is how PRAC's
inflated timings and MoPAC-C's dual precharge flavours enter the timing
path.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable

from ..config import DRAMConfig
from ..dram.bank import Bank
from ..mitigations.base import EpisodeDecision, MitigationPolicy
from ..obs.registry import Histogram, StatsRegistry
from ..obs.tracer import EventTracer
from .pagepolicy import OpenPagePolicy, PagePolicy
from .request import MemRequest

#: How deep into a bank queue FR-FCFS looks for a row hit.
FRFCFS_WINDOW = 8

#: Latency histogram bucket edges (ps): 50 ns .. 10 us.
LATENCY_BOUNDS_PS = tuple(n * 1000 for n in (
    50, 75, 100, 150, 200, 300, 400, 500, 750,
    1000, 1500, 2000, 3000, 5000, 10000))


@dataclass
class MCStats:
    requests: int = 0
    reads: int = 0
    writes: int = 0
    serviced: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activations: int = 0
    refreshes: int = 0
    alerts: int = 0
    rfm_commands: int = 0
    total_latency_ps: int = 0
    read_latency_ps: int = 0
    read_serviced: int = 0

    @property
    def classified_accesses(self) -> int:
        """Serviced requests, by row-buffer outcome (one class each)."""
        return self.row_hits + self.row_misses + self.row_conflicts

    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.classified_accesses
        return self.row_hits / total if total else 0.0

    #: alias matching the registry/ISSUE nomenclature
    row_hit_rate = row_buffer_hit_rate

    @property
    def mean_latency_ns(self) -> float:
        return (self.total_latency_ps / self.requests / 1000
                if self.requests else 0.0)

    @property
    def mean_read_latency_ns(self) -> float:
        """Average arrival-to-data latency of serviced reads."""
        return (self.read_latency_ps / self.read_serviced / 1000
                if self.read_serviced else 0.0)

    def derived(self) -> dict[str, float]:
        """The derived accessors, for stats-registry snapshots."""
        return {
            "row_buffer_hit_rate": self.row_buffer_hit_rate,
            "mean_latency_ns": self.mean_latency_ns,
            "mean_read_latency_ns": self.mean_read_latency_ns,
        }


class MemoryController:
    """FR-FCFS controller for one sub-channel."""

    def __init__(self, subchannel: int, config: DRAMConfig,
                 policy: MitigationPolicy,
                 scheduler: Callable[[int, Callable[[int], None]], None],
                 on_complete: Callable[[MemRequest], None],
                 page_policy: PagePolicy | None = None,
                 refresh_mode: str = "all-bank"):
        if refresh_mode not in ("all-bank", "same-bank"):
            raise ValueError(f"unknown refresh_mode {refresh_mode!r}")
        self.refresh_mode = refresh_mode
        self._next_ref_bank = 0
        self.subchannel = subchannel
        self.config = config
        self.policy = policy
        self.schedule = scheduler
        self.on_complete = on_complete
        self.page_policy = page_policy or OpenPagePolicy()
        n = config.banks_per_subchannel
        self.banks = [Bank(i) for i in range(n)]
        self.queues: list[collections.deque[MemRequest]] = [
            collections.deque() for _ in range(n)
        ]
        #: the episode decision governing each bank's current open row
        self.episodes: list[EpisodeDecision | None] = [None] * n
        #: whether a service pass is already scheduled per bank
        self._bank_scheduled = [False] * n
        self._bank_last_access = [0] * n
        self.bus_free = 0
        self.next_act_ok = 0
        #: issue times of the last four ACTs (tFAW rolling window)
        self._recent_acts = collections.deque(maxlen=4)
        self.next_ref = policy.timing.tREFI
        #: when the pending refresh event will actually execute (equals
        #: the cadence anchor unless the refresh was deferred past an
        #: RFM stall); this is what the commit horizon consults
        self._ref_horizon = self.next_ref
        #: REFsb commands issued so far (same-bank mode cadence anchor)
        self._refsb_count = 0
        self._alert_in_flight = False
        #: RFM pop time of the in-flight ALERT episode (commit horizon)
        self._alert_deadline: int | None = None
        pair = policy.timing_pair()
        #: pessimistic tRCD before the episode decision exists
        self._trcd_bound = max(pair[0].tRCD, pair[1].tRCD)
        #: pessimistic span from the column grant to the last date the
        #: episode can commit (the closing PRE behind a write's
        #: recovery, or the tRAS wait)
        tail = max(t.tRAS + t.tWR + 2 * t.tBURST for t in pair)
        #: how far past an event pop a service may date commands and
        #: still stay inside the tALERT_NORMAL grace of any ALERT that
        #: a later-popping event asserts
        self._fresh_slack = policy.timing.tALERT_NORMAL - tail
        self.stats = MCStats()
        #: arrival-to-data latency census of serviced requests
        self.latency_hist = Histogram(LATENCY_BOUNDS_PS)
        #: optional callback (time_ps, bank, row) fired on every ACT
        self.act_hook: Callable[[int, int, int], None] | None = None
        #: opt-in event tracer; None (the default) costs one check per site
        self.tracer: EventTracer | None = None

    def register_stats(self, registry: StatsRegistry, prefix: str) -> None:
        """Expose controller, latency, and per-bank stats under ``prefix``."""
        registry.register(prefix, lambda: {
            **{k: v for k, v in self.stats.__dict__.items()},
            **self.stats.derived(),
        })
        registry.register(f"{prefix}.latency_ps",
                          self.latency_hist.as_dict)
        for bank in self.banks:
            registry.register(f"{prefix}.bank.{bank.index}",
                              lambda b=bank: dict(b.stats.__dict__))

    # ------------------------------------------------------------------
    # Request entry
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic refresh stream.

        All-bank mode issues one REFab every tREFI (the paper's setup);
        same-bank mode spreads one REFsb per bank across each tREFI, so
        every bank is still refreshed at the tREFI cadence but only one
        bank is ever blocked (for the shorter tRFCsb).
        """
        if self.refresh_mode == "same-bank":
            self.next_ref = self.policy.timing.tREFI \
                // len(self.banks)
            self._refsb_count = 0
            self._ref_horizon = self.next_ref
            self._schedule_refsb(self.next_ref)
        else:
            self._ref_horizon = self.next_ref
            self._schedule_ref(self.next_ref)

    def enqueue(self, request: MemRequest, now: int) -> None:
        self.stats.requests += 1
        if request.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.queues[request.bank].append(request)
        self._kick(request.bank, max(now, request.arrival_ps))

    def pending(self) -> int:
        return sum(len(q) for q in self.queues)

    # ------------------------------------------------------------------
    # Event-scheduling indirection
    # ------------------------------------------------------------------
    # Every event the controller puts on the system heap goes through one
    # of these helpers. The reference implementation allocates a closure
    # per event; the fast engine (:mod:`repro.sim.fastpath`) overrides
    # the helpers to push preallocated tuple opcodes instead, while the
    # maintenance logic above them stays single-sourced.
    def _schedule_service(self, when: int, bank_index: int) -> None:
        self.schedule(when, lambda now, b=bank_index: self._service(b, now))

    def _schedule_ref(self, when: int) -> None:
        self.schedule(when, self._ref_event)

    def _schedule_refsb(self, when: int) -> None:
        self.schedule(when, self._refsb_event)

    def _schedule_rfm(self, when: int) -> None:
        self.schedule(when, self._rfm_event)

    def _schedule_timeout(self, when: int, bank_index: int,
                          access_stamp: int) -> None:
        self.schedule(when,
                      lambda t, b=bank_index, s=access_stamp:
                      self._timeout_close(b, s, t))

    # ------------------------------------------------------------------
    # Per-bank service
    # ------------------------------------------------------------------
    def _kick(self, bank_index: int, when: int) -> None:
        if self._bank_scheduled[bank_index]:
            return
        self._bank_scheduled[bank_index] = True
        self._schedule_service(when, bank_index)

    def _service(self, bank_index: int, now: int) -> None:
        self._bank_scheduled[bank_index] = False
        queue = self.queues[bank_index]
        if not queue:
            return
        bank = self.banks[bank_index]
        if bank.blocked_until > now:
            self._kick(bank_index, bank.blocked_until)
            return

        request = self._select(queue, bank)
        retry = self._commit_defer(bank_index, bank, request, now)
        if retry is not None:
            self._kick(bank_index, retry)
            return
        t_col, done = self._issue(bank_index, bank, request, now)
        queue.remove(request)
        request.completion_ps = done
        self.stats.serviced += 1
        self.stats.total_latency_ps += request.latency_ps
        if not request.is_write:
            self.stats.read_serviced += 1
            self.stats.read_latency_ps += request.latency_ps
        self.latency_hist.observe(request.latency_ps)
        self.on_complete(request)
        self._after_column(bank_index, bank, t_col)
        if queue:
            # The bank can take its next column command one burst later;
            # the data of the previous one drains in the background.
            self._kick(bank_index, t_col + self.policy.timing.tBURST)

    def _select(self, queue: collections.deque[MemRequest],
                bank: Bank) -> MemRequest:
        """FR-FCFS: oldest row hit within the window, else oldest."""
        if bank.is_open:
            for request in list(queue)[:FRFCFS_WINDOW]:
                if request.row == bank.open_row:
                    return request
        return queue[0]

    def _commit_horizon(self, bank_index: int) -> int:
        """Exclusive upper bound on command dates committable right now.

        Callbacks commit commands with forward-dated timestamps (a
        conflict's PRE + ACT chain, the bus-serialisation skew), so a
        command could otherwise be dated inside a maintenance window that
        a later-popping event imposes: past the next REF that touches
        this bank, or past the RFM pop of an in-flight ALERT. Commands at
        or beyond the horizon must be deferred until the boundary event
        has run and re-blocked the banks.
        """
        if self.refresh_mode == "same-bank":
            # this bank's own next REFsb slot on the cumulative cadence;
            # refreshes execute in event order, so nothing touching this
            # bank can run before the pending refresh's execution time
            ahead = (bank_index - self._next_ref_bank) % len(self.banks)
            slot = self._refsb_count + 1 + ahead
            anchor = slot * self.policy.timing.tREFI // len(self.banks)
            horizon = max(self._ref_horizon, anchor)
            # a REFsb to ANY bank may drain mitigations and assert an
            # ALERT whose all-bank RFM stall opens tALERT_NORMAL after
            # the pop, so no command may be dated at or past that point
            horizon = min(horizon, self._ref_horizon
                          + self.policy.timing.tALERT_NORMAL)
        else:
            horizon = self._ref_horizon
        if self._alert_deadline is not None:
            horizon = min(horizon, self._alert_deadline)
        return horizon

    def _commit_defer(self, bank_index: int, bank: Bank,
                      request: MemRequest, now: int) -> int | None:
        """Retry time if servicing ``request`` now would cross the horizon.

        Mirrors the dating arithmetic of :meth:`_issue` without mutating
        any state, using the pessimistic tRCD bound in place of the
        not-yet-made episode decision. Re-kicking at the horizon means
        the deferred service observes the maintenance event's blocking
        (and forced closes) exactly as an in-order controller would.
        """
        horizon = self._commit_horizon(bank_index)
        timing = self.policy.timing
        pop_now = now
        now = max(now, request.arrival_ps)
        if bank.is_open and bank.open_row == request.row:
            latest = max(now, bank.earliest_column(),
                         self.bus_free - timing.tCAS)
        else:
            if bank.is_open:  # conflict: the close chains into the ACT
                decision = self.episodes[bank_index]
                assert decision is not None
                t_pre = max(now, bank.earliest_precharge())
                ready_act = max(t_pre + decision.pre_timing.tRP,
                                bank.last_act + decision.pre_timing.tRC,
                                bank.blocked_until)
            else:
                ready_act = bank.earliest_activate()
            t_act = max(now, ready_act, self.next_act_ok)
            if len(self._recent_acts) == 4:
                t_act = max(t_act, self._recent_acts[0] + timing.tFAW)
            latest = max(now, t_act + self._trcd_bound,
                         self.bus_free - timing.tCAS)
        if latest - pop_now > self._fresh_slack:
            # A not-yet-arrived request, a deep data-bus backlog, or a
            # long ready-time chain would forward-date commands more
            # than tALERT_NORMAL past this pop — potentially inside the
            # window or stall of an ALERT that a later-popping event
            # (another bank's chain, a mitigation drain) asserts. Wait
            # until the whole chain's dates fall within the grace.
            return latest - self._fresh_slack
        return horizon if latest >= horizon else None

    def _issue(self, bank_index: int, bank: Bank, request: MemRequest,
               now: int) -> tuple[int, int]:
        """Issue PRE/ACT/column as needed.

        Returns ``(column_issue_time, data_completion_time)``."""
        timing = self.policy.timing
        now = max(now, request.arrival_ps)  # cannot serve the future
        act_cause = "miss"
        if bank.is_open and bank.open_row == request.row:
            self.stats.row_hits += 1
        elif bank.is_open:
            self.stats.row_conflicts += 1
            act_cause = "conflict"
            bank.note_conflict()
            self._close(bank_index, bank, max(now, bank.earliest_precharge()))
        else:
            self.stats.row_misses += 1

        if not bank.is_open:
            t_act = max(now, bank.earliest_activate(), self.next_act_ok)
            if len(self._recent_acts) == 4:
                t_act = max(t_act, self._recent_acts[0] + timing.tFAW)
            decision = self.policy.on_activate(bank_index, request.row, t_act)
            self.episodes[bank_index] = decision
            bank.activate(request.row, t_act, decision.act_timing)
            self.next_act_ok = t_act + timing.tRRD
            self._recent_acts.append(t_act)
            self.stats.activations += 1
            if self.act_hook is not None:
                self.act_hook(t_act, bank_index, request.row)
            if self.tracer is not None:
                self.tracer.record(t_act, "ACT", self.subchannel,
                                   bank_index, request.row, act_cause,
                                   cu=decision.counter_update)
            self._check_alert(t_act)

        # Column command: respect tRCD and data-bus serialisation.
        t_col = max(now, bank.earliest_column(),
                    self.bus_free - timing.tCAS)
        if request.is_write:
            done = bank.write(request.row, t_col)
        else:
            done = bank.read(request.row, t_col)
        if self.tracer is not None:
            self.tracer.record(t_col, "WR" if request.is_write else "RD",
                               self.subchannel, bank_index, request.row)
        self.bus_free = t_col + timing.tCAS + timing.tBURST
        self._bank_last_access[bank_index] = t_col
        return t_col, done

    def _after_column(self, bank_index: int, bank: Bank, now: int) -> None:
        """Apply the row-closure policy after a column access."""
        if not bank.is_open:
            return
        queued_hits = sum(1 for r in self.queues[bank_index]
                          if r.row == bank.open_row)
        if not self.page_policy.keep_open(queued_hits):
            when = max(now, bank.earliest_precharge())
            if when >= self._commit_horizon(bank_index):
                # cannot date the PRE across the maintenance boundary;
                # retry after the boundary event (stamp-guarded, so a
                # fresh access or a forced close cancels the retry)
                self._defer_close(bank_index, now)
                return
            self._close(bank_index, bank, when)
            return
        timeout = self.page_policy.timeout_ps()
        if timeout is not None:
            access_stamp = self._bank_last_access[bank_index]
            self._schedule_timeout(now + timeout, bank_index, access_stamp)

    def _defer_close(self, bank_index: int, now: int) -> None:
        """Re-attempt a policy-driven close after the commit horizon."""
        access_stamp = self._bank_last_access[bank_index]
        self._schedule_timeout(self._commit_horizon(bank_index),
                               bank_index, access_stamp)

    def _timeout_close(self, bank_index: int, access_stamp: int,
                       now: int) -> None:
        bank = self.banks[bank_index]
        if not bank.is_open:
            return
        if self._bank_last_access[bank_index] != access_stamp:
            return  # the row was touched again; a fresh timer is armed
        when = max(now, bank.earliest_precharge())
        if when >= self._commit_horizon(bank_index):
            self._defer_close(bank_index, now)
            return
        self._close(bank_index, bank, when)

    def _close(self, bank_index: int, bank: Bank, when: int) -> None:
        """Precharge the open row, honouring the episode's decision."""
        decision = self.episodes[bank_index]
        row = bank.open_row
        assert decision is not None and row is not None
        open_since = bank.last_act
        bank.precharge(when, decision.pre_timing,
                       counter_update=decision.counter_update)
        if self.tracer is not None:
            self.tracer.record(
                when, "PRE", self.subchannel, bank_index, row,
                "counter_update" if decision.counter_update else "",
                cu=decision.counter_update)
        self.policy.on_precharge(bank_index, row, when,
                                 decision.counter_update)
        self.policy.note_row_open(bank_index, row, when - open_since)
        self.episodes[bank_index] = None
        self._check_alert(when)

    # ------------------------------------------------------------------
    # Refresh and ALERT
    # ------------------------------------------------------------------
    def _refresh_collides_with_alert(self, now: int,
                                     banks: list[Bank]) -> int | None:
        """Stall end if an imminent RFM would overlap refresh execution.

        A refresh force-closes the open rows of ``banks``, dating the
        PREs at each bank's ``earliest_precharge()``; if the in-flight
        ALERT's RFM pops at or before the last such close, those PREs
        would land inside the ABO stall. The refresh is then re-run
        right after the stall instead (the tREFI cadence anchor is
        untouched — the refresh merely executes late, which the
        conformance oracle allows up to the stall bound).
        """
        if self._alert_deadline is None:
            return None
        close_by = now
        for bank in banks:
            if bank.is_open:
                close_by = max(close_by, bank.earliest_precharge())
        if close_by < self._alert_deadline:
            return None
        level = getattr(self.policy, "abo_level", 1)
        return self._alert_deadline + level * self.policy.timing.tALERT_RFM

    def _ref_event(self, now: int) -> None:
        retry = self._refresh_collides_with_alert(now, self.banks)
        if retry is not None:
            self._ref_horizon = retry
            self._schedule_ref(retry)
            return
        self.stats.refreshes += 1
        if self.tracer is not None:
            self.tracer.record(now, "REF", self.subchannel, -1, -1,
                               "all-bank")
        close_by = now
        for index, bank in enumerate(self.banks):
            if bank.is_open:
                when = max(now, bank.earliest_precharge())
                self._close(index, bank, when)
                close_by = max(close_by, when)
        ref_end = close_by + self.policy.timing.tRFC
        for bank in self.banks:
            bank.block_until(ref_end)
        self.policy.on_refresh(now)
        self._check_alert(now)
        self.next_ref += self.policy.timing.tREFI
        self._ref_horizon = self.next_ref
        self._schedule_ref(self.next_ref)
        for index in range(len(self.banks)):
            if self.queues[index]:
                self._kick(index, ref_end)

    def _refsb_event(self, now: int) -> None:
        """Same-bank refresh: one bank closed and blocked for tRFCsb."""
        retry = self._refresh_collides_with_alert(
            now, [self.banks[self._next_ref_bank]])
        if retry is not None:
            self._ref_horizon = retry
            self._schedule_refsb(retry)
            return
        self.stats.refreshes += 1
        index = self._next_ref_bank
        self._next_ref_bank = (index + 1) % len(self.banks)
        if self.tracer is not None:
            self.tracer.record(now, "REF", self.subchannel, index, -1,
                               "same-bank")
        bank = self.banks[index]
        start = now
        if bank.is_open:
            when = max(now, bank.earliest_precharge())
            self._close(index, bank, when)
            start = max(start, when)
        bank.block_until(start + self.policy.timing.tRFCsb)
        self.policy.on_refresh(now, bank=index)
        self._check_alert(now)
        # Cumulative cadence: the k-th REFsb fires at (k*tREFI)//banks,
        # so every full rotation lands exactly on a tREFI boundary.
        # Accumulating tREFI//banks instead would drop the integer-
        # division remainder each step and drift the refresh rate high.
        self._refsb_count += 1
        self.next_ref = ((self._refsb_count + 1) * self.policy.timing.tREFI
                         // len(self.banks))
        # catch-up after a deferral: the anchor may already have passed,
        # in which case the next REFsb runs immediately (at ``now``, not
        # at the stale anchor — events cannot execute in the past)
        self._ref_horizon = max(self.next_ref, now)
        self._schedule_refsb(self._ref_horizon)
        if self.queues[index]:
            self._kick(index, start + self.policy.timing.tRFCsb)

    def _check_alert(self, now: int) -> None:
        if self._alert_in_flight or not self.policy.alert_requested():
            return
        self._alert_in_flight = True
        if self.tracer is not None:
            causes = getattr(self.policy, "alert_causes", None)
            self.tracer.record(now, "ALERT", self.subchannel, -1, -1,
                               ",".join(sorted(causes)) if causes else "")
        deadline = now + self.policy.timing.tALERT_NORMAL
        self._alert_deadline = deadline
        self._schedule_rfm(deadline)

    def _rfm_event(self, now: int) -> None:
        level = getattr(self.policy, "abo_level", 1)
        end = now + level * self.policy.timing.tALERT_RFM
        scope = getattr(self.policy, "recovery_scope", "subchannel")
        recovery = (tuple(self.policy.alert_banks())
                    if scope == "bank" else None)
        if recovery is None:
            for bank in self.banks:
                bank.block_until(end)
        else:
            # bank-scoped recovery (PRACtical): only the banks the ALERT
            # named stall; their neighbours keep scheduling through the
            # RFM window
            for index in recovery:
                self.banks[index].block_until(end)
        for _ in range(level):
            if self.tracer is not None:
                if recovery is None:
                    self.tracer.record(now, "RFM", self.subchannel, -1, -1,
                                       "abo")
                else:
                    for index in recovery:
                        self.tracer.record(now, "RFM", self.subchannel,
                                           index, -1, "abo")
            self.policy.on_rfm(end)
        self.stats.alerts += 1
        self.stats.rfm_commands += \
            level * (1 if recovery is None else len(recovery))
        self._alert_in_flight = False
        self._alert_deadline = None
        self._check_alert(end)
        for index in range(len(self.banks)):
            if self.queues[index]:
                self._kick(index,
                           end if recovery is None or index in recovery
                           else now)
