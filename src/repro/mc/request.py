"""Memory requests flowing from cores to the memory controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..dram.commands import LineAddress

_request_ids = itertools.count()


def next_request_id() -> int:
    """Allocate a request id outside :class:`MemRequest`.

    The system uses this to track accesses that never reach DRAM (LLC
    hits) in the same core-side bookkeeping as real misses.
    """
    return next(_request_ids)


@dataclass
class MemRequest:
    """One LLC-miss request.

    ``arrival_ps`` is when it reaches the memory controller; the controller
    fills in ``completion_ps`` when the data burst finishes.
    """

    core: int
    address: LineAddress
    arrival_ps: int
    is_write: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completion_ps: int | None = None

    @property
    def subchannel(self) -> int:
        return self.address.subchannel

    @property
    def bank(self) -> int:
        return self.address.bank

    @property
    def row(self) -> int:
        return self.address.row

    @property
    def latency_ps(self) -> int:
        if self.completion_ps is None:
            raise ValueError("request not completed yet")
        return self.completion_ps - self.arrival_ps
