"""Reporters: human text and machine JSON for a :class:`LintRun`."""

from __future__ import annotations

import json

from .core import Finding, all_rules
from .engine import LintRun


def render_text(run: LintRun, verbose_hints: bool = True) -> str:
    """GCC-style ``path:line:col severity[rule] message`` listing."""
    out: list[str] = []
    for finding in run.errors + run.findings:
        out.append(f"{finding.path}:{finding.line}:{finding.col}: "
                   f"{finding.severity}[{finding.rule}] "
                   f"{finding.message}")
        if verbose_hints and finding.fix_hint:
            out.append(f"    hint: {finding.fix_hint}")
    out.append(render_summary(run))
    return "\n".join(out) + "\n"


def render_summary(run: LintRun) -> str:
    details = [f"{len(run.suppressed)} suppressed",
               f"{len(run.baselined)} baselined"]
    if run.stale_baseline:
        details.append(f"{run.stale_baseline} stale baseline "
                       f"entr{'y' if run.stale_baseline == 1 else 'ies'}")
    if run.errors:
        details.append(f"{len(run.errors)} unparseable file(s)")
    state = "clean" if run.clean else f"{len(run.findings)} finding(s)"
    return (f"repro.lint: {state} across {run.files} file(s) "
            f"({', '.join(details)})")


def render_json(run: LintRun) -> str:
    document = {
        "clean": run.clean,
        "files": run.files,
        "findings": [f.as_dict() for f in run.findings],
        "errors": [f.as_dict() for f in run.errors],
        "suppressed": [f.as_dict() for f in run.suppressed],
        "baselined": [f.as_dict() for f in run.baselined],
        "stale_baseline": run.stale_baseline,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_catalog() -> str:
    """The registered rule catalog (``--list-rules``)."""
    out: list[str] = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "all repro modules"
        if rule.exclude:
            scope += f" (except {', '.join(rule.exclude)})"
        out.append(f"{rule.id} [{rule.severity}]")
        out.append(f"    {rule.description}")
        out.append(f"    scope: {scope}")
        if rule.fix_hint:
            out.append(f"    fix: {rule.fix_hint}")
    return "\n".join(out) + "\n"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=Finding.sort_key)
