"""``stats-namespace``: registered metric names match the schema.

Every name handed to ``StatsRegistry.counter/gauge/histogram``, every
provider prefix handed to ``.register``/``register_stats``, and every
``SeriesBoard.register`` series must fall under a namespace declared in
:mod:`repro.obs.schema` — the same schema the
``docs/observability.md`` table is generated from, so code, docs, and
dashboards cannot drift apart silently.

Name literals are matched *shape-wise*: ``f"mc.{mc.subchannel}"``
checks as ``mc.{}`` against the ``mc.{sc}`` template. Sites whose
leading segment is dynamic (``f"{prefix}.latency_ps"`` in reusable
components that are mounted under a caller-chosen prefix) cannot be
resolved statically and are skipped — their mount points are the
checked sites.
"""

from __future__ import annotations

import ast

from ...obs import schema
from ..core import AstRule, RuleVisitor, register
from ..names import name_shape

#: method name -> index of the metric-name argument
NAME_ARG = {"counter": 0, "gauge": 0, "histogram": 0, "register": 0,
            "register_stats": 1}


class StatsVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        if not isinstance(node.func, ast.Attribute):
            return
        index = NAME_ARG.get(node.func.attr)
        if index is None:
            return
        name_node = self._name_argument(node, index)
        if name_node is None:
            return
        shape = name_shape(name_node)
        if shape is None or shape.startswith("{}"):
            return  # dynamically-prefixed: checked at the mount site
        if not schema.matches(shape):
            self.report(name_node,
                        f"metric name {shape!r} is outside every "
                        f"declared namespace (repro.obs.schema)")

    @staticmethod
    def _name_argument(node: ast.Call, index: int) -> ast.AST | None:
        if node.func.attr == "register":
            # the stats/series overload is register(<str-ish>, provider);
            # other register() methods (mitigation specs, handlers)
            # take non-string firsts and fall through here
            if len(node.args) != 2:
                return None
            candidate = node.args[0]
            if not isinstance(candidate, (ast.Constant, ast.JoinedStr)):
                return None
            return candidate
        if node.func.attr == "register_stats":
            for keyword in node.keywords:
                if keyword.arg == "prefix":
                    return keyword.value
            if len(node.args) > index:
                return node.args[index]
            return None
        if node.args:
            return node.args[0]
        return None


class StatsNamespace(AstRule):
    id = "stats-namespace"
    severity = "error"
    description = ("every registered metric / provider prefix / sampled "
                   "series name must match a namespace declared in "
                   "repro.obs.schema (docs/observability.md is "
                   "generated from it)")
    fix_hint = ("pick a name under an existing namespace, or declare "
                "the new namespace in repro.obs.schema and run "
                "python -m repro.obs.schema --write")
    exclude = ("repro.lint",)

    visitor = StatsVisitor


register(StatsNamespace())
