"""``rng-discipline``: all randomness flows through seeded handles.

Module-level ``random.*`` functions share one process-global generator:
any component drawing from it couples every other component's stream,
breaking the "one named stream per component" contract of
:mod:`repro.rng` (and with it seed replay, shrinking, and the
differential harness's identical-stream guarantee). The same goes for
the legacy ``numpy.random.*`` global state, and for unseeded
constructors (``random.Random()`` with no arguments seeds itself from
OS entropy).

Allowed: ``random.Random(seed)`` / ``rng.Random`` instances handed
around explicitly, and ``numpy.random.default_rng(seed)`` with an
explicit seed — both are exactly the "seeded handle" shape
:class:`repro.rng.RngFactory` produces.
"""

from __future__ import annotations

import ast

from ..core import AstRule, RuleVisitor, register
from ..names import dotted, import_aliases

#: Constructors that are fine *when given an explicit seed argument*.
SEEDED_CTORS = ("random.Random", "numpy.random.default_rng",
                "numpy.random.Generator", "numpy.random.SeedSequence",
                "numpy.random.PCG64")


class RngVisitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self.aliases = import_aliases(ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted(node.func, self.aliases)
        if name is not None:
            normalized = _normalize(name)
            if normalized in SEEDED_CTORS:
                if not node.args and not node.keywords:
                    self.report(node, f"{normalized}() without a seed "
                                      f"draws from OS entropy")
            elif normalized.startswith("random.") \
                    and normalized.count(".") == 1:
                self.report(node, f"module-level {normalized}() uses the "
                                  f"shared global generator")
            elif normalized.startswith("numpy.random."):
                self.report(node, f"{normalized}() uses numpy's global "
                                  f"RNG state")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for alias in node.names:
            origin = f"{node.module}.{alias.name}"
            normalized = _normalize(origin)
            if normalized.startswith(("random.", "numpy.random.")) \
                    and normalized not in SEEDED_CTORS:
                self.report(node, f"importing {origin} invites "
                                  f"global-RNG use")


def _normalize(name: str) -> str:
    if name == "np.random" or name.startswith("np.random."):
        return "numpy" + name[2:]
    return name


class RngDiscipline(AstRule):
    id = "rng-discipline"
    severity = "error"
    description = ("randomness must flow through seeded handles "
                   "(repro.rng streams, random.Random(seed), "
                   "numpy.random.default_rng(seed)) — never the shared "
                   "module-level random / numpy.random state")
    fix_hint = ("take an explicit rng parameter or derive one with "
                "repro.rng.RngFactory(seed).stream(name) / "
                "repro.rng.derive_seed(seed, name)")
    exclude = ("repro.rng", "repro.lint")

    visitor = RngVisitor


register(RngDiscipline())
