"""Rule modules; importing this package registers every shipped rule.

Registration order is report/catalog order. Adding a rule = adding a
module here plus fixtures under ``tests/lint/fixtures/<rule-id>/``
(the meta-test in ``tests/lint/test_meta.py`` enforces the corpus).
"""

from . import determinism    # noqa: F401
from . import rng            # noqa: F401
from . import env            # noqa: F401
from . import async_block    # noqa: F401
from . import stats          # noqa: F401
from . import completeness   # noqa: F401
from . import hygiene        # noqa: F401
