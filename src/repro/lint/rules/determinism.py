"""``determinism``: no wall-clock or OS-entropy reads in audited code.

The bit-identity guarantees (``REPRO_ENGINE=fast`` vs reference,
serial == parallel sweeps, replayable fuzz seeds) hold only if nothing
on a simulated path observes the host: no clock reads, no OS entropy,
no ``hash()``-order dependence (``PYTHONHASHSEED`` varies per process,
so builtin ``hash`` values — and any iteration order derived from them
— differ across the workers a parallel sweep forks).

Scope is every repro module except :mod:`repro.obs` — the telemetry
layer is *defined* to be wall-clock (spans, phase profiler, sampled
series) and proven zero-perturbation by ``repro.obs.selfcheck``
instead — and :mod:`repro.lint` itself. Host-facing code with
legitimate clock use (serve deadlines, engine wall-time metrics)
carries reasoned ``# repro: allow(determinism)`` waivers asserting the
value never reaches a result payload or cache key;
``tests/serve/test_clock_independence.py`` backs those words with a
regression test.
"""

from __future__ import annotations

import ast

from ..core import AstRule, RuleVisitor, register
from ..names import dotted, import_aliases

#: Clock and entropy reads that vary across runs/hosts.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read",
    "time.monotonic_ns": "clock read",
    "time.perf_counter": "clock read",
    "time.perf_counter_ns": "clock read",
    "time.process_time": "clock read",
    "time.process_time_ns": "clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/clock-derived id",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "hash": "builtin hash() varies with PYTHONHASHSEED across "
            "processes",
}

#: ``<datetime-ish>.now()/.utcnow()/.today()`` attribute tails.
CLOCK_METHODS = ("now", "utcnow", "today")


class DeterminismVisitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self.aliases = import_aliases(ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted(node.func, self.aliases)
        if name is not None:
            why = BANNED_CALLS.get(name)
            if why is not None:
                self.report(node, f"call to {name}() in deterministic "
                                  f"code ({why})")
            elif self._is_datetime_clock(name):
                self.report(node, f"call to {name}() in deterministic "
                                  f"code (wall-clock read)")
        self.generic_visit(node)

    @staticmethod
    def _is_datetime_clock(name: str) -> bool:
        head, _, tail = name.rpartition(".")
        return tail in CLOCK_METHODS and (
            head.startswith("datetime") or head in ("date", "time"))


class Determinism(AstRule):
    id = "determinism"
    severity = "error"
    description = ("no wall-clock, OS-entropy, or hash()-order reads in "
                   "deterministic code — the bit-identity contracts "
                   "(docs/verification.md) depend on it")
    fix_hint = ("derive times from sim.elapsed_ps and randomness from a "
                "seeded repro.rng stream; genuinely host-facing sites "
                "(telemetry, poll deadlines) take a reasoned "
                "'# repro: allow(determinism)' that the value never "
                "reaches results or cache keys")
    exclude = ("repro.obs", "repro.lint")

    visitor = DeterminismVisitor


register(Determinism())
