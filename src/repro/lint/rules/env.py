"""``env-discipline``: ``os.environ`` only inside :mod:`repro.exec.env`.

Ad-hoc environment reads are how knob regressions shipped historically
(``REPRO_WORKERS=0`` silently clamped, ``REPRO_SERIAL=0`` *enabling*
serial mode): a raw ``os.environ.get`` has no validation, no error
message naming the variable, and no single place documenting the knob.
All access — reads *and* writes — goes through the strict parsers in
:mod:`repro.exec.env` (``env_int`` / ``env_flag`` / ``env_choice`` /
``env_str`` / ``set_knob``), which fail loudly on malformed values.

This rule ships with **zero baseline entries**: every direct read
outside the parser module was rerouted when the rule landed.
"""

from __future__ import annotations

import ast

from ..core import AstRule, RuleVisitor, register
from ..names import dotted, import_aliases

#: Every spelling of environment access.
BANNED = {
    "os.environ": "direct os.environ access",
    "os.environb": "direct os.environb access",
    "os.getenv": "os.getenv() bypasses the strict knob parsers",
    "os.getenvb": "os.getenvb() bypasses the strict knob parsers",
    "os.putenv": "os.putenv() bypasses repro.exec.env.set_knob",
    "os.unsetenv": "os.unsetenv() bypasses repro.exec.env.set_knob",
}


class EnvVisitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self.aliases = import_aliases(ctx.tree)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted(node, self.aliases)
        if name in BANNED:
            self.report(node, BANNED[name])
            return  # don't double-report nested pieces
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        name = self.aliases.get(node.id)
        if name in BANNED:
            self.report(node, f"{BANNED[name]} (imported as "
                              f"{node.id!r})")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module != "os":
            return
        for alias in node.names:
            if f"os.{alias.name}" in BANNED:
                self.report(node, f"importing os.{alias.name} invites "
                                  f"unparsed environment access")


class EnvDiscipline(AstRule):
    id = "env-discipline"
    severity = "error"
    description = ("os.environ is read and written only by the strict "
                   "knob parsers in repro.exec.env — everywhere else a "
                   "typo'd knob must fail loudly, not silently "
                   "misbehave")
    fix_hint = ("use repro.exec.env: env_int/env_flag/env_choice/env_str "
                "to read, set_knob to write; add a parser there for any "
                "new knob")
    exclude = ("repro.exec.env", "repro.lint")

    visitor = EnvVisitor


register(EnvDiscipline())
