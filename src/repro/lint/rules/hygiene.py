"""``suppression-hygiene``: every waiver is well-formed and accountable.

A suppression is a standing exception to a safety rule; one that is
malformed (silently matching nothing), names a rule that does not
exist (typo'd, or outliving a renamed rule), or carries no reason is
unreviewable debt. This meta-rule turns each of those into a finding
of its own, so the waiver surface stays exactly as auditable as the
violations it covers.
"""

from __future__ import annotations

from .. import suppress
from ..core import FileContext, Finding, Rule, register


class SuppressionHygiene(Rule):
    id = "suppression-hygiene"
    severity = "error"
    description = ("every '# repro:' comment parses as "
                   "'allow(<rule-id>) — reason', names only registered "
                   "rules, and carries a non-empty reason")
    fix_hint = ("write '# repro: allow(<rule-id>) — <why this waiver "
                "is sound>'; see docs/static-analysis.md")
    exclude = ("repro.lint",)

    def check_file(self, ctx: FileContext) -> list[Finding]:
        from ..core import rule_ids
        known = set(rule_ids())
        findings: list[Finding] = []

        def fail(line: int, message: str) -> None:
            findings.append(Finding(
                rule=self.id, path=ctx.rel, line=line, col=0,
                severity=self.severity, fix_hint=self.fix_hint,
                message=message, snippet=ctx.line_text(line)))

        waivers, broken = suppress.scan(ctx.lines)
        for problem in broken:
            fail(problem.line, problem.problem)
        for waiver in waivers:
            for rule_id in sorted(waiver.rules - known):
                fail(waiver.line,
                     f"allow({rule_id}) names an unregistered rule "
                     f"(known: {', '.join(sorted(known))})")
        return findings


register(SuppressionHygiene())
