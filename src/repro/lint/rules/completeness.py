"""``registry-completeness``: every mitigation ships its safety net.

Registering a design in :mod:`repro.mitigations.registry` promises the
full verification stack (differential run, fuzzer, contract suite —
see ``docs/mitigations.md``). This repo-level rule proves the promise
structurally for every ``register(MitigationSpec(name=...))`` entry:

* **contract coverage** — ``tests/mitigations/test_contract.py``
  parametrizes over ``registry.names()``/``registry.specs()`` (full
  coverage by construction) or names the design literally;
* **seed corpus** — a replay directory exists under
  ``tests/check/seeds/<name>/`` (``make check`` replays it);
* **docs row** — ``docs/mitigations.md`` mentions the design.

It also reports the reverse drift: a seed-corpus directory for a
design no longer in the registry is stale and must be deleted or the
design re-registered.
"""

from __future__ import annotations

import ast
import pathlib
import re

from ..core import Finding, RepoContext, Rule, register

REGISTRY = pathlib.PurePosixPath("src/repro/mitigations/registry.py")
CONTRACT = pathlib.PurePosixPath("tests/mitigations/test_contract.py")
SEEDS = pathlib.PurePosixPath("tests/check/seeds")
DOCS = pathlib.PurePosixPath("docs/mitigations.md")


def registered_designs(tree: ast.Module) -> list[tuple[str, int]]:
    """``(name, line)`` of every ``register(MitigationSpec(name=...))``."""
    designs: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register" and node.args):
            continue
        spec = node.args[0]
        if not (isinstance(spec, ast.Call)
                and isinstance(spec.func, ast.Name)
                and spec.func.id == "MitigationSpec"):
            continue
        for keyword in spec.keywords:
            if keyword.arg == "name" \
                    and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                designs.append((keyword.value.value, node.lineno))
    return designs


def _contract_coverage(path: pathlib.Path) -> tuple[bool, set[str]]:
    """(covers-whole-registry?, literally-named designs)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return False, set()
    dynamic = False
    literals: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("names", "specs") \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "registry":
            dynamic = True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            literals.add(node.value)
    return dynamic, literals


class RegistryCompleteness(Rule):
    id = "registry-completeness"
    severity = "error"
    description = ("every repro.mitigations.registry entry has contract-"
                   "suite coverage, a seed corpus under "
                   "tests/check/seeds/<name>/, and a docs/mitigations.md "
                   "row; stale seed corpora are flagged too")
    fix_hint = ("new design: add a seeds directory (python -m "
                "repro.check.driver --grow, see docs/verification.md) "
                "and a docs row; removed design: delete its corpus")

    def check_repo(self, repo: RepoContext) -> list[Finding]:
        registry_path = repo.root / REGISTRY
        if not registry_path.is_file():
            return []  # not a repo with a mitigation registry
        try:
            tree = ast.parse(registry_path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError) as error:
            return [Finding(rule=self.id, path=str(REGISTRY), line=1,
                            col=0, severity=self.severity,
                            fix_hint=self.fix_hint,
                            message=f"cannot parse registry: {error}")]
        designs = registered_designs(tree)
        dynamic, literals = _contract_coverage(repo.root / CONTRACT)
        docs_text = _read(repo.root / DOCS)
        lines = _read(registry_path).splitlines()

        findings: list[Finding] = []

        def fail(line: int, message: str) -> None:
            snippet = lines[line - 1] if 0 < line <= len(lines) else ""
            findings.append(Finding(
                rule=self.id, path=str(REGISTRY), line=line, col=0,
                severity=self.severity, fix_hint=self.fix_hint,
                message=message, snippet=snippet))

        for name, line in designs:
            if not (repo.root / SEEDS / name).is_dir():
                fail(line, f"mitigation {name!r} has no seed corpus "
                           f"under {SEEDS}/{name}/")
            if not re.search(rf"(?<![\w-]){re.escape(name)}(?![\w-])",
                             docs_text):
                fail(line, f"mitigation {name!r} has no row in {DOCS}")
            if not dynamic and name not in literals:
                fail(line, f"mitigation {name!r} is not exercised by "
                           f"{CONTRACT}")

        known = {name for name, _ in designs}
        seeds_root = repo.root / SEEDS
        if seeds_root.is_dir():
            for entry in sorted(seeds_root.iterdir()):
                if entry.is_dir() and entry.name not in known:
                    findings.append(Finding(
                        rule=self.id, path=str(SEEDS / entry.name),
                        line=1, col=0, severity=self.severity,
                        fix_hint=self.fix_hint,
                        message=f"stale seed corpus: {entry.name!r} is "
                                f"not in the mitigation registry"))
        return findings


def _read(path: pathlib.Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError:
        return ""


register(RegistryCompleteness())
