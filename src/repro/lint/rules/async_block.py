"""``async-blocking``: no synchronous stalls inside ``async def``.

The serve daemon is a single event loop; one blocking call in a
coroutine stalls *every* job, heartbeat sample, and API response at
once (the priority queue, per-job timeouts, and graceful drain all
assume the loop keeps turning). Blocking work belongs in the process
pool (``PointRunner``) or behind ``asyncio.to_thread``.

Flagged inside the *nearest enclosing* ``async def`` only — a sync
helper defined within a coroutine runs wherever it is called, so it is
judged at its call sites, not its definition site.
"""

from __future__ import annotations

import ast

from ..core import AstRule, RuleVisitor, register
from ..names import dotted, import_aliases

#: Calls that park the event loop.
BLOCKING_CALLS = {
    "time.sleep": "use 'await asyncio.sleep(...)'",
    "open": "do file IO before the loop starts, or in a worker "
            "(asyncio.to_thread)",
    "input": "the daemon has no tty",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.getoutput": "use asyncio.create_subprocess_exec",
    "subprocess.getstatusoutput": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "os.system": "use asyncio.create_subprocess_exec",
    "os.popen": "use asyncio.create_subprocess_exec",
    "os.waitpid": "await the process instead",
    "socket.create_connection": "use asyncio.open_connection",
}

#: Blocking *methods* recognizable by attribute name alone.
BLOCKING_METHODS = {
    "read_text": "pathlib IO blocks the loop",
    "write_text": "pathlib IO blocks the loop",
    "read_bytes": "pathlib IO blocks the loop",
    "write_bytes": "pathlib IO blocks the loop",
}


class AsyncBlockingVisitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self.aliases = import_aliases(ctx.tree)
        self._stack: list[bool] = []  # True = async frame

    # -- frame tracking ----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(False)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(True)
        self.generic_visit(node)
        self._stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._stack.append(False)
        self.generic_visit(node)
        self._stack.pop()

    # -- the check ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._stack and self._stack[-1]:
            name = dotted(node.func, self.aliases)
            if name in BLOCKING_CALLS:
                self.report(node, f"blocking {name}() inside async def "
                                  f"— {BLOCKING_CALLS[name]}")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in BLOCKING_METHODS:
                self.report(node, f"blocking .{node.func.attr}() inside "
                                  f"async def — "
                                  f"{BLOCKING_METHODS[node.func.attr]}")
        self.generic_visit(node)


class AsyncBlocking(AstRule):
    id = "async-blocking"
    severity = "error"
    description = ("no time.sleep / sync file IO / subprocess calls "
                   "inside async def bodies — one blocking call stalls "
                   "every job the daemon is serving")
    fix_hint = ("await the asyncio equivalent, move the work into the "
                "process pool, or wrap it in asyncio.to_thread")
    scope = ("repro.serve", "repro.fabric")

    visitor = AsyncBlockingVisitor


register(AsyncBlocking())
