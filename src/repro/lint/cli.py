"""``python -m repro.lint``: the CI gate and developer entry point.

Exit status 0 means every invariant holds (no unsuppressed,
unbaselined findings and every input parsed); anything else is 1.
``make lint`` runs the default form — repo root auto-detected from
this file's location, target ``src/repro``, baseline
``lint-baseline.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .baseline import DEFAULT_NAME, Baseline
from .core import all_rules, get_rule
from .engine import lint_paths
from .report import render_catalog, render_json, render_text


def default_root() -> pathlib.Path:
    """The repo checkout this installed package lives in.

    ``src/repro/lint/cli.py`` → three parents up. Falls back to the
    working directory when the package is imported from site-packages
    (no ``src`` layout above it).
    """
    here = pathlib.Path(__file__).resolve()
    candidate = here.parents[3]
    if candidate.name == "src":
        candidate = candidate.parent
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return pathlib.Path.cwd()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant linter for the repro codebase "
                    "(see docs/static-analysis.md).")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to lint "
                             "(default: <root>/src/repro)")
    parser.add_argument("--root", type=pathlib.Path, default=None,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report all findings)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--no-repo-rules", action="store_true",
                        help="skip cross-file rules "
                             "(registry-completeness)")
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(render_catalog())
        return 0

    root = (args.root or default_root()).resolve()
    paths = [p if p.is_absolute() else root / p for p in args.paths] \
        or [root / "src" / "repro"]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    rules = None
    if args.rules:
        try:
            rules = [get_rule(rule_id.strip())
                     for rule_id in args.rules.split(",") if rule_id.strip()]
        except KeyError as error:
            parser.error(str(error))

    baseline_path = args.baseline or root / DEFAULT_NAME
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as error:
            parser.error(f"bad baseline: {error}")

    run = lint_paths(paths, root=root, rules=rules,
                     baseline=Baseline() if args.update_baseline
                     else baseline,
                     repo_rules=not args.no_repo_rules)

    if args.update_baseline:
        Baseline.from_findings(run.findings).write(baseline_path)
        sys.stdout.write(f"wrote {len(run.findings)} entr"
                         f"{'y' if len(run.findings) == 1 else 'ies'} "
                         f"to {baseline_path}\n")
        return 0

    writer = render_json if args.format == "json" else render_text
    sys.stdout.write(writer(run))
    return 0 if run.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
