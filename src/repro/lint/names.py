"""Best-effort static name resolution for rule visitors.

The rules reason about *dotted names* — ``time.perf_counter``,
``os.environ``, ``numpy.random.default_rng`` — regardless of how the
source spells them (``import time``, ``from time import perf_counter``,
``import numpy as np``). :func:`import_aliases` collects one flat
``local name -> canonical dotted name`` map per module;
:func:`dotted` folds an expression back to its canonical form through
that map, returning ``None`` for anything dynamic (subscripts, calls,
attribute chains rooted in non-names).

Resolution is intentionally shallow: it never follows assignments
(``t = time; t.time()`` escapes), which keeps it sound on real code at
the cost of an obvious loophole the code-review culture covers. Every
rule built on it therefore *under*-approximates — no false positives
from dynamic tricks, by construction.
"""

from __future__ import annotations

import ast


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map every imported local name to its canonical dotted origin.

    ``import numpy as np``            → ``{"np": "numpy"}``
    ``import numpy.random``           → ``{"numpy": "numpy"}``
    ``from os import environ as env`` → ``{"env": "os.environ"}``

    Function-local imports count too (the simulator's lazy imports are
    exactly the ones worth auditing), hence the full walk.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # "import a.b" binds "a"
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay package-local
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of an expression, or ``None`` if dynamic."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = dotted(node.value, aliases)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def name_shape(node: ast.AST) -> str | None:
    """Static shape of a (possibly formatted) string literal.

    ``"mc.latency"`` → ``"mc.latency"``; ``f"mc.{sc}.bank"`` →
    ``"mc.{}.bank"`` (each interpolation collapses to ``{}``); anything
    non-literal → ``None``. The stats-namespace rule matches these
    shapes against the metric schema's ``{placeholder}`` segments.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value,
                                                              str):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    return None
