"""Rule model and registry for the invariant linter.

A :class:`Rule` bundles an id, a severity, a visitor (or a repo-level
check), and a fix-hint. Rules register themselves into a module-level
registry at import time (:mod:`repro.lint.rules` imports every rule
module), mirroring how :mod:`repro.mitigations.registry` discovers
designs: the engine, the CLI, the fixture-corpus tests, and the docs
catalog all iterate :func:`all_rules` instead of hard-coding lists.

Two rule shapes coexist:

* **file rules** (:class:`AstRule`) — an :class:`ast.NodeVisitor`
  subclass run over every in-scope file's tree;
* **repo rules** — override :meth:`Rule.check_repo` to audit
  cross-file invariants (the mitigation registry vs its seed corpora,
  docs rows, and contract coverage).

Scoping is by dotted module name (``repro.sim.runner``), derived from
the file's path under ``src/`` or overridden with a
``# repro-lint-module: <name>`` comment (how the fixture corpus under
``tests/lint/fixtures/`` claims an audited package).
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import pathlib

#: Valid finding severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # repo-root-relative, posix separators
    line: int          # 1-based
    col: int           # 0-based
    message: str
    severity: str = "error"
    fix_hint: str = ""
    snippet: str = ""  # the source line, for fingerprints and reports

    @property
    def fingerprint(self) -> str:
        """Stable id for baselining: survives pure line-number drift.

        Hashes (rule, path, stripped source line) — moving a violation
        within its file keeps it baselined; editing the offending line
        re-surfaces it.
        """
        blob = f"{self.rule}:{self.path}:{self.snippet.strip()}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "severity": self.severity,
            "message": self.message, "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
        }


@dataclasses.dataclass
class FileContext:
    """One parsed source file, as handed to file rules."""

    path: pathlib.Path       # absolute
    rel: str                 # repo-root-relative, posix
    module: str | None       # dotted name, None when not a repro module
    source: str
    lines: list[str]
    tree: ast.Module

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclasses.dataclass(frozen=True)
class RepoContext:
    """Repository root, as handed to repo-level rules."""

    root: pathlib.Path


class Rule:
    """Base rule: id, severity, description, fix-hint, module scope."""

    id: str = ""
    severity: str = "error"
    description: str = ""
    fix_hint: str = ""
    #: module prefixes the rule audits (None: every repro module)
    scope: tuple[str, ...] | None = None
    #: module prefixes exempt from the rule
    exclude: tuple[str, ...] = ()

    def applies_to(self, module: str | None) -> bool:
        if module is None:
            return False
        if any(_covers(prefix, module) for prefix in self.exclude):
            return False
        if self.scope is None:
            return True
        return any(_covers(prefix, module) for prefix in self.scope)

    def check_file(self, ctx: FileContext) -> list[Finding]:
        return []

    def check_repo(self, repo: RepoContext) -> list[Finding]:
        return []

    # -- helpers for subclasses -------------------------------------------
    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(rule=self.id, path=ctx.rel, line=line,
                       col=getattr(node, "col_offset", 0),
                       message=message, severity=self.severity,
                       fix_hint=self.fix_hint,
                       snippet=ctx.line_text(line))


def _covers(prefix: str, module: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


class RuleVisitor(ast.NodeVisitor):
    """AST visitor collecting findings for one (rule, file) pair."""

    def __init__(self, rule: Rule, ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.ctx, node, message))


class AstRule(Rule):
    """A rule implemented as a :class:`RuleVisitor` subclass."""

    visitor: type[RuleVisitor]

    def check_file(self, ctx: FileContext) -> list[Finding]:
        walker = self.visitor(self, ctx)
        walker.visit(ctx.tree)
        return walker.findings


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (registration order is report order)."""
    if not rule.id:
        raise ValueError(f"{type(rule).__name__} has no id")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{rule.id}: bad severity {rule.severity!r}")
    if rule.id in _REGISTRY:
        raise ValueError(f"lint rule {rule.id!r} already registered")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    from . import rules as _rules  # noqa: F401  (registration side effect)
    return tuple(_REGISTRY.values())


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in all_rules())


def get_rule(rule_id: str) -> Rule:
    all_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule_id!r}; registered: "
                       f"{', '.join(_REGISTRY)}") from None
