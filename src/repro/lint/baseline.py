"""Committed baseline of grandfathered findings.

The baseline lets a new rule land *enforcing* — ``make lint`` fails on
any finding not explicitly grandfathered — without blocking on fixing
every historical violation in the same change. Entries are
:attr:`~repro.lint.core.Finding.fingerprint`\\ s (rule + path + source
line), so pure line-number drift keeps an entry matched while touching
the offending line re-surfaces it.

The file is JSON, committed at the repo root (``lint-baseline.json``),
and is expected to shrink: ``python -m repro.lint --update-baseline``
rewrites it from the current findings, and stale entries (baselined
violations that no longer occur) are reported so they get pruned.

This repo ships an **empty** baseline — every violation the six rules
flushed out was fixed, not grandfathered — but the machinery is load-
bearing for future rules (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

import collections
import json
import pathlib

from .core import Finding

#: Default baseline location, relative to the repo root.
DEFAULT_NAME = "lint-baseline.json"

VERSION = 1


class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: list[dict] | None = None):
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return cls()
        data = json.loads(raw)
        if not isinstance(data, dict) or data.get("version") != VERSION:
            raise ValueError(f"{path}: not a version-{VERSION} lint "
                             f"baseline")
        entries = data.get("entries")
        if not isinstance(entries, list):
            raise ValueError(f"{path}: 'entries' must be a list")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = [{
            "rule": f.rule, "path": f.path,
            "fingerprint": f.fingerprint, "message": f.message,
        } for f in sorted(findings, key=Finding.sort_key)]
        return cls(entries)

    def write(self, path: pathlib.Path) -> None:
        document = {"version": VERSION, "entries": self.entries}
        path.write_text(json.dumps(document, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")

    def partition(self, findings: list[Finding]
                  ) -> tuple[list[Finding], list[Finding], int]:
        """Split findings into (new, grandfathered); count stale entries.

        Matching is a multiset: two identical violations need two
        baseline entries. The stale count is how many entries matched
        nothing — violations that have since been fixed.
        """
        budget = collections.Counter(entry["fingerprint"]
                                     for entry in self.entries)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        stale = sum(budget.values())
        return fresh, grandfathered, stale

    def rules(self) -> collections.Counter:
        """Baseline entries per rule id (the debt ledger)."""
        return collections.Counter(entry["rule"] for entry in self.entries)
