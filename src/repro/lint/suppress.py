"""Inline suppression comments: ``# repro: allow(<rule-id>) — reason``.

A suppression waives named rules on its own line and on the line
directly below it (so a comment can sit above a long statement). The
reason is **mandatory** — a waiver that cannot say why it exists is a
finding itself (the ``suppression-hygiene`` rule) — and stays in the
source as reviewable documentation:

    deadline = time.monotonic() + timeout_s  \
        # repro: allow(determinism) — client poll deadline, never in results

Multiple rules separate with commas: ``allow(determinism,env-discipline)``.
"""

from __future__ import annotations

import dataclasses
import re

#: Any comment claiming to speak the suppression protocol.
MARKER = re.compile(r"#\s*repro:\s*(?P<body>.*)$")

#: The well-formed body: allow(<ids>) <separator> <reason>.
ALLOW = re.compile(
    r"^allow\(\s*(?P<rules>[a-z0-9][a-z0-9,\s-]*)\)\s*"
    r"(?:—|--|:)?\s*(?P<reason>.*)$")


@dataclasses.dataclass
class Suppression:
    """One parsed ``allow`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule_id: str, line: int) -> bool:
        return rule_id in self.rules and line in (self.line, self.line + 1)


@dataclasses.dataclass(frozen=True)
class Malformed:
    """A ``# repro:`` comment that failed to parse, with the cause."""

    line: int
    problem: str


def scan(lines: list[str]) -> tuple[list[Suppression], list[Malformed]]:
    """Extract suppressions (and protocol misuse) from source lines."""
    found: list[Suppression] = []
    broken: list[Malformed] = []
    for lineno, text in enumerate(lines, start=1):
        marker = MARKER.search(text)
        if marker is None:
            continue
        body = marker.group("body").strip()
        match = ALLOW.match(body)
        if match is None:
            broken.append(Malformed(
                lineno, f"cannot parse {body!r}: expected "
                        f"'allow(<rule-id>) — reason'"))
            continue
        rules = frozenset(part.strip()
                          for part in match.group("rules").split(",")
                          if part.strip())
        reason = match.group("reason").strip()
        if not rules:
            broken.append(Malformed(lineno, "allow() names no rules"))
            continue
        if not reason:
            broken.append(Malformed(
                lineno, "suppression carries no reason — say why the "
                        "waiver is sound"))
            continue
        found.append(Suppression(lineno, rules, reason))
    return found, broken


def covering(suppressions: list[Suppression], rule_id: str,
             line: int) -> Suppression | None:
    """The suppression waiving ``rule_id`` at ``line``, if any."""
    for suppression in suppressions:
        if suppression.covers(rule_id, line):
            return suppression
    return None
