"""Lint orchestration: walk files, run rules, apply waivers + baseline.

One :func:`lint_paths` call is one lint run:

1. collect ``*.py`` files from the target paths (skipping
   ``__pycache__``), parse each once, and resolve its dotted module
   name — from its location under ``src/`` or from an explicit
   ``# repro-lint-module:`` override (the fixture corpus);
2. run every in-scope file rule's visitor over each tree, and every
   repo rule once against the repo root;
3. drop findings covered by an inline ``# repro: allow(...)`` waiver
   (suppressions apply to repo-rule findings too, via the file they
   anchor in);
4. partition the survivors through the committed baseline.

The result is a :class:`LintRun`; ``run.findings`` is what fails CI.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re

from . import suppress
from .baseline import Baseline
from .core import (FileContext, Finding, RepoContext, Rule, all_rules)

#: Fixture files claim an audited module with this comment (first lines).
MODULE_OVERRIDE = re.compile(r"#\s*repro-lint-module:\s*([\w.]+)")


@dataclasses.dataclass
class LintRun:
    """Outcome of one lint invocation."""

    findings: list[Finding]        # actionable: unsuppressed, unbaselined
    suppressed: list[Finding]
    baselined: list[Finding]
    stale_baseline: int
    files: int
    errors: list[Finding]          # unreadable / unparseable inputs

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def module_for(path: pathlib.Path, root: pathlib.Path,
               source: str) -> str | None:
    """Dotted module name for ``path``, or ``None`` (not a repro module).

    ``<root>/src/repro/sim/runner.py`` → ``repro.sim.runner``;
    ``__init__.py`` names its package. Files elsewhere are anonymous
    unless their first lines carry ``# repro-lint-module: <name>`` —
    which is how the fixture corpus opts into an audited scope.
    """
    for line in source.splitlines()[:5]:
        match = MODULE_OVERRIDE.search(line)
        if match:
            return match.group(1)
    try:
        parts = list(path.relative_to(root).parts)
    except ValueError:
        return None
    if parts[:1] == ["src"]:
        parts = parts[1:]
    if not parts or parts[0] != "repro":
        return None
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1].removesuffix(".py")
    return ".".join(parts)


def _collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts))
        else:
            files.append(path)
    return files


def _load(path: pathlib.Path, root: pathlib.Path
          ) -> tuple[FileContext | None, Finding | None]:
    rel = _rel(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError) as error:
        line = getattr(error, "lineno", 1) or 1
        return None, Finding(
            rule="parse", path=rel, line=line, col=0,
            message=f"cannot lint: {type(error).__name__}: {error}")
    ctx = FileContext(path=path, rel=rel,
                      module=module_for(path, root, source),
                      source=source, lines=source.splitlines(), tree=tree)
    return ctx, None


def _rel(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: list[pathlib.Path], root: pathlib.Path,
               rules: list[Rule] | None = None,
               baseline: Baseline | None = None,
               repo_rules: bool = True) -> LintRun:
    """Lint ``paths`` (files or directories) against ``rules``."""
    active = list(rules) if rules is not None else list(all_rules())
    baseline = baseline or Baseline()
    raw: list[Finding] = []
    suppressed: list[Finding] = []
    errors: list[Finding] = []
    suppressions_by_rel: dict[str, list[suppress.Suppression]] = {}

    files = _collect_files([pathlib.Path(p) for p in paths])
    for path in files:
        ctx, failure = _load(path, root)
        if failure is not None:
            errors.append(failure)
            continue
        waivers, _ = suppress.scan(ctx.lines)
        suppressions_by_rel[ctx.rel] = waivers
        for rule in active:
            if not rule.applies_to(ctx.module):
                continue
            for finding in rule.check_file(ctx):
                if suppress.covering(waivers, finding.rule, finding.line):
                    suppressed.append(finding)
                else:
                    raw.append(finding)

    if repo_rules:
        repo = RepoContext(root=pathlib.Path(root))
        for rule in active:
            for finding in rule.check_repo(repo):
                waivers = _waivers_for(finding.path, root,
                                       suppressions_by_rel)
                if suppress.covering(waivers, finding.rule, finding.line):
                    suppressed.append(finding)
                else:
                    raw.append(finding)

    raw.sort(key=Finding.sort_key)
    fresh, grandfathered, stale = baseline.partition(raw)
    return LintRun(findings=fresh, suppressed=suppressed,
                   baselined=grandfathered, stale_baseline=stale,
                   files=len(files), errors=errors)


def _waivers_for(rel: str, root: pathlib.Path,
                 cache: dict[str, list[suppress.Suppression]]
                 ) -> list[suppress.Suppression]:
    """Suppressions of the file a repo-rule finding anchors in."""
    if rel not in cache:
        path = pathlib.Path(root) / rel
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        cache[rel], _ = suppress.scan(lines)
    return cache[rel]


def lint_source(source: str, module: str,
                rules: list[Rule] | None = None,
                rel: str = "<memory>") -> LintRun:
    """Lint one in-memory module (tests and tooling).

    Runs file rules only; repo rules need a tree on disk — point
    :func:`lint_paths` (or the rule's ``check_repo``) at a root.
    """
    active = list(rules) if rules is not None else list(all_rules())
    tree = ast.parse(source)
    ctx = FileContext(path=pathlib.Path(rel), rel=rel, module=module,
                      source=source, lines=source.splitlines(), tree=tree)
    waivers, _ = suppress.scan(ctx.lines)
    fresh: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx.module):
            continue
        for finding in rule.check_file(ctx):
            if suppress.covering(waivers, finding.rule, finding.line):
                suppressed.append(finding)
            else:
                fresh.append(finding)
    fresh.sort(key=Finding.sort_key)
    return LintRun(findings=fresh, suppressed=suppressed, baselined=[],
                   stale_baseline=0, files=1, errors=[])
