"""Static enforcement of the repo's reproducibility contracts.

``repro.lint`` is a stdlib-only, AST-visitor-based linter that proves —
at ``make lint`` time, over *all* code paths — the invariants the
dynamic layers (conformance oracle, differential harness, fuzzer) can
only spot-check after the fact:

* **determinism** — no wall-clock or OS-entropy reads inside the
  simulation core (``docs/verification.md``'s bit-identity claims);
* **rng-discipline** — all randomness flows through seeded
  :mod:`repro.rng` handles, never module-level ``random``;
* **env-discipline** — ``os.environ`` is only touched by the strict
  knob parsers in :mod:`repro.exec.env`;
* **async-blocking** — no blocking calls inside ``async def`` bodies
  in the serve daemon;
* **stats-namespace** — every registered metric name matches the
  declared schema in :mod:`repro.obs.schema` (``docs/observability.md``
  is generated from the same source);
* **registry-completeness** — every mitigation in
  :mod:`repro.mitigations.registry` has contract-suite coverage, a
  seed corpus, and a docs row;
* **suppression-hygiene** — every inline waiver is well-formed, names
  a real rule, and carries a reason.

Findings are waived inline (``# repro: allow(<rule-id>) — reason``) or
grandfathered in the committed ``lint-baseline.json``; the CLI is
``python -m repro.lint`` (wired into ``make ci`` as ``make lint``).
See ``docs/static-analysis.md`` for the rule catalog and workflow.
"""

from .baseline import Baseline
from .core import (Finding, FileContext, RepoContext, Rule, AstRule,
                   RuleVisitor, all_rules, get_rule, register)
from .engine import LintRun, lint_paths, lint_source

__all__ = [
    "Baseline", "Finding", "FileContext", "RepoContext", "Rule",
    "AstRule", "RuleVisitor", "all_rules", "get_rule", "register",
    "LintRun", "lint_paths", "lint_source",
]
