"""Configuration serialisation (artifact parity).

The paper's artifact generates DRAMsim3 ``.ini`` files with
``config_dramsim3/prac/make_ini.py`` and drives evaluations from them.
Our equivalent: any :class:`~repro.sim.runner.DesignPoint` (plus the
derived DRAM/system configuration) round-trips through the same INI
format, so experiment configurations are inspectable, diffable files
rather than Python snippets.

Sections:

* ``[design]`` — workload, design, T_RH and the mitigation knobs,
* ``[dram]``  — geometry, in the artifact's naming style,
* ``[timing]`` — the resolved base timing set in nanoseconds,
* ``[system]`` — core-side parameters.
"""

from __future__ import annotations

import configparser
import dataclasses
import io

from .config import SystemConfig
from .sim.runner import DesignPoint, build_config
from .units import to_ns


def design_point_to_ini(point: DesignPoint) -> str:
    """Render a design point (and its derived config) as INI text."""
    config = build_config(point)
    parser = configparser.ConfigParser()
    parser["design"] = {
        "workload": point.workload,
        "design": point.design,
        "trh": str(point.trh),
        "instructions": str(point.instructions),
        "seed": str(point.seed),
        "page_policy": point.page_policy,
        "chips": str(point.chips),
        "srq_size": str(point.srq_size),
        "drain_on_ref": ("auto" if point.drain_on_ref is None
                         else str(point.drain_on_ref)),
        "p": "auto" if point.p is None else repr(point.p),
        "rows_per_bank": str(point.rows_per_bank),
        "refresh_scale": repr(point.refresh_scale),
        "rowpress": str(point.rowpress),
        "sampler": point.sampler,
        "abo_level": str(point.abo_level),
        "refresh_mode": point.refresh_mode,
    }
    dram = config.dram
    parser["dram"] = {
        "subchannels": str(dram.subchannels),
        "banks_per_subchannel": str(dram.banks_per_subchannel),
        "rows_per_bank": str(dram.rows_per_bank),
        "row_bytes": str(dram.row_bytes),
        "line_bytes": str(dram.line_bytes),
        "mop_lines": str(dram.mop_lines),
        "chips_per_subchannel": str(dram.chips_per_subchannel),
    }
    timing = dram.timing
    parser["timing"] = {
        name.lower(): repr(to_ns(getattr(timing, name)))
        for name in ("tRCD", "tRP", "tRAS", "tRC", "tREFW", "tREFI",
                     "tRFC", "tCAS", "tBURST", "tRRD", "tFAW", "tWR")
    }
    parser["system"] = {
        "cores": str(config.cores),
        "core_ghz": repr(config.core_ghz),
        "issue_width": str(config.issue_width),
        "rob_entries": str(config.rob_entries),
        "llc_bytes": str(config.llc_bytes),
        "llc_ways": str(config.llc_ways),
    }
    out = io.StringIO()
    parser.write(out)
    return out.getvalue()


def design_point_from_ini(text: str) -> DesignPoint:
    """Parse a ``[design]`` section back into a :class:`DesignPoint`."""
    parser = configparser.ConfigParser()
    parser.read_string(text)
    if "design" not in parser:
        raise ValueError("missing [design] section")
    section = parser["design"]

    def opt_int(key: str):
        value = section.get(key, "auto")
        return None if value == "auto" else int(value)

    def opt_float(key: str):
        value = section.get(key, "auto")
        return None if value == "auto" else float(value)

    return DesignPoint(
        workload=section["workload"],
        design=section["design"],
        trh=section.getint("trh", 500),
        instructions=section.getint("instructions", 150_000),
        seed=section.getint("seed", 0x5EED),
        page_policy=section.get("page_policy", "open"),
        chips=section.getint("chips", 1),
        srq_size=section.getint("srq_size", 16),
        drain_on_ref=opt_int("drain_on_ref"),
        p=opt_float("p"),
        rows_per_bank=section.getint("rows_per_bank", 4096),
        refresh_scale=section.getfloat("refresh_scale", 1 / 64),
        rowpress=section.getboolean("rowpress", False),
        sampler=section.get("sampler", "mint"),
        abo_level=section.getint("abo_level", 1),
        refresh_mode=section.get("refresh_mode", "all-bank"),
    )


def save_design_point(point: DesignPoint, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(design_point_to_ini(point))


def load_design_point(path: str) -> DesignPoint:
    with open(path) as handle:
        return design_point_from_ini(handle.read())


def config_summary(config: SystemConfig) -> dict[str, str]:
    """Flat human-readable summary of a system configuration."""
    out = {
        "capacity": f"{config.dram.capacity_bytes / 2**30:.1f} GiB",
        "banks": str(config.dram.total_banks),
        "timing": config.dram.timing.name,
        "cores": str(config.cores),
    }
    for field in dataclasses.fields(config):
        if field.name != "dram":
            out[field.name] = str(getattr(config, field.name))
    return out
