"""System configuration (paper Tables 1 and 3).

:class:`DRAMConfig` describes geometry of one DDR5 DIMM as used in the
paper: 1 rank x 2 sub-channels x 32 banks, 64K rows per bank, 8 KB rows.
:class:`SystemConfig` adds the CPU side: 8 out-of-order cores at 4 GHz,
4-wide with a 256-entry ROB, sharing an 8 MB 16-way LLC with 64 B lines.

Both classes are plain frozen dataclasses; experiments construct variants
with :func:`dataclasses.replace`. Scaled-down geometries (fewer rows,
shorter refresh window) are used by tests and the default benchmark
profiles; the ``paper()`` constructors return the full-size configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .dram.timing import TimingSet, ddr5_base
from .units import ns


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry and policy of the memory system (Table 3)."""

    subchannels: int = 2
    banks_per_subchannel: int = 32
    rows_per_bank: int = 65536
    row_bytes: int = 8192
    line_bytes: int = 64
    mop_lines: int = 4  #: consecutive lines per row in MOP mapping
    chips_per_subchannel: int = 4  #: x8 devices (Appendix B default)
    timing: TimingSet = field(default_factory=ddr5_base)

    def __post_init__(self) -> None:
        for name in ("subchannels", "banks_per_subchannel", "rows_per_bank",
                     "row_bytes", "line_bytes", "mop_lines",
                     "chips_per_subchannel"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_bytes % self.line_bytes:
            raise ValueError("row_bytes must be a multiple of line_bytes")
        if self.mop_lines > self.lines_per_row:
            raise ValueError("mop_lines cannot exceed lines per row")

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def total_banks(self) -> int:
        return self.subchannels * self.banks_per_subchannel

    @property
    def capacity_bytes(self) -> int:
        return self.total_banks * self.rows_per_bank * self.row_bytes

    def with_timing(self, timing: TimingSet) -> "DRAMConfig":
        return replace(self, timing=timing)

    @staticmethod
    def paper() -> "DRAMConfig":
        """Full Table 3 geometry: 32 GB, 64K rows/bank."""
        return DRAMConfig()

    @staticmethod
    def reduced(rows_per_bank: int = 4096,
                refresh_scale: float = 1 / 64) -> "DRAMConfig":
        """Small geometry for fast tests/benches.

        Shrinks the row count and the refresh window; per-access timing is
        untouched so latency behaviour is identical to the paper geometry.
        """
        return DRAMConfig(
            rows_per_bank=rows_per_bank,
            timing=ddr5_base().scaled_refresh(refresh_scale),
        )


@dataclass(frozen=True)
class SystemConfig:
    """Full-system configuration (Table 3 plus the DRAM geometry)."""

    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cores: int = 8
    core_ghz: float = 4.0
    issue_width: int = 4
    rob_entries: int = 256
    llc_bytes: int = 8 * 1024 * 1024
    llc_ways: int = 16
    llc_hit_ps: int = ns(25)  #: LLC lookup latency added to every miss

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.issue_width <= 0 or self.rob_entries <= 0:
            raise ValueError("core parameters must be positive")
        if self.core_ghz <= 0:
            raise ValueError("core_ghz must be positive")

    @property
    def ps_per_instruction(self) -> float:
        """Retirement time of one instruction at full issue width."""
        return 1000.0 / (self.core_ghz * self.issue_width)

    @staticmethod
    def paper() -> "SystemConfig":
        return SystemConfig(dram=DRAMConfig.paper())

    @staticmethod
    def reduced(rows_per_bank: int = 4096,
                refresh_scale: float = 1 / 64) -> "SystemConfig":
        return SystemConfig(
            dram=DRAMConfig.reduced(rows_per_bank, refresh_scale))
