"""Differential verification across the mitigation designs.

QPRAC's evaluation leans on exact-PRAC as its ground truth; we do the
same, structurally: run MoPAC-C, MoPAC-D, QPRAC, and exact-PRAC (MOAT)
through the activation-level harness on *identical* seeded target
streams and assert the invariants every correct implementation must
satisfy, whatever its internals:

* **security** — the omniscient :class:`~repro.attacks.ledger.HammerLedger`
  never sees a row exceed the tolerated activation count between
  mitigations (``attack_succeeded`` stays False for every design);
* **counter conservation** (exact-PRAC designs: ``prac``, ``qprac``) —
  every per-row PRAC counter equals an independently maintained shadow
  (+1 per ACT, aggressor zeroed and blast-radius victims +1 per
  mitigation, refresh groups cleared in lockstep), and the policy's
  ``counter_updates`` stat equals its ``activations`` stat;
* **workload identity** — all designs observed the same activation
  stream (equal ledger totals);
* **drift** — the policies' own
  :class:`~repro.mitigations.security.SecurityTelemetry` (sampled
  counter vs shadow true count) reports *identically zero* drift for
  the exact designs, and drift bounded by ``drift_bound`` (default:
  the Rowhammer threshold) for the probabilistic MoPAC designs.

Target streams are derived from a master seed through
:func:`repro.rng.derive_seed`, so any divergence replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..attacks.harness import AttackHarness, Target
from ..mitigations import registry as mitigation_registry
from ..mitigations.prac_state import BLAST_RADIUS, RefreshSchedule
from ..rng import derive_seed

#: designs whose per-row counters must exactly track activations
EXACT_DESIGNS = tuple(s.name for s in mitigation_registry.specs() if s.exact)

#: every registered design, in registry (presentation) order
DESIGNS = mitigation_registry.names()


class CounterConservationAuditor:
    """Shadow PRAC counters maintained from the ledger-observer stream.

    Implements the harness observer interface. The shadow mirrors the
    exact-PRAC counter semantics — +1 per activation, aggressor reset
    plus blast-radius victim increments per mitigation (footnote 5),
    refresh groups cleared round-robin — without touching any policy
    state, so comparing it against ``policy.counter_value`` catches
    lost, duplicated, or misattributed counter updates on either side.
    """

    def __init__(self, banks: int, rows: int, refresh_groups: int):
        self.banks = banks
        self.rows = rows
        self.counts = [np.zeros(rows, dtype=np.int64) for _ in range(banks)]
        self.schedules = [RefreshSchedule(rows, refresh_groups)
                          for _ in range(banks)]

    def on_activate(self, bank: int, row: int) -> None:
        self.counts[bank][row] += 1

    def on_refresh(self) -> None:
        for bank in range(self.banks):
            start, stop = self.schedules[bank].advance()
            self.counts[bank][start:stop] = 0

    def on_mitigation(self, bank: int, row: int) -> None:
        counts = self.counts[bank]
        counts[row] = 0
        for offset in range(1, BLAST_RADIUS + 1):
            for victim in (row - offset, row + offset):
                if 0 <= victim < self.rows:
                    counts[victim] += 1

    def mismatches(self, policy) -> list[tuple[int, int, int, int]]:
        """(bank, row, shadow, policy) for every diverging counter."""
        out = []
        for bank in range(self.banks):
            diff = np.nonzero(
                self.counts[bank]
                != np.array([policy.counter_value(bank, r)
                             for r in range(self.rows)]))[0]
            for row in diff:
                out.append((bank, int(row), int(self.counts[bank][row]),
                            policy.counter_value(bank, int(row))))
        return out


@dataclass
class DesignOutcome:
    design: str
    max_count: int
    attack_succeeded: bool
    total_activations: int
    counter_mismatches: list = field(default_factory=list)
    stats_conserved: bool = True
    #: largest |estimate - truth| the policy's own telemetry observed
    drift_max: int = 0
    #: sum of per-update drifts (0 for exact designs)
    drift_total: int = 0
    #: threshold the security verdict held the design to
    #: (``spec.effective_trh``: trh, or the design's tolerated minimum)
    effective_trh: int = 0
    #: False for registered known-broken strawmen (trr): the ledger
    #: exceeding the threshold is then recorded, not a failure
    expected_secure: bool = True
    #: spec contract bits, echoed for table rendering
    exact: bool = False
    timing: str = "prac"
    #: harness wall-clock and service activity (compare-mitigations)
    elapsed_ps: int = 0
    alerts: int = 0
    mitigations: int = 0
    counter_updates: int = 0
    #: highest unmitigated true count any bank's telemetry saw
    max_disturbance: int = 0


@dataclass
class DifferentialReport:
    """Aggregate verdict of one differential run."""

    trh: int
    activations: int
    seed: int
    outcomes: list[DesignOutcome] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"differential trh={self.trh} acts={self.activations} "
                 f"seed={hex(self.seed)}: "
                 + ("OK" if self.ok else f"{len(self.failures)} failure(s)")]
        for o in self.outcomes:
            lines.append(f"  {o.design}: max_count={o.max_count} "
                         f"acts={o.total_activations} "
                         f"drift_max={o.drift_max}"
                         + ("" if not o.counter_mismatches else
                            f" counter_mismatches="
                            f"{len(o.counter_mismatches)}"))
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)


def make_targets(seed: int, banks: int, rows: int,
                 activations: int) -> list[Target]:
    """Seeded adversarial target stream shared by every design.

    A blend of focused hammering (few hot rows — the single-sided /
    many-sided regimes) and background noise, which exercises both the
    trackers' hot paths and their eviction/refresh interactions.
    """
    rng = random.Random(derive_seed(seed, "differential-targets"))
    hot = [(rng.randrange(banks), rng.randrange(rows))
           for _ in range(max(2, banks // 2))]
    targets: list[Target] = []
    for _ in range(activations):
        roll = rng.random()
        if roll < 0.7:
            targets.append(rng.choice(hot))
        elif roll < 0.8:  # neighbouring rows: blast-radius interactions
            bank, row = rng.choice(hot)
            targets.append((bank, min(rows - 1,
                                      max(0, row + rng.choice((-1, 1))))))
        else:
            targets.append((rng.randrange(banks), rng.randrange(rows)))
    return targets


def _make_policy(design: str, trh: int, banks: int, rows: int,
                 groups: int, seed: int):
    return mitigation_registry.make_policy(design, trh, banks, rows,
                                           groups, seed=seed)


def run_differential(trh: int = 500, activations: int = 60_000,
                     banks: int = 4, rows: int = 512,
                     refresh_groups: int = 64,
                     seed: int = 0xD1FF,
                     designs: tuple[str, ...] | None = None,
                     drift_bound: int | None = None
                     ) -> DifferentialReport:
    """Run every registered design on one seeded stream; check invariants.

    ``designs`` defaults to the full :mod:`repro.mitigations.registry`.
    Each design is judged by its registered contract: the security ledger
    holds it to ``spec.effective_trh(trh)`` (designs with a tolerated
    threshold above ``trh`` are judged there; known-broken strawmen are
    recorded, not failed), exact designs additionally run the
    counter-conservation shadow audit and must show identically zero
    telemetry drift, and sampled counting designs stay within
    ``drift_bound`` (``None``: the Rowhammer threshold — an estimate that
    falls behind the truth by ``trh`` has lost the security argument).
    """
    if designs is None:
        designs = mitigation_registry.names()
    if drift_bound is None:
        drift_bound = trh
    report = DifferentialReport(trh=trh, activations=activations, seed=seed)
    targets = make_targets(seed, banks, rows, activations)
    totals: dict[str, int] = {}
    for design in designs:
        spec = mitigation_registry.get(design)
        policy = spec.build(trh, banks, rows, refresh_groups, seed=seed)
        effective_trh = spec.effective_trh(trh)
        auditor = (CounterConservationAuditor(banks, rows, refresh_groups)
                   if spec.exact else None)
        harness = AttackHarness(
            policy, effective_trh, banks, rows, refresh_groups,
            observers=[auditor] if auditor else [])
        result = harness.run(iter(targets), activations)
        stats = policy.stats
        outcome = DesignOutcome(
            design=design, max_count=result.ledger.max_count,
            attack_succeeded=result.attack_succeeded,
            total_activations=result.ledger.total_activations,
            effective_trh=effective_trh, expected_secure=spec.secure,
            exact=spec.exact, timing=spec.timing,
            elapsed_ps=result.elapsed_ps, alerts=result.alerts,
            mitigations=stats.mitigations,
            counter_updates=stats.counter_updates)
        if result.attack_succeeded and spec.secure:
            report.failures.append(
                f"{design}: row ({result.ledger.max_bank},"
                f"{result.ledger.max_row}) reached "
                f"{result.ledger.max_count} > trh={effective_trh} "
                f"unmitigated")
        if auditor is not None:
            outcome.counter_mismatches = auditor.mismatches(policy)[:10]
            if outcome.counter_mismatches:
                bank, row, shadow, got = outcome.counter_mismatches[0]
                report.failures.append(
                    f"{design}: counter conservation broken, e.g. "
                    f"bank {bank} row {row}: shadow {shadow} != "
                    f"policy {got}")
            if spec.update_per_act:
                outcome.stats_conserved = \
                    stats.counter_updates == stats.activations
                if not outcome.stats_conserved:
                    report.failures.append(
                        f"{design}: counter_updates "
                        f"{stats.counter_updates} "
                        f"!= activations {stats.activations}")
            else:
                # coalescing designs commit fewer writes than ACTs, but
                # never more — and must have committed something
                outcome.stats_conserved = \
                    0 < stats.counter_updates <= stats.activations
                if not outcome.stats_conserved:
                    report.failures.append(
                        f"{design}: counter_updates "
                        f"{stats.counter_updates} outside "
                        f"(0, activations={stats.activations}]")
        if policy.security is not None:
            outcome.drift_max = policy.security.drift_max
            outcome.drift_total = policy.security.drift_total
            outcome.max_disturbance = max(
                policy.security.max_disturbance(bank)
                for bank in range(banks))
            if spec.exact and outcome.drift_total:
                report.failures.append(
                    f"{design}: exact design drifted from ground truth "
                    f"(drift_max={outcome.drift_max}, "
                    f"drift_total={outcome.drift_total})")
            elif spec.counting and outcome.drift_max > drift_bound:
                report.failures.append(
                    f"{design}: sampled-counter drift {outcome.drift_max} "
                    f"exceeds bound {drift_bound}")
        totals[design] = result.ledger.total_activations
        report.outcomes.append(outcome)
    if len(set(totals.values())) > 1:
        report.failures.append(f"designs saw different streams: {totals}")
    return report
