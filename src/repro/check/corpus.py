"""Per-mitigation fuzz seed corpora: curated cases replayed in CI.

A corpus entry pins one fuzzer case — ``(master_seed, index)`` plus the
expected design and event-kind census — chosen because it exercises a
path the plain smoke run may miss (ALERT/RFM recovery for the exact
designs, bank-scoped RFMs for PRACtical, SRQ pressure for MoPAC-D,
proactive-service storms for QPRAC). Replay re-derives the case from its
seeds, re-runs the controller, re-verifies the trace with the
conformance oracle, and compares the census bit-for-bit; any divergence
is a behaviour change that needs a deliberate corpus update.

Corpus layout (one directory per design under ``tests/check/seeds/``)::

    tests/check/seeds/<design>/case-<index>.json
    {"master_seed": "0x5eed5", "index": 548, "design": "prac",
     "expect": {"events": 2452, "ACT": ..., "ALERT": 10, "RFM": 10}}

Failures found by the fuzzer shrink to a ``(master_seed, index)`` pair
too — append them here as regression fixtures once fixed.
"""

from __future__ import annotations

import collections
import json
from dataclasses import dataclass, field
from pathlib import Path

from .fuzz import build_case, run_case

#: kinds pinned in the census (order matches the JSON files)
CENSUS_KINDS = ("ACT", "PRE", "RD", "WR", "REF", "RFM", "ALERT", "MITIGATE")

#: repo-relative default corpus location (wired into ``make check``)
DEFAULT_ROOT = Path("tests/check/seeds")


@dataclass(frozen=True)
class CorpusCase:
    """One pinned fuzz case with its expected trace census."""

    design: str
    master_seed: int
    index: int
    expect: dict[str, int]
    path: str = ""

    @property
    def label(self) -> str:
        return f"{self.design}/case-{self.index}"


@dataclass
class CorpusReport:
    cases_run: int = 0
    events_checked: int = 0
    failures: list[str] = field(default_factory=list)
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.skipped:
            return "corpus: no seed corpus found (skipped)"
        head = (f"corpus: {self.cases_run} case(s), "
                f"{self.events_checked} events "
                + ("OK" if self.ok else f"{len(self.failures)} FAILURES"))
        return "\n".join([head] + ["  " + f for f in self.failures])


def census(events) -> dict[str, int]:
    """Event-kind counts of a trace, restricted to the pinned kinds."""
    counts = collections.Counter(e.kind for e in events)
    out = {"events": len(events)}
    out.update({kind: counts.get(kind, 0) for kind in CENSUS_KINDS})
    return out


def load_corpus(root: Path | str = DEFAULT_ROOT) -> list[CorpusCase]:
    """Load every corpus case under ``root``, sorted by (design, index)."""
    root = Path(root)
    cases: list[CorpusCase] = []
    for path in sorted(root.glob("*/case-*.json")):
        raw = json.loads(path.read_text())
        cases.append(CorpusCase(
            design=raw["design"],
            master_seed=int(raw["master_seed"], 0),
            index=int(raw["index"]),
            expect={k: int(v) for k, v in raw["expect"].items()},
            path=str(path)))
    cases.sort(key=lambda c: (c.design, c.index))
    return cases


def replay_corpus_case(entry: CorpusCase) -> tuple[int, list[str]]:
    """Replay one pinned case; returns (events_checked, failure strings)."""
    case = build_case(entry.master_seed, entry.index)
    failures: list[str] = []
    if case.design != entry.design:
        # derivation drifted: the stream generator changed under the seed
        failures.append(
            f"{entry.label}: derives design {case.design!r}, "
            f"expected {entry.design!r} — regenerate the corpus")
        return 0, failures
    events, violations, runaway = run_case(case)
    if runaway:
        failures.append(f"{entry.label}: runaway")
        return len(events), failures
    if violations:
        failures.append(
            f"{entry.label}: {len(violations)} violation(s), first: "
            f"{violations[0]}")
    got = census(events)
    if got != entry.expect:
        diff = {k: (entry.expect.get(k), got.get(k))
                for k in sorted(set(entry.expect) | set(got))
                if entry.expect.get(k) != got.get(k)}
        failures.append(f"{entry.label}: census drift {diff}")
    return len(events), failures


def run_corpus(root: Path | str = DEFAULT_ROOT) -> CorpusReport:
    """Replay the whole corpus; missing corpus directories skip cleanly."""
    report = CorpusReport()
    root = Path(root)
    if not root.is_dir():
        report.skipped = True
        return report
    for entry in load_corpus(root):
        checked, failures = replay_corpus_case(entry)
        report.cases_run += 1
        report.events_checked += checked
        report.failures.extend(failures)
    return report
