"""Independent DDR5 protocol-conformance oracle.

Replays a :mod:`repro.obs` event stream (ACT / PRE / RD / WR / REF /
RFM / ALERT) and re-verifies it against a legality model implemented
*from the JEDEC rules*, not from the simulator's :class:`~repro.dram.bank.Bank`
state machine. The controller consults ``Bank.earliest_*`` before every
command, so ``TimingViolation`` can never catch a misunderstanding the
two sides share; this oracle is the second, independent implementation
that can (HammerSim's validation argument, applied to our own model).

Checked rules (rule ids in parentheses):

* open-row exclusivity — ACT only on an idle bank (``act.open``),
  column commands only on the open row (``col.closed`` / ``col.row``),
  PRE only on an open bank (``pre.idle`` / ``pre.row``);
* ACT spacing — tRP/tRC after the closing PRE (``act.early``), tRRD
  between any two ACTs of a sub-channel (``act.trrd``), at most four
  ACTs per rolling tFAW window (``act.tfaw``);
* column timing — tRCD after the ACT (``col.early``), data-bus bursts
  serialized tBURST apart, the model's tCCD equivalent (``bus.overlap``);
* precharge timing — tRAS after ACT and tWR + tBURST after a write
  (``pre.early``);
* refresh — REFab cadence anchored at k·tREFI (``ref.cadence``) with
  forced closes confined to the refresh window and all banks quiet
  until tRFC after the last close (``act.refblock`` / ``act.blocked``
  / ``col.refblock`` / ``col.blocked`` / ``pre.blocked``); REFsb
  round-robin rotation (``ref.rotation``) and per-bank cadence at
  (k·tREFI)/banks (``ref.cadence``) with a tRFCsb blackout;
* the ABO contract — once ALERT is asserted the controller may operate
  for at most tALERT_NORMAL (180 ns) before the RFM; any command dated
  past an unserviced ALERT's deadline is flagged (``abo.window``), and
  every RFM group imposes a level × tALERT_RFM (350 ns) stall
  (``act.blocked`` etc. via the block window).

Per-episode timing: an ACT/PRE record carries the episode's
counter-update flag (``cu``), which selects between the normal and the
PRAC (counter-update) timing sets — exactly how MoPAC-C's dual
precharge flavours enter the rules. The pair comes from
:meth:`repro.mitigations.base.MitigationPolicy.timing_pair`.

Model conventions the oracle mirrors (documented in
``docs/verification.md``): a refresh executes "late" when it would
collide with an imminent ABO stall, so the cadence check allows a
bounded slack past each anchor; a trailing ALERT with no RFM before the
trace ends is only a violation if commands continue past its deadline.
"""

from __future__ import annotations

import collections
import json
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from ..dram.timing import TimingSet, ddr5_base
from ..obs.tracer import TraceEvent

#: column commands
_COLUMN_KINDS = ("RD", "WR")

#: hard cap so a broken trace cannot produce an unbounded report
DEFAULT_MAX_VIOLATIONS = 200


class Violation(NamedTuple):
    """One legality-rule breach found in a trace."""

    rule: str
    time_ps: int
    subchannel: int
    bank: int
    row: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.rule}] t={self.time_ps}ps sc={self.subchannel} "
                f"bank={self.bank} row={self.row}: {self.detail}")


@dataclass(frozen=True)
class OracleConfig:
    """Everything the oracle needs to know about the device under test."""

    #: timing set of plain episodes
    normal: TimingSet
    #: timing set of counter-update (PREcu) episodes
    counter_update: TimingSet
    #: banks per sub-channel
    banks: int
    #: "all-bank" (REFab) or "same-bank" (REFsb)
    refresh_mode: str = "all-bank"
    #: RFMs issued per ALERT episode
    abo_level: int = 1
    #: "subchannel": an RFM stalls everything; "bank": RFMs carry a bank
    #: index and stall only that bank (PRACtical recovery isolation)
    recovery_scope: str = "subchannel"

    @property
    def cadence_slack_ps(self) -> int:
        """How far past its anchor a refresh may legally execute.

        A refresh defers past an imminent ABO stall (ALERT window plus
        the full RFM stall) and its forced closes wait out tRAS / write
        recovery; everything beyond that bound means a skipped or
        drifting refresh.
        """
        t = self.normal
        return (t.tALERT_NORMAL + self.abo_level * t.tALERT_RFM
                + t.tRAS + t.tWR + 2 * t.tBURST)

    def episode(self, cu: bool) -> TimingSet:
        return self.counter_update if cu else self.normal

    @classmethod
    def from_policy(cls, policy, banks: int,
                    refresh_mode: str = "all-bank") -> "OracleConfig":
        normal, cu = policy.timing_pair()
        return cls(normal=normal, counter_update=cu, banks=banks,
                   refresh_mode=refresh_mode,
                   abo_level=getattr(policy, "abo_level", 1),
                   recovery_scope=getattr(policy, "recovery_scope",
                                          "subchannel"))


@dataclass
class _BankState:
    open_row: int | None = None
    act_cu: bool = False
    last_act: int = -(10 ** 18)
    ready_act: int = 0
    ready_col: int = 0
    ready_pre: int = 0
    #: REF/RFM blackout
    block_end: int = 0
    #: refresh that must force-close this bank is still pending
    ref_pending: bool = False


@dataclass
class _ChannelState:
    banks: list[_BankState]
    last_act: int = -(10 ** 18)
    recent_acts: collections.deque = field(
        default_factory=lambda: collections.deque(maxlen=4))
    last_col: int = -(10 ** 18)
    #: assertion times of ALERTs not yet answered by an RFM group
    alerts: collections.deque = field(default_factory=collections.deque)
    #: current RFM group's start time (same-time RFMs share one ALERT)
    rfm_group_time: int | None = None
    #: end of the current ABO stall (level x tALERT_RFM past the RFM)
    stall_end: int = 0
    #: pending REFab: (base_time, max forced-close time so far)
    refab_pending: tuple[int, int] | None = None
    refab_count: int = 0
    refsb_count: int = 0


class ConformanceOracle:
    """Replays an event stream against the independent legality model."""

    def __init__(self, config: OracleConfig,
                 max_violations: int = DEFAULT_MAX_VIOLATIONS):
        self.config = config
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self._channels: dict[int, _ChannelState] = {}
        self.events_checked = 0

    # -- public API --------------------------------------------------------
    def verify(self, events: Iterable[TraceEvent]) -> list[Violation]:
        """Check every event; returns (and stores) the violations found."""
        ordered = sorted(events, key=lambda e: e.time_ps)  # stable: ties
        for event in ordered:                              # keep rec order
            if len(self.violations) >= self.max_violations:
                break
            self._dispatch(event)
            self.events_checked += 1
        return self.violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self, limit: int = 10) -> str:
        lines = [f"{len(self.violations)} violation(s) in "
                 f"{self.events_checked} events"]
        lines += [str(v) for v in self.violations[:limit]]
        if len(self.violations) > limit:
            lines.append(f"... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    # -- plumbing ----------------------------------------------------------
    def _channel(self, sc: int) -> _ChannelState:
        state = self._channels.get(sc)
        if state is None:
            state = _ChannelState(
                banks=[_BankState() for _ in range(self.config.banks)])
            self._channels[sc] = state
        return state

    def _flag(self, rule: str, event: TraceEvent, detail: str) -> None:
        self.violations.append(Violation(
            rule, event.time_ps, event.subchannel, event.bank,
            event.row, detail))

    def _dispatch(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "ACT":
            self._on_act(event)
        elif kind == "PRE":
            self._on_pre(event)
        elif kind in _COLUMN_KINDS:
            self._on_column(event)
        elif kind == "REF":
            self._on_ref(event)
        elif kind == "RFM":
            self._on_rfm(event)
        elif kind == "ALERT":
            self._channel(event.subchannel).alerts.append(event.time_ps)
        # DRAIN / MITIGATE are policy-internal bookkeeping, not commands.

    def _check_alert_deadline(self, ch: _ChannelState,
                              event: TraceEvent) -> None:
        """Any command past an unserviced ALERT's deadline is illegal."""
        if not ch.alerts:
            return
        deadline = ch.alerts[0] + self.config.normal.tALERT_NORMAL
        if event.time_ps >= deadline:
            self._flag("abo.window", event,
                       f"command at {event.time_ps} but ALERT from "
                       f"{ch.alerts[0]} required an RFM by {deadline}")

    # -- row commands ------------------------------------------------------
    def _on_act(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        bank = ch.banks[event.bank]
        t = event.time_ps
        timing = self.config.episode(event.cu)
        self._check_alert_deadline(ch, event)
        if ch.refab_pending is not None or bank.ref_pending:
            self._flag("act.refblock", event,
                       "ACT while a refresh is still closing rows")
        if bank.open_row is not None:
            self._flag("act.open", event,
                       f"ACT while row {bank.open_row} open")
        if t < bank.ready_act:
            self._flag("act.early", event,
                       f"ACT at {t} before tRP/tRC allow {bank.ready_act}")
        if t < bank.block_end:
            self._flag("act.blocked", event,
                       f"ACT at {t} inside REF blackout until "
                       f"{bank.block_end}")
        if t < ch.stall_end:
            self._flag("abo.stall", event,
                       f"ACT at {t} inside ABO stall until {ch.stall_end}")
        if t < ch.last_act + self.config.normal.tRRD:
            self._flag("act.trrd", event,
                       f"ACT at {t} within tRRD of ACT at {ch.last_act}")
        if (len(ch.recent_acts) == 4
                and t < ch.recent_acts[0] + self.config.normal.tFAW):
            self._flag("act.tfaw", event,
                       f"fifth ACT at {t} inside the tFAW window opened "
                       f"at {ch.recent_acts[0]}")
        bank.open_row = event.row
        bank.act_cu = event.cu
        bank.last_act = t
        bank.ready_col = t + timing.tRCD
        bank.ready_pre = t + timing.tRAS
        ch.last_act = t
        ch.recent_acts.append(t)

    def _on_pre(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        bank = ch.banks[event.bank]
        t = event.time_ps
        forced = self._consume_forced_close(ch, bank, t)
        if not forced:
            self._check_alert_deadline(ch, event)
            if t < bank.block_end:
                self._flag("pre.blocked", event,
                           f"PRE at {t} inside REF blackout until "
                           f"{bank.block_end}")
            if t < ch.stall_end:
                self._flag("abo.stall", event,
                           f"PRE at {t} inside ABO stall until "
                           f"{ch.stall_end}")
        if bank.open_row is None:
            self._flag("pre.idle", event, "PRE while bank idle")
            return
        if event.row != -1 and event.row != bank.open_row:
            self._flag("pre.row", event,
                       f"PRE names row {event.row} but open row is "
                       f"{bank.open_row}")
        if t < bank.ready_pre:
            self._flag("pre.early", event,
                       f"PRE at {t} before tRAS/tWR allow {bank.ready_pre}")
        timing = self.config.episode(event.cu)
        bank.ready_act = max(t + timing.tRP, bank.last_act + timing.tRC)
        bank.open_row = None

    def _on_column(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        bank = ch.banks[event.bank]
        t = event.time_ps
        timing = self.config.episode(bank.act_cu)
        self._check_alert_deadline(ch, event)
        if ch.refab_pending is not None or bank.ref_pending:
            self._flag("col.refblock", event,
                       "column command while a refresh is closing rows")
        if bank.open_row is None:
            self._flag("col.closed", event,
                       f"{event.kind} on an idle bank")
            return
        if bank.open_row != event.row:
            self._flag("col.row", event,
                       f"{event.kind} to row {event.row} but open row is "
                       f"{bank.open_row}")
        if t < bank.ready_col:
            self._flag("col.early", event,
                       f"{event.kind} at {t} before tRCD allows "
                       f"{bank.ready_col}")
        if t < bank.block_end:
            self._flag("col.blocked", event,
                       f"{event.kind} at {t} inside REF blackout "
                       f"until {bank.block_end}")
        if t < ch.stall_end:
            self._flag("abo.stall", event,
                       f"{event.kind} at {t} inside ABO stall until "
                       f"{ch.stall_end}")
        if t < ch.last_col + self.config.normal.tBURST:
            self._flag("bus.overlap", event,
                       f"{event.kind} at {t} overlaps the burst started "
                       f"at {ch.last_col}")
        ch.last_col = t
        if event.kind == "WR":
            bank.ready_pre = max(bank.ready_pre,
                                 t + timing.tBURST + timing.tWR)

    # -- maintenance -------------------------------------------------------
    def _on_ref(self, event: TraceEvent) -> None:
        if self.config.refresh_mode == "same-bank" or event.bank != -1:
            self._on_refsb(event)
        else:
            self._on_refab(event)

    def _on_refab(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        t = event.time_ps
        self._finalize_refab(ch)  # previous window must be fully closed
        ch.refab_count += 1
        anchor = ch.refab_count * self.config.normal.tREFI
        if not 0 <= t - anchor <= self.config.cadence_slack_ps:
            self._flag("ref.cadence", event,
                       f"REFab #{ch.refab_count} at {t}, anchor {anchor} "
                       f"(slack {self.config.cadence_slack_ps})")
        open_banks = [b for b in ch.banks if b.open_row is not None]
        for bank in open_banks:
            bank.ref_pending = True
        ch.refab_pending = (t, t)
        if not open_banks:
            self._finalize_refab(ch)

    def _on_refsb(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        t = event.time_ps
        ch.refsb_count += 1
        expected_bank = (ch.refsb_count - 1) % self.config.banks
        if event.bank != expected_bank:
            self._flag("ref.rotation", event,
                       f"REFsb #{ch.refsb_count} on bank {event.bank}, "
                       f"round-robin expects {expected_bank}")
        anchor = (ch.refsb_count * self.config.normal.tREFI
                  // self.config.banks)
        if not 0 <= t - anchor <= self.config.cadence_slack_ps:
            self._flag("ref.cadence", event,
                       f"REFsb #{ch.refsb_count} at {t}, anchor {anchor} "
                       f"(slack {self.config.cadence_slack_ps})")
        if 0 <= event.bank < self.config.banks:
            bank = ch.banks[event.bank]
            if bank.open_row is not None:
                bank.ref_pending = True
                bank.block_end = max(bank.block_end, t)
            else:
                bank.block_end = max(bank.block_end,
                                     t + self.config.normal.tRFCsb)

    def _consume_forced_close(self, ch: _ChannelState, bank: _BankState,
                              t: int) -> bool:
        """Recognize a refresh's forced close; returns True if it was one.

        After the commit-horizon rules, no normal PRE can be dated at or
        past a refresh that touches its bank, so a PRE on a
        refresh-pending bank is unambiguously the refresh closing it.
        """
        if not bank.ref_pending:
            return False
        bank.ref_pending = False
        if ch.refab_pending is not None:
            base, close_by = ch.refab_pending
            ch.refab_pending = (base, max(close_by, t))
            if not any(b.ref_pending for b in ch.banks):
                self._finalize_refab(ch)
        else:  # REFsb forced close: blackout runs tRFCsb past the close
            bank.block_end = max(bank.block_end,
                                 t + self.config.normal.tRFCsb)
        return True

    def _finalize_refab(self, ch: _ChannelState) -> None:
        """All forced closes seen: impose the shared tRFC blackout."""
        if ch.refab_pending is None:
            return
        base, close_by = ch.refab_pending
        end = max(base, close_by) + self.config.normal.tRFC
        for bank in ch.banks:
            bank.block_end = max(bank.block_end, end)
            bank.ref_pending = False
        ch.refab_pending = None

    def _on_rfm(self, event: TraceEvent) -> None:
        ch = self._channel(event.subchannel)
        t = event.time_ps
        stall = self.config.normal.tALERT_RFM
        bank_scoped = (self.config.recovery_scope == "bank"
                       and event.bank >= 0)
        if ch.rfm_group_time == t:
            if bank_scoped:
                # same recovery group, another named bank: only that
                # bank gains a blackout — the sub-channel keeps issuing
                bank = ch.banks[event.bank]
                bank.block_end = max(bank.block_end, t + stall)
            else:
                # another RFM of the same ALERT episode: extend the stall
                ch.stall_end += stall
            return
        ch.rfm_group_time = t
        if ch.alerts:
            alert_t = ch.alerts.popleft()
            deadline = alert_t + self.config.normal.tALERT_NORMAL
            if t > deadline:
                self._flag("abo.window", event,
                           f"RFM at {t} but the ALERT from {alert_t} "
                           f"required it by {deadline}")
        else:
            self._flag("abo.unprompted", event, "RFM with no ALERT pending")
        if bank_scoped:
            bank = ch.banks[event.bank]
            bank.block_end = max(bank.block_end, t + stall)
        else:
            ch.stall_end = max(ch.stall_end, t + stall)


# ---------------------------------------------------------------------------
# Conveniences
# ---------------------------------------------------------------------------
def verify_events(events: Iterable[TraceEvent],
                  config: OracleConfig) -> list[Violation]:
    """One-shot verification; returns the violations found."""
    return ConformanceOracle(config).verify(events)


def events_from_jsonl(path: str) -> list[TraceEvent]:
    """Load a tracer JSONL export back into :class:`TraceEvent` records."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            d = json.loads(line)
            events.append(TraceEvent(d["t"], d["kind"], d.get("sc", -1),
                                     d.get("bank", -1), d.get("row", -1),
                                     d.get("cause", ""),
                                     bool(d.get("cu", False))))
    return events


def default_config(banks: int | None = None,
                   refresh_mode: str = "all-bank") -> OracleConfig:
    """Oracle config for a baseline (single timing set) device."""
    from ..config import DRAMConfig
    base = ddr5_base()
    return OracleConfig(normal=base, counter_update=base,
                        banks=banks or DRAMConfig().banks_per_subchannel,
                        refresh_mode=refresh_mode)
