"""repro.check: independent verification of the simulator's claims.

Three pillars (see docs/verification.md):

* :mod:`repro.check.oracle` — a second, independent implementation of
  the DDR5 legality rules that replays traced command streams;
* :mod:`repro.check.differential` — MoPAC-C / MoPAC-D / QPRAC /
  exact-PRAC on identical seeded workloads, asserting the invariants
  that must agree (no unmitigated row past the tolerated count, PRAC
  counter conservation);
* :mod:`repro.check.fuzz` — a property-based fuzzer that hammers the
  MC scheduler and page policies with randomized request streams and
  shrinks any oracle violation by trace-prefix bisection.

``python -m repro.check.selfcheck`` runs all three (wired into
``make check``).
"""

from .oracle import (ConformanceOracle, OracleConfig, Violation,
                     events_from_jsonl, verify_events)
from .driver import PointVerdict, oracle_config_for, trace_point, \
    verify_point

__all__ = [
    "ConformanceOracle", "OracleConfig", "Violation",
    "events_from_jsonl", "verify_events",
    "PointVerdict", "oracle_config_for", "trace_point", "verify_point",
]
