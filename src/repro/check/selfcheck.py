"""Self-check: prove the verification stack works end to end.

``python -m repro.check.selfcheck`` runs, in order:

1. **oracle/clean** — trace a default-config campaign point (an
   ABO-heavy MoPAC-D hammer run) and a second, geometry-diverse point
   through the simulator; the conformance oracle must report zero
   violations with no dropped trace events;
2. **oracle/mutations** — apply each seeded mutation from
   :mod:`repro.check.mutations` (drop a PRE, shrink a tRC, skip an RFM)
   to the clean trace, for several seeds; the oracle must flag every
   mutant (a silent oracle proves nothing);
3. **differential** — MoPAC-C / MoPAC-D / QPRAC / exact-PRAC on one
   seeded adversarial stream; security and counter-conservation
   invariants must hold;
4. **fuzz smoke** — a bounded run of the property-based MC fuzzer,
   plus replay of the per-mitigation seed corpora under
   ``tests/check/seeds/`` (curated ALERT/RFM-heavy cases);
5. **engine** — both campaign points re-run under the fast engine
   (:mod:`repro.sim.fastpath`): stats fingerprints and full command
   traces must be bit-identical to the reference event loop, and the
   fast trace must satisfy the conformance oracle on its own.

Exit status 0 when every step passes, 1 otherwise — wired into
``make check`` (and thereby ``make ci``).
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys

from ..obs.tracer import EventTracer
from ..sim.runner import DesignPoint, run_point
from .corpus import run_corpus
from .differential import run_differential
from .driver import oracle_config_for, trace_point, verify_point
from .fuzz import run_fuzz
from .mutations import MutationError, drop_pre, shrink_trc, skip_rfm
from .oracle import ConformanceOracle

#: campaign point with heavy ABO traffic (13+ ALERT/RFM pairs) — the
#: mutation checks need RFMs in the trace to have something to skip
ABO_POINT = DesignPoint(
    workload="hammer", design="mopac-d", trh=250, instructions=12_000,
    rows_per_bank=128, refresh_scale=1 / 256, p=1.0, srq_size=5,
    drain_on_ref=0)

#: second clean-trace point: different design, page pressure, geometry
MIX_POINT = DesignPoint(
    workload="mcf", design="mopac-c", trh=500, instructions=20_000,
    rows_per_bank=256, refresh_scale=1 / 128)

MUTATIONS = (("drop-pre", drop_pre, False),
             ("shrink-trc", shrink_trc, True),
             ("skip-rfm", skip_rfm, False))

MUTATION_SEEDS = (1, 2, 3)


def _check(name: str, ok: bool, detail: str, failures: list[str],
           quiet: bool) -> None:
    if not ok:
        failures.append(f"{name}: {detail}")
    if not quiet:
        print(f"[{'ok' if ok else 'FAIL'}] {name}: {detail}")


def run_selfcheck(fuzz_cases: int = 12, fuzz_seed: int = 0xC4EC,
                  quiet: bool = False) -> int:
    failures: list[str] = []

    # 1. clean traces verify with zero violations
    for point in (ABO_POINT, MIX_POINT):
        verdict = verify_point(point)
        _check(f"oracle/clean/{verdict.label}", verdict.ok,
               verdict.describe(), failures, quiet)

    # 2. every seeded mutation of the clean trace is caught
    tracer = trace_point(ABO_POINT)
    events = tracer.events()
    config = oracle_config_for(ABO_POINT)
    for name, mutate, wants_config in MUTATIONS:
        for seed in MUTATION_SEEDS:
            rng = random.Random(seed)
            try:
                mutant = mutate(events, config, rng) if wants_config \
                    else mutate(events, rng)
            except MutationError as error:
                _check(f"oracle/mutation/{name}/seed{seed}", False,
                       f"no mutation site: {error}", failures, quiet)
                continue
            violations = ConformanceOracle(config).verify(mutant)
            detail = (f"caught as {violations[0].rule}" if violations
                      else "NOT caught")
            _check(f"oracle/mutation/{name}/seed{seed}",
                   bool(violations), detail, failures, quiet)

    # 3. differential invariants across the designs
    report = run_differential()
    _check("differential", report.ok, report.describe().splitlines()[0],
           failures, quiet)

    # 4. fuzz smoke + pinned per-mitigation seed corpora
    fuzz = run_fuzz(cases=fuzz_cases, master_seed=fuzz_seed)
    _check("fuzz", fuzz.ok, fuzz.describe().splitlines()[0],
           failures, quiet)
    corpus = run_corpus()
    _check("fuzz/corpus", corpus.ok, corpus.describe().splitlines()[0],
           failures, quiet)

    # 5. the fast engine is bit-identical machinery, not new physics
    for point in (ABO_POINT, MIX_POINT):
        label = f"{point.workload}.{point.design}"
        fingerprints, traces = {}, {}
        for engine in ("reference", "fast"):
            tracer = EventTracer(capacity=2_000_000)
            result = run_point(point, tracer=tracer, engine=engine)
            fingerprints[engine] = (
                dict(result.stats),
                [dataclasses.asdict(s) for s in result.core_stats],
                [dataclasses.asdict(s) for s in result.mc_stats],
                result.elapsed_ps)
            traces[engine] = tracer.events()
        same_stats = fingerprints["fast"] == fingerprints["reference"]
        same_trace = traces["fast"] == traces["reference"]
        _check(f"engine/identity/{label}", same_stats and same_trace,
               f"stats {'match' if same_stats else 'DIVERGE'}, "
               f"{len(traces['fast'])} traced events "
               f"{'match' if same_trace else 'DIVERGE'}",
               failures, quiet)
        violations = ConformanceOracle(
            oracle_config_for(point)).verify(traces["fast"])
        _check(f"engine/oracle/{label}", not violations,
               ("zero violations" if not violations
                else f"{len(violations)} violation(s), first: "
                     f"{violations[0].rule}"),
               failures, quiet)

    if failures:
        print(f"selfcheck: {len(failures)} FAILURE(S)", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if not quiet:
        print("selfcheck: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.selfcheck",
        description="independent verification of the simulator's traces")
    parser.add_argument("--fuzz-cases", type=int, default=12,
                        help="number of fuzz cases (default 12)")
    parser.add_argument("--fuzz-seed", type=lambda s: int(s, 0),
                        default=0xC4EC, help="fuzz master seed")
    parser.add_argument("--quiet", action="store_true",
                        help="only print on failure")
    args = parser.parse_args(argv)
    return run_selfcheck(fuzz_cases=args.fuzz_cases,
                         fuzz_seed=args.fuzz_seed, quiet=args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
