"""Seeded trace mutations that the oracle must catch.

A verification oracle that never fires is indistinguishable from one
that checks nothing, so each mutation below takes a *legal* traced
stream, breaks exactly one protocol rule, and returns the mutated
stream; the selfcheck (and ``tests/check``) assert the oracle flags it.

* :func:`drop_pre` — remove a PRE whose bank is re-activated later:
  the next ACT lands on an open bank (open-row exclusivity);
* :func:`shrink_trc` — move an ACT to one nanosecond before its
  tRP/tRC-derived earliest issue time;
* :func:`skip_rfm` — remove an RFM group whose ALERT is followed by
  more commands: the stream keeps operating past the 180 ns ABO window.

Mutation sites are chosen with a seeded :class:`random.Random` so
failures replay exactly.
"""

from __future__ import annotations

import random

from ..dram.timing import TimingSet
from ..obs.tracer import TraceEvent
from .oracle import OracleConfig

NS = 1000  # ps per ns


class MutationError(ValueError):
    """The trace has no site where this mutation can apply."""


def _ordered(events: list[TraceEvent]) -> list[TraceEvent]:
    return sorted(events, key=lambda e: e.time_ps)


def drop_pre(events: list[TraceEvent], rng: random.Random
             ) -> list[TraceEvent]:
    """Remove one PRE that is followed by an ACT on the same bank."""
    ordered = _ordered(events)
    reactivated: list[int] = []
    seen_act: set[tuple[int, int]] = set()
    for i in range(len(ordered) - 1, -1, -1):
        event = ordered[i]
        key = (event.subchannel, event.bank)
        if event.kind == "ACT":
            seen_act.add(key)
        elif event.kind == "PRE" and key in seen_act:
            reactivated.append(i)
    reactivated.reverse()
    if not reactivated:
        raise MutationError("no PRE with a later ACT on its bank")
    victim = rng.choice(reactivated)
    return ordered[:victim] + ordered[victim + 1:]


def shrink_trc(events: list[TraceEvent], config: OracleConfig,
               rng: random.Random) -> list[TraceEvent]:
    """Back-date one ACT to just before tRP/tRC allow it.

    The target is the second ACT of a PRE -> ACT pair on one bank; its
    legal earliest issue time is ``max(pre + tRP, prev_act + tRC)``
    (both from the closing PRE's episode timing), so dating it 1 ns
    earlier violates exactly the ACT-spacing rule.
    """
    ordered = _ordered(events)
    candidates: list[tuple[int, int]] = []  # (act index, earliest legal)
    last_act: dict[tuple[int, int], TraceEvent] = {}
    last_pre: dict[tuple[int, int], TraceEvent] = {}
    for i, event in enumerate(ordered):
        key = (event.subchannel, event.bank)
        if event.kind == "PRE":
            last_pre[key] = event
        elif event.kind == "ACT":
            pre, prev = last_pre.get(key), last_act.get(key)
            if pre is not None and prev is not None:
                timing = _episode(config, pre.cu)
                earliest = max(pre.time_ps + timing.tRP,
                               prev.time_ps + timing.tRC)
                # moving to earliest-1ns must stay after the PRE (no
                # reordering) and actually move the ACT backwards
                if pre.time_ps < earliest - NS < event.time_ps:
                    candidates.append((i, earliest))
            last_act[key] = event
    if not candidates:
        raise MutationError("no ACT tight against its tRP/tRC bound")
    index, earliest = rng.choice(candidates)
    moved = ordered[index]._replace(time_ps=earliest - NS)
    return ordered[:index] + [moved] + ordered[index + 1:]


def skip_rfm(events: list[TraceEvent], rng: random.Random
             ) -> list[TraceEvent]:
    """Remove one RFM group whose sub-channel keeps operating after it."""
    ordered = _ordered(events)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, event in enumerate(ordered):
        if event.kind == "RFM":
            groups.setdefault((event.subchannel, event.time_ps),
                              []).append(i)
    viable = []
    for (sc, t), indices in groups.items():
        follow_on = any(e.kind in ("ACT", "PRE", "RD", "WR")
                        and e.subchannel == sc
                        for e in ordered[max(indices) + 1:])
        if follow_on:
            viable.append(indices)
    if not viable:
        raise MutationError("no RFM group with later commands to expose it")
    victim = set(rng.choice(viable))
    return [e for i, e in enumerate(ordered) if i not in victim]


def _episode(config: OracleConfig, cu: bool) -> TimingSet:
    return config.episode(cu)
