"""Property-based fuzzing of the MC scheduler and page policies.

Each fuzz case builds a real :class:`~repro.mc.controller.MemoryController`
(with a randomly drawn mitigation design, page policy, refresh mode, and
geometry) on a private event heap, drives it with a seeded randomized
request stream — bursty arrivals, conflict ping-pong, hot rows, writes —
and replays the traced command stream through the conformance oracle.
The property under test: *every stream the controller emits is legal.*

Failures shrink by trace-prefix bisection (:func:`shrink_prefix`) and
carry the case's derivation seed, so ``replay_case(master_seed, index)``
reproduces the exact controller run and trace.

Case seeds come from :func:`repro.rng.derive_seed` named streams off one
master seed — logging the master seed is enough to replay any case.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import DRAMConfig
from ..dram.commands import BankAddress, LineAddress
from ..mc.controller import MemoryController
from ..mc.pagepolicy import make_page_policy
from ..mc.request import MemRequest
from ..mitigations import registry as mitigation_registry
from ..mitigations.prac import BaselinePolicy
from ..obs.tracer import EventTracer, TraceEvent
from ..rng import derive_seed
from .oracle import ConformanceOracle, OracleConfig, Violation

NS = 1000

#: every registered mitigation plus the unprotected baseline — a design
#: registered in :mod:`repro.mitigations.registry` is fuzzed for free
DESIGN_CHOICES = ("baseline",) + mitigation_registry.names()

#: constructor overrides applied by the fuzzer (tiny structures so the
#: randomized streams actually exercise pressure/eviction paths)
_FUZZ_OVERRIDES: dict[str, dict] = {
    "mopac-d": {"srq_size": 5},
    "cnc-prac": {"buffer_size": 4, "flush_threshold": 4},
    "practical": {"subarrays": 4},
    "qprac-proactive": {"queue_size": 4},
}
PAGE_POLICY_CHOICES = ("open", "close", "ton60", "ton200")
REFRESH_MODE_CHOICES = ("all-bank", "same-bank")

#: runaway-case backstop: heap events processed before giving up
MAX_EVENTS = 500_000


@dataclass(frozen=True)
class RequestSpec:
    arrival_ps: int
    bank: int
    row: int
    is_write: bool


@dataclass(frozen=True)
class FuzzCase:
    """One fully-derived fuzz scenario (reconstructible from its seed)."""

    index: int
    seed: int
    design: str
    page_policy: str
    refresh_mode: str
    banks: int
    rows: int
    trh: int
    requests: tuple[RequestSpec, ...]

    def describe(self) -> str:
        return (f"case {self.index} (seed {hex(self.seed)}): "
                f"{self.design}/{self.page_policy}/{self.refresh_mode} "
                f"banks={self.banks} rows={self.rows} trh={self.trh} "
                f"requests={len(self.requests)}")


@dataclass
class FuzzFailure:
    case: FuzzCase
    violations: list[Violation]
    shrunk_events: int
    runaway: bool = False

    def describe(self) -> str:
        if self.runaway:
            return f"{self.case.describe()}: runaway (> {MAX_EVENTS} events)"
        head = str(self.violations[0]) if self.violations else "?"
        return (f"{self.case.describe()}: {len(self.violations)} "
                f"violation(s), first at event prefix "
                f"{self.shrunk_events} — {head}")


@dataclass
class FuzzReport:
    master_seed: int
    cases_run: int = 0
    events_checked: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"fuzz master_seed={hex(self.master_seed)}: "
                 f"{self.cases_run} case(s), {self.events_checked} events "
                 + ("OK" if self.ok else f"{len(self.failures)} FAILURES")]
        lines.extend("  " + f.describe() for f in self.failures)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Case derivation
# ---------------------------------------------------------------------------
def build_case(master_seed: int, index: int) -> FuzzCase:
    """Derive fuzz case ``index`` deterministically from the master seed."""
    seed = derive_seed(master_seed, f"fuzz-case-{index}")
    rng = random.Random(seed)
    banks = rng.choice((2, 4, 8))
    rows = rng.choice((64, 128))
    design = rng.choice(DESIGN_CHOICES)
    case = FuzzCase(
        index=index, seed=seed, design=design,
        page_policy=rng.choice(PAGE_POLICY_CHOICES),
        refresh_mode=rng.choice(REFRESH_MODE_CHOICES),
        banks=banks, rows=rows,
        trh=rng.choice((100, 250)),
        requests=tuple(_gen_requests(rng, banks, rows)),
    )
    return case


def _gen_requests(rng: random.Random, banks: int,
                  rows: int) -> list[RequestSpec]:
    n = rng.randrange(200, 600)
    write_frac = rng.uniform(0.0, 0.5)
    # three stream shapes, possibly blended
    hot = [(rng.randrange(banks), rng.randrange(rows))
           for _ in range(rng.randrange(1, 4))]
    pair_bank = rng.randrange(banks)
    pair_rows = (rng.randrange(rows), rng.randrange(rows))
    bursty = rng.random() < 0.5
    # hammer shape: cycle one bank through more rows than the FR-FCFS
    # window (so the open row is never a lookahead hit and every request
    # pays a fresh conflict ACT), paced past PRAC tRC so the queue stays
    # shallow — per-row ACT counts then cross ATH even for exact designs
    # (ath(100) = 65) and fuzz reaches the ALERT/RFM recovery paths
    hammer = rng.random() < 0.3
    ping_weight = 0.4
    cycle: tuple[int, ...] = ()
    if hammer:
        ping_weight = 0.9
        n = rng.randrange(800, 1100)
        base = rng.randrange(rows)
        cycle = tuple((base + j) % rows for j in range(10))
    out: list[RequestSpec] = []
    t = 0
    for _ in range(n):
        if hammer:
            t += rng.randrange(110 * NS, 140 * NS)
        else:
            t += rng.randrange(0, 4 * NS) if bursty \
                else rng.randrange(0, 120 * NS)
        roll = rng.random()
        if roll < ping_weight:  # conflict pressure on one bank
            bank, row = (pair_bank, cycle[len(out) % len(cycle)]) if hammer \
                else (pair_bank, pair_rows[len(out) % 2])
        elif roll < 0.75:  # hot rows (row-hit streaks, tracker pressure)
            bank, row = rng.choice(hot)
        else:
            bank, row = rng.randrange(banks), rng.randrange(rows)
        out.append(RequestSpec(arrival_ps=t, bank=bank, row=row,
                               is_write=rng.random() < write_frac))
    return out


def _make_policy(case: FuzzCase):
    if case.design == "baseline":
        return BaselinePolicy()
    overrides = _FUZZ_OVERRIDES.get(case.design, {})
    return mitigation_registry.make_policy(
        case.design, case.trh, case.banks, case.rows,
        refresh_groups=min(64, case.rows), seed=case.seed, **overrides)


# ---------------------------------------------------------------------------
# Micro-harness: one controller on a private heap
# ---------------------------------------------------------------------------
def run_case(case: FuzzCase) -> tuple[list[TraceEvent], list[Violation],
                                      bool]:
    """Execute one case; returns (events, violations, runaway)."""
    policy = _make_policy(case)
    config = DRAMConfig(banks_per_subchannel=case.banks,
                        rows_per_bank=case.rows)
    heap: list = []
    counter = iter(range(1 << 62))

    def scheduler(time_ps: int, callback) -> None:
        heapq.heappush(heap, (time_ps, next(counter), callback))

    serviced = []
    controller = MemoryController(
        subchannel=0, config=config, policy=policy,
        scheduler=scheduler, on_complete=serviced.append,
        page_policy=make_page_policy(case.page_policy),
        refresh_mode=case.refresh_mode)
    tracer = EventTracer(capacity=2_000_000)
    controller.tracer = tracer
    policy.tracer = tracer
    policy.tracer_subchannel = 0
    controller.start()
    for spec in case.requests:
        address = LineAddress(BankAddress(0, spec.bank, spec.row), 0)
        request = MemRequest(core=0, address=address,
                             arrival_ps=spec.arrival_ps,
                             is_write=spec.is_write)
        controller.enqueue(request, now=spec.arrival_ps)

    total = len(case.requests)
    popped = 0
    drain_deadline: int | None = None
    while heap:
        popped += 1
        if popped > MAX_EVENTS:
            return tracer.events(), [], True
        time_ps, _, callback = heapq.heappop(heap)
        if drain_deadline is None and len(serviced) == total \
                and not controller._alert_in_flight:
            # let pending closes / one refresh round settle, then stop
            drain_deadline = time_ps + 2 * policy.timing.tREFI
        if drain_deadline is not None and time_ps > drain_deadline \
                and not controller._alert_in_flight:
            break
        callback(time_ps)

    oracle = ConformanceOracle(OracleConfig.from_policy(
        policy, banks=case.banks, refresh_mode=case.refresh_mode))
    violations = oracle.verify(tracer.events())
    return tracer.events(), violations, False


def replay_case(master_seed: int, index: int) -> tuple[FuzzCase,
                                                       list[Violation]]:
    """Re-derive and re-run one case from its logged seeds."""
    case = build_case(master_seed, index)
    _, violations, _ = run_case(case)
    return case, violations


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
def shrink_prefix(items: Sequence, fails: Callable[[Sequence], bool]) -> int:
    """Smallest k such that ``fails(items[:k])``, by bisection.

    Assumes prefix-monotonicity (once a prefix fails, every extension
    fails) — true for oracle violations, which depend only on events up
    to and including the violating one.
    """
    if not fails(items):
        raise ValueError("full sequence does not fail")
    lo, hi = 1, len(items)
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(items[:mid]):
            hi = mid
        else:
            lo = mid + 1
    return hi


def _shrink_trace(case: FuzzCase, events: list[TraceEvent]) -> int:
    config_policy = _make_policy(case)
    oracle_config = OracleConfig.from_policy(
        config_policy, banks=case.banks, refresh_mode=case.refresh_mode)

    def fails(prefix) -> bool:
        return bool(ConformanceOracle(oracle_config).verify(list(prefix)))

    return shrink_prefix(events, fails)


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------
def run_fuzz(cases: int = 20, master_seed: int = 0xC4EC) -> FuzzReport:
    """Fuzz ``cases`` randomized controller scenarios."""
    report = FuzzReport(master_seed=master_seed)
    for index in range(cases):
        case = build_case(master_seed, index)
        events, violations, runaway = run_case(case)
        report.cases_run += 1
        report.events_checked += len(events)
        if runaway:
            report.failures.append(FuzzFailure(case, [], 0, runaway=True))
        elif violations:
            shrunk = _shrink_trace(case, events)
            report.failures.append(
                FuzzFailure(case, violations, shrunk))
    return report
