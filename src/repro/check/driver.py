"""Glue between design points and the conformance oracle.

:func:`verify_point` re-runs one :class:`~repro.sim.runner.DesignPoint`
with tracing enabled and replays the captured command stream through a
:class:`~repro.check.oracle.ConformanceOracle` configured from the same
policy parameters (but none of the simulator's timing machinery). This
is the primitive behind ``python -m repro.check.selfcheck`` and the
``repro.tools.campaign verify`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.tracer import EventTracer, TraceEvent
from ..sim.runner import DesignPoint, build_config, make_policy_factory, \
    run_point
from .oracle import ConformanceOracle, OracleConfig, Violation

#: ample for the reduced-scale points the verification runs use
TRACE_CAPACITY = 4_000_000


def oracle_config_for(point: DesignPoint) -> OracleConfig:
    """Oracle configuration matching a design point's device."""
    config = build_config(point)
    policy = make_policy_factory(point, config)(0)
    return OracleConfig.from_policy(policy,
                                    banks=config.dram.banks_per_subchannel,
                                    refresh_mode=point.refresh_mode)


@dataclass
class PointVerdict:
    """Outcome of verifying one design point's command stream."""

    point: DesignPoint
    events: list[TraceEvent]
    violations: list[Violation]
    events_checked: int = 0
    dropped: int = 0
    counts: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.dropped

    @property
    def label(self) -> str:
        return (f"{self.point.workload}.{self.point.design}"
                f".t{self.point.trh}.{self.point.refresh_mode}")

    def describe(self) -> str:
        name = self.label
        if self.ok:
            return (f"{name}: OK ({self.events_checked} events, "
                    f"{sum(self.counts.values())} recorded)")
        if self.dropped:
            return (f"{name}: INCOMPLETE ({self.dropped} events dropped "
                    f"by the ring — raise TRACE_CAPACITY)")
        head = "; ".join(str(v) for v in self.violations[:3])
        return f"{name}: {len(self.violations)} violation(s) — {head}"


def trace_point(point: DesignPoint,
                capacity: int = TRACE_CAPACITY) -> EventTracer:
    """Run the point with tracing on; returns the populated tracer."""
    tracer = EventTracer(capacity=capacity)
    run_point(point, tracer=tracer)
    return tracer


def verify_point(point: DesignPoint,
                 capacity: int = TRACE_CAPACITY) -> PointVerdict:
    """Trace one point and replay its stream through the oracle."""
    tracer = trace_point(point, capacity)
    oracle = ConformanceOracle(oracle_config_for(point))
    violations = oracle.verify(tracer.events())
    return PointVerdict(point=point, events=tracer.events(),
                        violations=violations,
                        events_checked=oracle.events_checked,
                        dropped=tracer.dropped, counts=tracer.counts())
