"""The simulation-service daemon: queue, dispatch, API, lifecycle.

One :class:`ServeServer` owns:

* a **priority queue** of journaled :class:`~repro.serve.jobs.Job`\\ s —
  higher ``priority`` dispatches first, FIFO within a priority;
* a **dispatcher** that starts up to ``max_jobs`` jobs concurrently;
  each job resolves its points through the shared
  :class:`~repro.serve.pool.PointRunner` (so per-point dedup and the
  result cache work *across* jobs);
* the **JSON API** (see :mod:`repro.serve.protocol` and
  ``docs/serving.md``): ``POST /submit``, ``GET /status``,
  ``GET /result``, ``POST /cancel``, ``GET /stats``, ``GET /healthz``,
  ``POST /shutdown``;
* **lifecycle**: SIGTERM/SIGINT (or ``POST /shutdown``) starts a
  graceful drain — submissions are refused with 503, running jobs get
  ``drain_s`` seconds to finish, anything still pending stays in the
  journal and resumes when the next server starts on the same state
  directory.

State directory layout::

    <state_dir>/journal.jsonl   durable queue (see repro.serve.jobs)
    <state_dir>/cache/          result cache (unless overridden)
    <state_dir>/serve.sock      default Unix API socket
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import pathlib
import signal
import time
from typing import Any, Callable

from ..exec.cache import CACHE_DIR_ENV, ResultCache, point_key
from ..exec.env import env_str
from ..exec.serialize import result_to_dict
from ..obs.exposition import CONTENT_TYPE, to_prometheus
from ..obs.log import get_logger
from ..obs.registry import StatsRegistry
from ..obs.spans import (Span, SpanTracer, install as install_spans, span,
                         uninstall as uninstall_spans)
from ..obs.timeseries import SeriesBoard
from ..sim.runner import DesignPoint
from .jobs import (CANCELLED, DONE, FAILED, QUEUED, RUNNING, Job, Journal,
                   make_job, next_job_id)
from .pool import PointFailed, PointRunner
from .protocol import (ProtocolError, Request, error_bytes, parse_address,
                       read_request, response_bytes, text_bytes)

log = get_logger(__name__)

#: Bucket edges (milliseconds) of the submit-to-done job histogram.
JOB_LATENCY_MS_BOUNDS = (10, 50, 100, 500, 1_000, 5_000, 30_000, 300_000)


def default_socket(state_dir: pathlib.Path) -> str:
    return f"unix:{state_dir / 'serve.sock'}"


def _wall_s() -> float:
    """Wall clock for job lifecycle stamps (submitted/started/finished).

    Operator-facing bookkeeping only: the stamps feed ``/status``, the
    journal, and the latency histogram — never a result document or a
    cache key (``tests/serve/test_clock_independence.py`` pins this).
    """
    # repro: allow(determinism) — lifecycle stamps, never in results
    return time.time()


def _span_ns() -> int:
    """Monotonic edge for lifecycle span records (queue/submit/job)."""
    # repro: allow(determinism) — span telemetry, never in results
    return time.perf_counter_ns()


def _rate(fn: Callable[[], float], interval_s: float) -> Callable[[], float]:
    """Turn a cumulative counter reader into a per-second rate sampler."""
    last: list[float | None] = [None]

    def sample() -> float:
        value = fn()
        previous, last[0] = last[0], value
        if previous is None:
            return 0.0
        return (value - previous) / interval_s
    return sample


def _key_summary(job: Job, limit: int = 3) -> str:
    """First few cache keys of a job's points, for log lines.

    Keys are truncated to 12 hex characters — enough to grep the full
    key out of ``/spans`` or the cache directory, short enough to keep
    multi-point lifecycle lines readable.
    """
    keys = [point_key(point)[:12] for point in job.points[:limit]]
    extra = len(job.points) - len(keys)
    summary = ",".join(keys)
    return f"{summary}+{extra}" if extra > 0 else summary


class ServeServer:
    """Long-running simulation service over a local socket."""

    def __init__(self, state_dir: str | pathlib.Path,
                 address: str | None = None,
                 workers: int | None = None,
                 max_jobs: int = 4,
                 drain_s: float = 5.0,
                 cache_dir: str | pathlib.Path | None = None,
                 cache: Any = "auto",
                 simulate_fn: Callable[[Any], tuple[Any, float]] | None = None,
                 executor_factory: Callable[[int], Any] | None = None,
                 encoder: Callable[[Any], dict] = result_to_dict,
                 metrics_interval_s: float = 1.0,
                 node_id: str | None = None,
                 max_queue: int | None = None,
                 remote_cache: str | pathlib.Path | None = None,
                 claim_ttl_s: float | None = None):
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.address = address or default_socket(self.state_dir)
        self.kind, self.target = parse_address(self.address)
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.max_jobs = max_jobs
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.node_id = node_id or self.address
        self.drain_s = drain_s
        self.encoder = encoder
        self.journal_path = self.state_dir / "journal.jsonl"

        if cache == "auto":
            if cache_dir is None:
                cache_dir = env_str(CACHE_DIR_ENV) \
                    or self.state_dir / "cache"
            # fabric mode: a shared remote tier turns the local cache
            # into a TieredCache (read-through, write-behind, claims)
            from ..fabric import remote_dir
            remote_root = remote_cache if remote_cache is not None \
                else remote_dir()
            if remote_root:
                from ..fabric.tiers import make_tiered_cache
                cache = make_tiered_cache(cache_dir, remote_root,
                                          owner=self.node_id,
                                          claim_ttl_s=claim_ttl_s)
            else:
                cache = ResultCache(cache_dir)
        self.cache = cache

        self.registry = StatsRegistry()
        self.runner = PointRunner(workers=workers, cache=self.cache,
                                  registry=self.registry,
                                  simulate_fn=simulate_fn,
                                  executor_factory=executor_factory)
        self._c_submitted = self.registry.counter("serve.jobs_submitted")
        self._c_resumed = self.registry.counter("serve.jobs_resumed")
        self._c_completed = self.registry.counter("serve.jobs_completed")
        self._c_failed = self.registry.counter("serve.jobs_failed")
        self._c_cancelled = self.registry.counter("serve.jobs_cancelled")
        self._c_rejected = self.registry.counter("serve.jobs_rejected")
        self._c_shed = self.registry.counter("serve.jobs_shed")
        self._c_hedged = self.registry.counter("serve.jobs_hedged")
        self._h_latency = self.registry.histogram("serve.job_latency_ms",
                                                  JOB_LATENCY_MS_BOUNDS)
        self.registry.register("serve", lambda: {
            "queue_depth": self.queue_depth(),
            "jobs_running": sum(1 for j in self._jobs.values()
                                if j.state == RUNNING),
            "jobs_known": len(self._jobs),
            "draining": int(self._draining),
        })
        if self._fabric_cache():
            self.registry.register("fabric.node", lambda: {
                "queue_depth": self.queue_depth(),
                "max_queue": self.max_queue or 0,
                "saturated": int(self.max_queue is not None
                                 and self.queue_depth() >= self.max_queue),
                "remote_hit_rate": self.cache.remote.hit_rate,
            })

        #: wall-clock span tracer covering the whole job lifecycle;
        #: installed into the event loop's context by :meth:`run`
        self.spans = SpanTracer()
        self._job_spans: dict[str, Span] = {}
        self._queued_ns: dict[str, int] = {}
        if metrics_interval_s <= 0:
            raise ValueError("metrics_interval_s must be positive")
        self.metrics_interval_s = metrics_interval_s
        self.board = SeriesBoard(interval_s=metrics_interval_s)
        self._register_series()
        self._sampler: asyncio.Task | None = None

        self._jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._tasks: dict[str, asyncio.Task] = {}
        self._counter = 1
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._queue_event = asyncio.Event()
        self._job_slots = asyncio.Semaphore(max_jobs)
        self._server: asyncio.AbstractServer | None = None
        self._done = asyncio.Event()
        self.journal: Journal | None = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _fabric_cache(self) -> bool:
        """Is the cache fabric-tiered (remote counters + claims)?"""
        return hasattr(self.cache, "remote") \
            and hasattr(self.cache, "try_claim")

    def _register_series(self) -> None:
        board = self.board
        board.register("serve.queue_depth", self.queue_depth)
        board.register("serve.jobs_running",
                       lambda: sum(1 for j in self._jobs.values()
                                   if j.state == RUNNING))
        board.register("serve.jobs_completed",
                       lambda: self._c_completed.value)
        board.register("serve.jobs_per_s",
                       _rate(lambda: self._c_completed.value,
                             self.metrics_interval_s))
        board.register("serve.job_latency_p50_ms",
                       lambda: self._h_latency.percentile(0.5))
        board.register("serve.job_latency_p99_ms",
                       lambda: self._h_latency.percentile(0.99))
        for name in ("inflight_points", "running_points", "dedup_hits",
                     "cache_hits", "cache_misses", "points_simulated"):
            board.register(f"serve.pool.{name}",
                           lambda key=name: self.runner.gauges()[key])
        board.register("serve.pool.cache_hit_rate", self._cache_hit_rate)
        board.register("serve.pool.points_per_s",
                       _rate(self._points_resolved,
                             self.metrics_interval_s))
        if self._fabric_cache():
            # fabric health: what an operator watches to see sharding,
            # hedging, and admission control actually working
            board.register("fabric.queue_depth", self.queue_depth)
            board.register("fabric.hedge_rate",
                           _rate(lambda: self._c_hedged.value,
                                 self.metrics_interval_s))
            board.register("fabric.remote_hit_rate",
                           lambda: self.cache.remote.hit_rate)
            board.register("fabric.shed_count",
                           lambda: self._c_shed.value)
            board.register("fabric.remote_waits",
                           lambda: self.runner.gauges()["remote_waits"])

    def _cache_hit_rate(self) -> float:
        gauges = self.runner.gauges()
        total = gauges["cache_hits"] + gauges["cache_misses"]
        return gauges["cache_hits"] / total if total else 0.0

    def _points_resolved(self) -> float:
        gauges = self.runner.gauges()
        return (gauges["points_simulated"] + gauges["cache_hits"]
                + gauges["dedup_hits"])

    async def _sample_loop(self) -> None:
        while True:
            self.board.sample()
            await asyncio.sleep(self.metrics_interval_s)

    def _begin_job_span(self, job: Job) -> Span:
        """Root span of a job's lifecycle tree (lazy for resumed jobs)."""
        root = self._job_spans.get(job.id)
        if root is None:
            root = self.spans.begin("serve.job", job_id=job.id,
                                    points=len(job.points),
                                    priority=job.priority)
            self._job_spans[job.id] = root
        return root

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(1 for j in self._jobs.values() if j.state == QUEUED)

    def _enqueue(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._queued_ns.setdefault(job.id, _span_ns())
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job.id))
        self._queue_event.set()

    def _pop_next(self) -> Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            if job is not None and job.state == QUEUED:
                return job
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self, on_ready: Callable[[], None] | None = None) -> int:
        """Serve until drained. Returns 0 on a clean shutdown."""
        # install before any task is spawned: dispatcher and job tasks
        # copy this context, so spans opened anywhere in the execution
        # path (pool, cache) attach to the server's tracer
        spans_token = install_spans(self.spans)
        pending = Journal.load(self.journal_path)
        self._counter = next_job_id([job.id for job in pending])
        Journal.compact(self.journal_path, pending)
        self.journal = Journal(self.journal_path)
        for job in pending:
            self._enqueue(job)
            self._c_resumed.inc()
        if pending:
            log.info("resumed %d journaled job(s)", len(pending))

        if self.kind == "unix":
            self._unlink_stale_socket()
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.target)
        else:
            host, port = self.target
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port)
        self._install_signal_handlers()
        dispatcher = asyncio.ensure_future(self._dispatch())
        self._sampler = asyncio.ensure_future(self._sample_loop())
        log.info("serving on %s (workers=%d, max_jobs=%d, cache=%s)",
                 self.address, self.runner.workers, self.max_jobs,
                 self.cache.directory)
        if on_ready is not None:
            on_ready()
        try:
            await self._done.wait()
        finally:
            dispatcher.cancel()
            self._sampler.cancel()
            self._remove_signal_handlers()
            uninstall_spans(spans_token)
        log.info("shut down cleanly (%d job(s) left journaled)",
                 self.queue_depth())
        return 0

    def _unlink_stale_socket(self) -> None:
        try:
            os.unlink(self.target)
        except FileNotFoundError:
            pass

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # non-main thread (tests) or platforms without signals
                return

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                return

    def request_drain(self) -> None:
        """Begin a graceful shutdown (idempotent; signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        log.info("drain requested: refusing new jobs, waiting up to "
                 "%.1fs for %d running job(s)", self.drain_s,
                 len([t for t in self._tasks.values() if not t.done()]))
        self._draining = True
        self._queue_event.set()  # wake the dispatcher so it exits
        running = [t for t in self._tasks.values() if not t.done()]
        if running:
            _, still_pending = await asyncio.wait(running,
                                                  timeout=self.drain_s)
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.wait(still_pending, timeout=2.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.runner.shutdown()
        close_cache = getattr(self.cache, "close", None)
        if close_cache is not None:
            # tiered cache: flush the write-behind queue so every
            # result this node produced is on the remote tier before
            # the process exits (a survivor may be waiting on it)
            close_cache()
        if self.journal is not None:
            self.journal.close()
        if self.kind == "unix":
            self._unlink_stale_socket()
        self._done.set()

    # ------------------------------------------------------------------
    # Dispatch + job execution
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        while not self._draining:
            if not any(True for j in self._jobs.values()
                       if j.state == QUEUED):
                self._queue_event.clear()
                await self._queue_event.wait()
                continue
            await self._job_slots.acquire()
            if self._draining:
                self._job_slots.release()
                return
            job = self._pop_next()
            if job is None:
                self._job_slots.release()
                continue
            # claim synchronously: the job task may not get scheduled
            # for a while, and the loop above must not see this job as
            # still queued (it would busy-spin on an empty heap)
            job.state = RUNNING
            root = self._begin_job_span(job)
            queued_ns = self._queued_ns.pop(job.id, None)
            if queued_ns is not None:
                self.spans.record("serve.queue", queued_ns,
                                  _span_ns(),
                                  parent_id=root.span_id, job_id=job.id)
            task = asyncio.ensure_future(self._run_job(job))
            self._tasks[job.id] = task
            task.add_done_callback(
                lambda done, job_id=job.id: self._job_finished(job_id))

    def _job_finished(self, job_id: str) -> None:
        self._tasks.pop(job_id, None)
        self._job_slots.release()

    async def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_s = _wall_s()
        log.info("job_id=%s: running %d point(s) (priority %d) keys=%s",
                 job.id, len(job.points), job.priority, _key_summary(job))
        try:
            # entered before gather creates the point tasks, so every
            # serve.point span below lands inside this job's tree
            with span("serve.execute", parent=self._begin_job_span(job),
                      job_id=job.id):
                gathered = asyncio.gather(
                    *(self.runner.resolve(point) for point in job.points))
                if job.timeout_s is not None:
                    results = await asyncio.wait_for(gathered,
                                                     job.timeout_s)
                else:
                    results = await gathered
        except asyncio.CancelledError:
            if self._draining:
                # drain: leave the submission journaled (no terminal
                # record) so the next server resumes it
                job.state = QUEUED
                job.started_s = None
                log.info("job_id=%s: interrupted by drain; left "
                         "journaled keys=%s", job.id, _key_summary(job))
            else:
                self._finish(job, CANCELLED)
        except asyncio.TimeoutError:
            self._finish(job, FAILED,
                         f"timeout after {job.timeout_s:g}s")
        except PointFailed as error:
            self._finish(job, FAILED, str(error))
        except Exception as error:  # pragma: no cover - defensive
            log.exception("%s: unexpected failure", job.id)
            self._finish(job, FAILED,
                         f"{type(error).__name__}: {error}")
        else:
            job.results = list(results)
            self._finish(job, DONE)
            self._h_latency.observe(
                (job.finished_s - job.submitted_s) * 1000.0)

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_s = _wall_s()
        if self.journal is not None:
            self.journal.record_state(job.id, state, error)
        counter = {DONE: self._c_completed, FAILED: self._c_failed,
                   CANCELLED: self._c_cancelled}[state]
        counter.inc()
        root = self._job_spans.pop(job.id, None)
        if root is not None:
            root.attrs["state"] = state
            self.spans.end(root)
        self._queued_ns.pop(job.id, None)
        log.info("job_id=%s: %s%s keys=%s", job.id, state,
                 f" ({error})" if error else "", _key_summary(job))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                payload = self._route(request)
            except ProtocolError as error:
                payload = error_bytes(400, str(error))
            except Exception as error:  # pragma: no cover - defensive
                log.exception("request handling failed")
                payload = error_bytes(
                    500, f"{type(error).__name__}: {error}")
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, request: Request) -> bytes:
        method, path = request.method, request.path
        if path == "/healthz":
            return response_bytes(200, {
                "ok": True, "draining": self._draining,
                "queue_depth": self.queue_depth(),
                "node_id": self.node_id,
                "max_queue": self.max_queue,
            })
        if path == "/stats":
            return response_bytes(200, self.registry.snapshot())
        if path == "/metrics":
            return self._metrics(request)
        if path == "/spans":
            return self._spans(request)
        if path == "/status":
            return self._status(request)
        if path == "/result":
            return self._result(request)
        if method != "POST":
            return error_bytes(405, f"{method} {path} not supported")
        if path == "/submit":
            return self._submit(request.json())
        if path == "/cancel":
            return self._cancel(request.json())
        if path == "/shutdown":
            self.request_drain()
            return response_bytes(202, {"draining": True})
        return error_bytes(404, f"unknown endpoint {path}")

    def _metrics(self, request: Request) -> bytes:
        """Live metrics: Prometheus text by default, ``?format=json``
        additionally carries the sampled time-series rings."""
        fmt = request.query.get("format", "prometheus")
        snapshot = self.registry.snapshot()
        if fmt == "json":
            return response_bytes(200, {"stats": snapshot,
                                        "series": self.board.as_dict()})
        if fmt != "prometheus":
            return error_bytes(400, f"unknown metrics format {fmt!r}")
        return text_bytes(200, to_prometheus(snapshot), CONTENT_TYPE)

    def _spans(self, request: Request) -> bytes:
        name = request.query.get("name")
        records = self.spans.spans(name)
        return response_bytes(200, {
            "dropped": self.spans.dropped,
            "spans": [record.as_dict() for record in records],
        })

    def _submit(self, body: Any) -> bytes:
        if self._draining:
            self._c_rejected.inc()
            return error_bytes(503, "server is draining")
        if self.max_queue is not None \
                and self.queue_depth() >= self.max_queue:
            # admission control: a saturated queue sheds the job with a
            # retryable 503 so a fabric router re-places it on the next
            # rendezvous owner instead of piling latency here
            self._c_shed.inc()
            return error_bytes(
                503, f"queue full ({self.queue_depth()} queued, "
                     f"admission bound {self.max_queue})")
        if not isinstance(body, dict):
            raise ProtocolError("submit body must be a JSON object")
        raw_points = body.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise ProtocolError("'points' must be a non-empty list")
        try:
            points = [DesignPoint(**fields) for fields in raw_points]
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"bad design point: {error}") from None
        priority = body.get("priority", 0)
        timeout_s = body.get("timeout_s")
        hedge = body.get("hedge", False)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError("'priority' must be an integer")
        if timeout_s is not None and (
                not isinstance(timeout_s, (int, float))
                or isinstance(timeout_s, bool) or timeout_s <= 0):
            raise ProtocolError("'timeout_s' must be a positive number")
        if not isinstance(hedge, bool):
            raise ProtocolError("'hedge' must be a boolean")
        if hedge:
            # fabric hedge of a slow primary: counted so hedge
            # amplification is visible; the point-level claims keep it
            # from ever duplicating a simulation
            self._c_hedged.inc()

        job = make_job(self._counter, points, priority=priority,
                       timeout_s=timeout_s)
        self._counter += 1
        root = self._begin_job_span(job)
        submit_ns = _span_ns()
        # durable before the client learns the id: a crash after this
        # line re-runs the job, never loses it
        self.journal.record_submit(job)
        self._enqueue(job)
        self.spans.record("serve.submit", submit_ns,
                          _span_ns(),
                          parent_id=root.span_id, job_id=job.id)
        self._c_submitted.inc()
        log.info("job_id=%s: accepted %d point(s) (priority %d) keys=%s",
                 job.id, len(points), priority, _key_summary(job))
        return response_bytes(200, job.public())

    def _status(self, request: Request) -> bytes:
        job_id = request.query.get("id")
        if job_id is None:
            summary = [job.public() for job in self._jobs.values()]
            summary.sort(key=lambda doc: doc["id"])
            return response_bytes(200, {"jobs": summary})
        job = self._jobs.get(job_id)
        if job is None:
            return error_bytes(404, f"unknown job {job_id!r}")
        return response_bytes(200, job.public())

    def _result(self, request: Request) -> bytes:
        job_id = request.query.get("id")
        if job_id is None:
            raise ProtocolError("missing ?id= query parameter")
        job = self._jobs.get(job_id)
        if job is None:
            return error_bytes(404, f"unknown job {job_id!r}")
        if job.state != DONE:
            doc = job.public()
            doc["error"] = job.error or f"job is {job.state}, not done"
            return response_bytes(409, doc)
        return response_bytes(200, {
            "id": job.id,
            "state": job.state,
            "results": [self.encoder(result) for result in job.results],
        })

    def _cancel(self, body: Any) -> bytes:
        if not isinstance(body, dict) or "id" not in body:
            raise ProtocolError("cancel body must be {\"id\": ...}")
        job_id = str(body["id"])
        job = self._jobs.get(job_id)
        if job is None:
            return error_bytes(404, f"unknown job {job_id!r}")
        if job.state == QUEUED:
            self._finish(job, CANCELLED, "cancelled while queued")
        elif job.state == RUNNING:
            task = self._tasks.get(job_id)
            if task is not None:
                task.cancel()
        return response_bytes(200, job.public())
