"""Point execution for the daemon: dedup, cache, retries, backoff.

:class:`PointRunner` is the bridge between asyncio land (jobs are
coroutines) and CPU land (simulations run in a bounded
``ProcessPoolExecutor``). Every design point a job needs goes through
:meth:`PointRunner.resolve`, which applies, in order:

1. **cache short-circuit** — completed points come straight out of the
   content-addressed :class:`~repro.exec.cache.ResultCache`;
2. **in-flight deduplication** — if any job is already simulating the
   same cache key, the caller awaits that execution instead of
   starting a second one (``serve.dedup_hits``);
3. **execution** — the point is simulated in a worker process under a
   global concurrency semaphore, then written back to the cache.

When the cache is a fabric :class:`~repro.exec.cache.TieredCache`,
step 3 grows a *fabric-wide* dedup layer: before simulating, the
runner must win the remote tier's in-flight claim for the key. Losing
the claim means another node is already simulating the point (a
hedged duplicate, or a raced submission), so this runner polls the
remote tier for that node's result instead of burning a worker on a
second simulation (``serve.remote_waits``). A claim older than the
tier's TTL marks a dead claimant (SIGKILLed node); the runner steals
it and simulates after all — that is how a lost node's in-flight
points complete on survivors.

Worker crashes (``BrokenProcessPool``) rebuild the pool and retry the
point with exponential backoff, up to ``max_retries`` times; a point
that raises a normal (deterministic) exception fails immediately as
:class:`PointFailed` without retry — re-running it would only fail the
same way.

Cancellation is cooperative at the *job* level: a cancelled job stops
awaiting its points, but an execution that other jobs share — or that
has already entered a worker — runs to completion and still populates
the cache. Nothing is ever torn down mid-simulation.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable

from ..exec.cache import ResultCache, point_key
from ..exec.engine import _simulate_point, default_workers
from ..obs.log import get_logger
from ..obs.registry import StatsRegistry
from ..obs.spans import span

log = get_logger(__name__)

#: Bucket edges (milliseconds) of the per-point simulation histogram.
POINT_WALL_MS_BOUNDS = (10, 50, 100, 500, 1_000, 5_000, 30_000, 120_000)

#: Sentinel: the claim negotiation says "simulate it yourself".
_SIMULATE = object()


class PointFailed(RuntimeError):
    """A design point could not be resolved."""

    def __init__(self, point: Any, reason: str):
        self.point = point
        self.reason = reason
        super().__init__(
            f"{getattr(point, 'workload', '?')}."
            f"{getattr(point, 'design', '?')}: {reason}")


class PointRunner:
    """Deduplicated, cached, crash-tolerant point execution."""

    def __init__(self, workers: int | None = None,
                 cache: ResultCache | None = None,
                 registry: StatsRegistry | None = None,
                 simulate_fn: Callable[[Any], tuple[Any, float]] | None = None,
                 executor_factory: Callable[[int], Any] | None = None,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.25,
                 claim_poll_s: float = 0.05):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = cache
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.claim_poll_s = claim_poll_s
        #: fabric mode: the cache carries a remote tier with claims
        self._claiming = cache is not None and \
            hasattr(cache, "try_claim") and hasattr(cache, "peek_remote")
        self._simulate = simulate_fn or _simulate_point
        self._executor_factory = executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n))
        self._executor = None
        self._sem = asyncio.Semaphore(self.workers)
        self._inflight: dict[str, asyncio.Task] = {}
        self._running = 0

        registry = registry if registry is not None else StatsRegistry()
        self.registry = registry
        self._c_requested = registry.counter("serve.points_requested")
        self._c_cache_hits = registry.counter("serve.cache_hits")
        self._c_cache_misses = registry.counter("serve.cache_misses")
        self._c_dedup = registry.counter("serve.dedup_hits")
        self._c_simulated = registry.counter("serve.points_simulated")
        self._c_failed = registry.counter("serve.points_failed")
        self._c_restarts = registry.counter("serve.worker_restarts")
        self._c_retries = registry.counter("serve.point_retries")
        self._c_remote_waits = registry.counter("serve.remote_waits")
        self._h_wall = registry.histogram("serve.point_wall_ms",
                                          POINT_WALL_MS_BOUNDS)
        registry.register("serve.pool", lambda: {
            "inflight_points": len(self._inflight),
            "running_points": self._running,
            "workers": self.workers,
        })
        if self.cache is not None:
            self.cache.register_stats(registry)

    # ------------------------------------------------------------------
    async def resolve(self, point: Any) -> Any:
        """Resolve one design point (cache -> in-flight -> simulate)."""
        key = point_key(point)
        with span("serve.point", key=key, workload=point.workload,
                  design=point.design):
            return await self._resolve(point, key)

    async def _resolve(self, point: Any, key: str) -> Any:
        self._c_requested.inc()
        if self.cache is not None:
            with span("serve.cache_lookup", key=key):
                result = self.cache.get(point)
            if result is not None:
                self._c_cache_hits.inc()
                return result
            self._c_cache_misses.inc()
        task = self._inflight.get(key)
        if task is not None:
            self._c_dedup.inc()
            with span("serve.dedup_wait", key=key):
                return await asyncio.shield(task)
        task = asyncio.ensure_future(self._execute(point, key))
        self._inflight[key] = task
        task.add_done_callback(
            lambda done, k=key: self._retire(k, done))
        # shield: cancelling THIS caller (job timeout/cancel) must not
        # kill an execution other jobs may be sharing
        return await asyncio.shield(task)

    def _retire(self, key: str, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        if not task.cancelled() and task.exception() is not None:
            # consume the exception so abandoned executions (all their
            # waiting jobs were cancelled) don't warn at GC time; live
            # waiters still observe it through the shield
            pass

    async def _claim_or_result(self, point: Any, key: str) -> Any:
        """Win the remote tier's in-flight claim for ``key``, or return
        the result the current claim holder produced.

        Returns :data:`_SIMULATE` once this runner holds the claim.
        Every successful claim acquisition is followed by a remote
        re-check: the previous holder releases only *after* its result
        write lands on the writer queue (FIFO), but our pre-claim peek
        may have raced that write — without the re-check a release
        observed between peek and claim would trigger a duplicate
        simulation of an already-published point.
        """
        cache = self.cache
        waited = False
        while True:
            if cache.try_claim(key):
                result = cache.peek_remote(point)
                if result is not None:
                    cache.release_claim(key)
                    return result
                return _SIMULATE
            if not waited:
                waited = True
                self._c_remote_waits.inc()
            result = cache.peek_remote(point)
            if result is not None:
                return result
            age = cache.claim_age_s(key)
            if age is not None and age > cache.claim_ttl_s:
                # claim holder presumed dead (SIGKILL, power loss):
                # steal — the tier guarantees a single rename winner —
                # and simulate the orphaned point here
                if cache.steal_claim(key):
                    result = cache.peek_remote(point)
                    if result is not None:
                        cache.release_claim(key)
                        return result
                    log.warning("stole stale claim (%.1fs old) for "
                                "key=%s; simulating here", age, key)
                    return _SIMULATE
            await asyncio.sleep(self.claim_poll_s)

    async def _execute(self, point: Any, key: str) -> Any:
        loop = asyncio.get_running_loop()
        async with self._sem:
            claimed = False
            if self._claiming:
                with span("serve.claim", key=key):
                    outcome = await self._claim_or_result(point, key)
                if outcome is not _SIMULATE:
                    return outcome
                claimed = True
            attempt = 0
            self._running += 1
            try:
                while True:
                    if self._executor is None:
                        self._executor = self._executor_factory(self.workers)
                    try:
                        with span("serve.simulate", key=key):
                            result, wall = await loop.run_in_executor(
                                self._executor, self._simulate, point)
                        break
                    except BrokenExecutor as error:
                        self._c_restarts.inc()
                        self._rebuild_executor()
                        if attempt >= self.max_retries:
                            self._c_failed.inc()
                            raise PointFailed(
                                point, f"worker crashed {attempt + 1} "
                                       f"times ({error})") from None
                        attempt += 1
                        self._c_retries.inc()
                        delay = self.retry_backoff_s * (2 ** (attempt - 1))
                        log.warning("worker crashed on %s key=%s; retry "
                                    "%d/%d in %.2fs", point, key, attempt,
                                    self.max_retries, delay)
                        await asyncio.sleep(delay)
                    except Exception as error:
                        # deterministic simulation error: no retry
                        self._c_failed.inc()
                        raise PointFailed(
                            point,
                            f"{type(error).__name__}: {error}") from error
            except BaseException:
                # failure or cancellation while holding the fabric
                # claim: release it so another node can simulate the
                # point instead of waiting out the staleness TTL
                if claimed:
                    self.cache.release_claim(key)
                raise
            finally:
                self._running -= 1
        self._c_simulated.inc()
        self._h_wall.observe(wall * 1000.0)
        if self.cache is not None:
            with span("serve.cache_write", key=key):
                if claimed:
                    # publishes to the remote tier, then releases the
                    # claim — in that order, on one FIFO queue, so a
                    # waiter never sees claim-gone-without-result
                    self.cache.put_claimed(point, result)
                else:
                    self.cache.put(point, result)
        return result

    def gauges(self) -> dict[str, float]:
        """Live values for the daemon's time-series sampler."""
        return {
            "inflight_points": len(self._inflight),
            "running_points": self._running,
            "dedup_hits": self._c_dedup.value,
            "cache_hits": self._c_cache_hits.value,
            "cache_misses": self._c_cache_misses.value,
            "points_simulated": self._c_simulated.value,
            "points_requested": self._c_requested.value,
            "remote_waits": self._c_remote_waits.value,
        }

    def _rebuild_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop everything; pending in-flight tasks are cancelled."""
        for task in list(self._inflight.values()):
            task.cancel()
        self._inflight.clear()
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
