"""End-to-end self-check of the daemon (``python -m repro.serve.smoke``).

Boots a real server subprocess and verifies the service contracts:

1. **Correctness under concurrency** — three clients submitting
   overlapping sweep points all receive results bit-identical (modulo
   wall-time provenance) to the serial :mod:`repro.exec` path.
2. **Deduplication** — overlapping submissions execute once per cache
   key (``serve.dedup_hits`` > 0) and the cache wrote exactly one
   entry per unique point (``exec.cache.writes``).
3. **Durability** — SIGTERM mid-queue drains cleanly (exit 0), leaves
   unfinished jobs journaled, and a restarted server resumes and
   completes them.

Exit status 0 on success; nonzero with a diagnostic otherwise. CI runs
this via ``make serve-smoke``.

Options::

    python -m repro.serve.smoke [--workers N] [--quiet]
"""

from __future__ import annotations

import argparse
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading

from ..exec.engine import SweepEngine
from ..exec.serialize import result_to_dict
from ..obs.log import configure, get_logger
from ..sim.runner import DesignPoint
from .client import ServeClient
from .jobs import Journal

log = get_logger("repro.serve.smoke")

FAST = dict(trh=500, instructions=6_000, rows_per_bank=512,
            refresh_scale=1 / 256)
WORKLOADS = ("add", "mcf")


def smoke_points(seed: int = 0x5EED) -> list[DesignPoint]:
    points: list[DesignPoint] = []
    for workload in WORKLOADS:
        point = DesignPoint(workload=workload, design="mopac-d",
                            seed=seed, **FAST)
        points.append(point)
        points.append(point.baseline())
    return points


def comparable(result) -> dict:
    """Result document with the machine-dependent provenance removed."""
    document = result_to_dict(result)
    document.pop("phases", None)
    return document


def serial_reference(points: list[DesignPoint]) -> list[dict]:
    engine = SweepEngine(parallel=False, cache=None, use_memo=False)
    return [comparable(result) for result in engine.run(points)]


def start_server(state_dir: pathlib.Path, address: str, workers: int,
                 max_jobs: int, drain_s: float) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--state-dir", str(state_dir), "--address", address,
         "--workers", str(workers), "--max-jobs", str(max_jobs),
         "--drain-s", str(drain_s)])
    return process


def stop_server(process: subprocess.Popen, timeout_s: float = 30.0) -> int:
    process.send_signal(signal.SIGTERM)
    return process.wait(timeout=timeout_s)


# ----------------------------------------------------------------------
# Leg 1: concurrent clients, dedup, bit-identical results
# ----------------------------------------------------------------------
def check_concurrent(address: str, workers: int) -> int:
    points = smoke_points()
    expected = serial_reference(points)
    by_key = dict(zip(range(len(points)), expected))

    # overlapping submissions: client 0 carries a duplicate point, so
    # at least one in-flight dedup is guaranteed even if scheduling
    # races make the cross-client overlap resolve through the cache
    submissions = [
        [0, 1, 2, 3, 0],     # all points + duplicate of the first
        [0, 1],
        [2, 3],
    ]
    failures: list[str] = []

    def client_thread(name: str, indices: list[int]) -> None:
        client = ServeClient(address)
        job_id = client.submit([points[i] for i in indices])
        status = client.wait(job_id, timeout_s=300.0)
        if status["state"] != "done":
            failures.append(f"{name}: job {job_id} ended "
                            f"{status['state']}: {status['error']}")
            return
        got = [comparable(r) for r in client.result(job_id)]
        want = [by_key[i] for i in indices]
        if got != want:
            failures.append(f"{name}: results differ from serial run")

    threads = [threading.Thread(target=client_thread,
                                args=(f"client-{n}", indices))
               for n, indices in enumerate(submissions)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for failure in failures:
        log.error("FAIL: %s", failure)
    if failures:
        return 1

    stats = ServeClient(address).stats()
    log.info("server stats: dedup=%d cache_hits=%d simulated=%d "
             "cache_writes=%d", stats.get("serve.dedup_hits", 0),
             stats.get("serve.cache_hits", 0),
             stats.get("serve.points_simulated", 0),
             stats.get("exec.cache.writes", 0))
    if stats.get("serve.dedup_hits", 0) < 1:
        log.error("FAIL: no in-flight dedup observed "
                  "(serve.dedup_hits == 0)")
        return 1
    if stats.get("exec.cache.writes", 0) != len(points):
        log.error("FAIL: expected exactly %d cache writes (one per "
                  "unique point), saw %s", len(points),
                  stats.get("exec.cache.writes"))
        return 1
    if "exec.cache.hits" not in stats or "exec.cache.misses" not in stats:
        log.error("FAIL: exec.cache counters missing from /stats")
        return 1
    if stats.get("serve.jobs_completed", 0) != len(submissions):
        log.error("FAIL: expected %d completed jobs, saw %s",
                  len(submissions), stats.get("serve.jobs_completed"))
        return 1
    log.info("OK: %d concurrent clients, results == serial, dedup "
             "observed", len(submissions))
    return 0


# ----------------------------------------------------------------------
# Leg 2: SIGTERM mid-queue, journal resume
# ----------------------------------------------------------------------
def check_restart(tmp: pathlib.Path, workers: int) -> int:
    state_dir = tmp / "restart-state"
    address = f"unix:{tmp / 'restart.sock'}"
    points = smoke_points(seed=7)  # cold keys: real work to interrupt
    jobs = [[points[0], points[1]], [points[2], points[3]],
            [points[0], points[3]]]
    expected = serial_reference(points)
    by_doc = {id(p): doc for p, doc in zip(points, expected)}

    # deliberately starved server: one worker, one job at a time, and
    # a near-zero drain, so SIGTERM right after the submits is
    # guaranteed to strand jobs in the queue
    process = start_server(state_dir, address, workers=1, max_jobs=1,
                           drain_s=0.2)
    client = ServeClient(address)
    client.wait_ready()
    job_ids = [client.submit(job) for job in jobs]
    code = stop_server(process)
    if code != 0:
        log.error("FAIL: draining server exited %d", code)
        return 1
    pending = Journal.load(state_dir / "journal.jsonl")
    log.info("after SIGTERM: %d of %d jobs still journaled",
             len(pending), len(jobs))
    if not pending:
        log.error("FAIL: SIGTERM mid-queue left no journaled jobs "
                  "(drain finished everything; cannot test resume)")
        return 1

    process = start_server(state_dir, address, workers=workers,
                           max_jobs=4, drain_s=10.0)
    try:
        client.wait_ready()
        pending_ids = {job.id for job in pending}
        for job_id, job_points in zip(job_ids, jobs):
            if job_id not in pending_ids:
                continue  # finished before the SIGTERM; compacted away
            status = client.wait(job_id, timeout_s=300.0,
                                 tolerate_disconnects=True)
            if status["state"] != "done":
                log.error("FAIL: resumed job %s ended %s: %s", job_id,
                          status["state"], status["error"])
                return 1
            got = [comparable(r) for r in client.result(job_id)]
            want = [by_doc[id(p)] for p in job_points]
            if got != want:
                log.error("FAIL: resumed job %s results differ from "
                          "serial run", job_id)
                return 1
        leftovers = Journal.load(state_dir / "journal.jsonl")
        if leftovers:
            log.error("FAIL: %d jobs still journaled after resume",
                      len(leftovers))
            return 1
        log.info("OK: restart resumed and completed %d journaled "
                 "job(s), bit-identical to serial", len(pending))
        return 0
    finally:
        if stop_server(process) != 0:
            log.error("FAIL: final shutdown was not clean")
            return 1


def run_smoke(workers: int) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as name:
        tmp = pathlib.Path(name)
        state_dir = tmp / "state"
        address = f"unix:{tmp / 'serve.sock'}"
        process = start_server(state_dir, address, workers=workers,
                               max_jobs=4, drain_s=10.0)
        try:
            ServeClient(address).wait_ready()
            code = check_concurrent(address, workers)
        finally:
            stop_code = stop_server(process)
        if code:
            return code
        if stop_code != 0:
            log.error("FAIL: server exited %d on SIGTERM", stop_code)
            return 1
        return check_restart(tmp, workers)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke", description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    return run_smoke(args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
