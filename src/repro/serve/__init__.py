"""Simulation-as-a-service: a local daemon over the sweep substrate.

``repro.serve`` turns the :mod:`repro.exec` engine into a shared,
long-running service so that every consumer (campaign CLI, analysis
prefetch, benchmarks, ad-hoc scripts) stops owning its own process
pool: concurrent clients submitting overlapping work share one
execution per cache key, completed points short-circuit through the
on-disk result cache, and a JSONL journal makes the queue survive
crashes and restarts.

Public surface:

* :class:`~repro.serve.server.ServeServer` — the asyncio daemon
  (``python -m repro.serve`` runs it);
* :class:`~repro.serve.client.ServeClient` — blocking stdlib client
  (``campaign submit/status/fetch`` build on it);
* :mod:`repro.serve.jobs` — job model + journal;
* :mod:`repro.serve.pool` — deduplicated, cache-aware, crash-tolerant
  point execution;
* :mod:`repro.serve.protocol` — the HTTP/JSON wire format and the
  ``unix:/path`` / ``host:port`` address syntax.

``python -m repro.serve.smoke`` is the end-to-end self-check: three
concurrent clients over overlapping sweep points, bit-identical to the
serial engine, dedup observed, SIGTERM + restart resumes the journaled
queue. See ``docs/serving.md`` for the API and failure semantics.
"""

from .client import ServeClient, ServeError
from .jobs import Job, Journal
from .pool import PointFailed, PointRunner
from .server import ServeServer

__all__ = [
    "Job",
    "Journal",
    "PointFailed",
    "PointRunner",
    "ServeClient",
    "ServeError",
    "ServeServer",
]
