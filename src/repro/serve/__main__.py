"""CLI entry point: ``python -m repro.serve`` runs the daemon.

Options::

    python -m repro.serve --state-dir .repro-serve \
        [--address unix:/path.sock | --address host:port] \
        [--workers N] [--max-jobs N] [--drain-s S] [--cache-dir DIR] \
        [--metrics-interval S] [--quiet]

The server runs until SIGTERM/SIGINT (or ``POST /shutdown``), drains
gracefully, and exits 0. Anything still queued stays in the journal
and resumes on the next start with the same ``--state-dir``.
"""

from __future__ import annotations

import argparse
import asyncio

from ..obs.log import configure, get_logger
from .server import ServeServer

log = get_logger("repro.serve")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Simulation-as-a-service daemon with a journaled "
                    "job queue (see docs/serving.md).")
    parser.add_argument("--state-dir", default=".repro-serve",
                        help="journal + default cache + default socket "
                             "directory (default: .repro-serve)")
    parser.add_argument("--address", default=None,
                        help="unix:/path.sock or host:port "
                             "(default: unix:<state-dir>/serve.sock)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes "
                             "(default: REPRO_WORKERS or cpu count)")
    parser.add_argument("--max-jobs", type=int, default=4,
                        help="jobs dispatched concurrently (default: 4)")
    parser.add_argument("--drain-s", type=float, default=5.0,
                        help="grace period for running jobs on "
                             "shutdown (default: 5)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "REPRO_CACHE_DIR or <state-dir>/cache)")
    parser.add_argument("--metrics-interval", type=float, default=1.0,
                        help="time-series sampling interval in seconds "
                             "(default: 1.0; see GET /metrics)")
    parser.add_argument("--quiet", action="store_true",
                        help="only log warnings")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)

    server = ServeServer(
        state_dir=args.state_dir, address=args.address,
        workers=args.workers, max_jobs=args.max_jobs,
        drain_s=args.drain_s, cache_dir=args.cache_dir,
        metrics_interval_s=args.metrics_interval)
    try:
        return asyncio.run(server.run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
