"""CLI entry point: ``python -m repro.serve`` runs the daemon.

Options::

    python -m repro.serve --state-dir .repro-serve \
        [--address unix:/path.sock | --address host:port] \
        [--workers N] [--max-jobs N] [--drain-s S] [--cache-dir DIR] \
        [--metrics-interval S] [--quiet] \
        [--remote-cache DIR] [--node-id ID] [--max-queue N] \
        [--claim-ttl-s S]

The last four options are fabric-node knobs (see ``docs/fabric.md``):
``--remote-cache`` points at the shared result tier (turning the local
cache into a :class:`~repro.exec.cache.TieredCache` with in-flight
claims), ``--node-id`` names this node in claims and ``/healthz``,
``--max-queue`` bounds admission (submits beyond it shed with 503),
and ``--claim-ttl-s`` sets the staleness bound for stealing a dead
node's claims.

The server runs until SIGTERM/SIGINT (or ``POST /shutdown``), drains
gracefully, and exits 0. Anything still queued stays in the journal
and resumes on the next start with the same ``--state-dir``.
"""

from __future__ import annotations

import argparse
import asyncio

from ..obs.log import configure, get_logger
from .server import ServeServer

log = get_logger("repro.serve")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Simulation-as-a-service daemon with a journaled "
                    "job queue (see docs/serving.md).")
    parser.add_argument("--state-dir", default=".repro-serve",
                        help="journal + default cache + default socket "
                             "directory (default: .repro-serve)")
    parser.add_argument("--address", default=None,
                        help="unix:/path.sock or host:port "
                             "(default: unix:<state-dir>/serve.sock)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes "
                             "(default: REPRO_WORKERS or cpu count)")
    parser.add_argument("--max-jobs", type=int, default=4,
                        help="jobs dispatched concurrently (default: 4)")
    parser.add_argument("--drain-s", type=float, default=5.0,
                        help="grace period for running jobs on "
                             "shutdown (default: 5)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "REPRO_CACHE_DIR or <state-dir>/cache)")
    parser.add_argument("--metrics-interval", type=float, default=1.0,
                        help="time-series sampling interval in seconds "
                             "(default: 1.0; see GET /metrics)")
    parser.add_argument("--quiet", action="store_true",
                        help="only log warnings")
    parser.add_argument("--remote-cache", default=None,
                        help="shared remote result tier directory "
                             "(default: REPRO_REMOTE_CACHE_DIR; unset "
                             "= no fabric tier)")
    parser.add_argument("--node-id", default=None,
                        help="fabric node identity for claims and "
                             "/healthz (default: the listen address)")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="admission bound: shed submits once this "
                             "many jobs are queued (default: "
                             "REPRO_FABRIC_MAX_QUEUE or unbounded)")
    parser.add_argument("--claim-ttl-s", type=float, default=None,
                        help="age after which another node may steal "
                             "this node's in-flight claims (default: "
                             "REPRO_FABRIC_CLAIM_TTL_S or 60)")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)

    max_queue = args.max_queue
    if max_queue is None:
        from ..fabric import max_queue as max_queue_knob
        max_queue = max_queue_knob()
    server = ServeServer(
        state_dir=args.state_dir, address=args.address,
        workers=args.workers, max_jobs=args.max_jobs,
        drain_s=args.drain_s, cache_dir=args.cache_dir,
        metrics_interval_s=args.metrics_interval,
        remote_cache=args.remote_cache, node_id=args.node_id,
        max_queue=max_queue, claim_ttl_s=args.claim_ttl_s)
    try:
        return asyncio.run(server.run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
