"""Thin blocking client for the simulation service.

Stdlib-only (``http.client`` + a Unix-socket transport); no asyncio on
the client side. Used by the ``campaign submit/status/fetch``
subcommands and the serve smoke test, and importable by anything else
that wants to talk to a running daemon::

    from repro.serve.client import ServeClient
    client = ServeClient("unix:/tmp/serve/serve.sock")
    job_id = client.submit(points, priority=1)
    client.wait(job_id)
    results = client.result(job_id)     # list[SystemResult]

``wait()`` polls; with ``tolerate_disconnects=True`` it rides out a
server restart (connection errors count against the overall deadline,
not as failures), which is what lets a campaign survive a daemon
SIGTERM + resume without the client noticing anything but latency.
"""

from __future__ import annotations

import dataclasses
import hashlib
import http.client
import json
import socket
import time
from typing import Any, Iterator

from ..exec.serialize import result_from_dict
from ..sim.runner import DesignPoint
from .protocol import parse_address


def _now() -> float:
    """Monotonic clock for poll deadlines.

    The only clock the client reads; it bounds how long ``wait*()``
    polls and never appears in a request, result, or cache key.
    """
    # repro: allow(determinism) — poll-deadline clock, never in payloads
    return time.monotonic()


def _sleep(seconds: float) -> None:
    """Poll-interval sleep (indirected so tests can fake the clock)."""
    time.sleep(seconds)


def poll_jitter(token: str, attempt: int) -> float:
    """Deterministic jitter factor in ``[0.75, 1.25]``.

    Seeded from ``(token, attempt)`` via sha256 — independent of
    ``repro.rng`` (no simulation stream is perturbed by polling) and of
    the host (no entropy read), yet different tokens desynchronise, so
    a thousand clients waiting on jobs submitted together do not
    stampede the daemon in lockstep.
    """
    digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
    return 0.75 + 0.5 * int.from_bytes(digest[:4], "big") / 0xFFFFFFFF


def poll_delays(token: str, base_s: float,
                cap_s: float) -> Iterator[float]:
    """Jittered exponential-backoff delays: ``base_s`` doubling up to
    ``cap_s``, each scaled by :func:`poll_jitter`.

    The cap bounds total poll traffic: a job that takes wall time ``T``
    costs ``O(log2(cap_s / base_s) + T / cap_s)`` status requests
    instead of the ``T / base_s`` a fixed interval would issue.
    """
    attempt = 0
    while True:
        delay = min(base_s * (2 ** min(attempt, 30)), cap_s)
        yield delay * poll_jitter(token, attempt)
        attempt += 1


class ServeError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        message = payload.get("error") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` transport over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


def _point_fields(point: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(point) and not isinstance(point, type):
        return dataclasses.asdict(point)
    if isinstance(point, dict):
        return point
    raise TypeError(f"expected DesignPoint or dict, got "
                    f"{type(point).__name__}")


class ServeClient:
    """One server address; connections are opened per request."""

    def __init__(self, address: str, timeout_s: float = 30.0):
        self.address = address
        self.kind, self.target = parse_address(address)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                body: Any | None = None) -> tuple[int, Any]:
        """One round trip; returns ``(status, decoded_json)``.

        Raises ``OSError``/``http.client.HTTPException`` subclasses on
        transport failures (server down, socket missing, mid-restart).
        """
        status, _, raw = self.request_raw(method, path, body)
        return status, json.loads(raw) if raw else {}

    def request_raw(self, method: str, path: str,
                    body: Any | None = None) -> tuple[int, str, bytes]:
        """One round trip without decoding; returns
        ``(status, content_type, raw_body)`` — for non-JSON endpoints
        such as the Prometheus ``/metrics`` exposition."""
        if self.kind == "unix":
            conn: http.client.HTTPConnection = _UnixHTTPConnection(
                self.target, self.timeout_s)
        else:
            host, port = self.target
            conn = http.client.HTTPConnection(host, port,
                                              timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            return response.status, content_type, raw
        finally:
            conn.close()

    def _call(self, method: str, path: str,
              body: Any | None = None) -> Any:
        status, document = self.request(method, path, body)
        if status >= 400:
            raise ServeError(status, document)
        return document

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._call("GET", "/stats")

    def metrics(self) -> dict[str, Any]:
        """Stats snapshot plus sampled time-series (JSON format)."""
        return self._call("GET", "/metrics?format=json")

    def metrics_text(self) -> tuple[str, str]:
        """Prometheus exposition; returns ``(content_type, text)``."""
        status, content_type, raw = self.request_raw("GET", "/metrics")
        if status >= 400:
            raise ServeError(status, raw.decode("utf-8", "replace"))
        return content_type, raw.decode("utf-8")

    def spans(self, name: str | None = None) -> dict[str, Any]:
        """Buffered lifecycle spans, optionally filtered by name."""
        path = "/spans" if name is None else f"/spans?name={name}"
        return self._call("GET", path)

    def submit(self, points: list[Any], priority: int = 0,
               timeout_s: float | None = None,
               hedge: bool = False) -> str:
        """Submit a job; returns its id once the server journaled it.

        ``hedge`` marks the job as a fabric hedge (a duplicate sent to
        a secondary owner); the server counts these separately
        (``serve.jobs_hedged``) so hedge amplification is observable.
        """
        body: dict[str, Any] = {
            "points": [_point_fields(p) for p in points],
            "priority": priority,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if hedge:
            body["hedge"] = True
        return self._call("POST", "/submit", body)["id"]

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        path = "/status" if job_id is None else f"/status?id={job_id}"
        return self._call("GET", path)

    def result(self, job_id: str, decode: bool = True) -> list[Any]:
        """Results of a done job, in submitted point order.

        ``decode=True`` rebuilds full ``SystemResult`` objects; with
        ``decode=False`` the raw cache-schema documents come back.
        Raises :class:`ServeError` (409) while the job is not done.
        """
        document = self._call("GET", f"/result?id={job_id}")
        raw = document["results"]
        if not decode:
            return raw
        return [result_from_dict(fields) for fields in raw]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._call("POST", "/cancel", {"id": job_id})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (same as SIGTERM)."""
        return self._call("POST", "/shutdown", {})

    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 30.0,
                   poll_s: float = 0.05) -> dict[str, Any]:
        """Block until ``/healthz`` answers (server finished booting)."""
        deadline = _now() + timeout_s
        while True:
            try:
                return self.healthz()
            except (OSError, http.client.HTTPException) as error:
                if _now() >= deadline:
                    raise TimeoutError(
                        f"server at {self.address} not ready after "
                        f"{timeout_s:g}s ({error})") from None
                _sleep(poll_s)

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.1, max_poll_s: float = 5.0,
             tolerate_disconnects: bool = False) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        Polling backs off exponentially from ``poll_s`` to
        ``max_poll_s`` with deterministic seeded jitter (see
        :func:`poll_delays`), capping total poll traffic per job at
        roughly ``timeout_s / max_poll_s`` requests while keeping
        short-job latency near ``poll_s``. With
        ``tolerate_disconnects`` transport errors (the server is
        restarting) are retried until ``timeout_s`` runs out.
        """
        from .jobs import TERMINAL
        if max_poll_s < poll_s:
            max_poll_s = poll_s
        deadline = _now() + timeout_s
        delays = poll_delays(job_id, poll_s, max_poll_s)
        while True:
            try:
                document = self.status(job_id)
                if document["state"] in TERMINAL:
                    return document
            except (OSError, http.client.HTTPException) as error:
                if not tolerate_disconnects:
                    raise
                if _now() >= deadline:
                    raise TimeoutError(
                        f"{job_id}: server unreachable past deadline "
                        f"({error})") from None
            if _now() >= deadline:
                raise TimeoutError(
                    f"{job_id} not finished after {timeout_s:g}s")
            _sleep(min(next(delays), max(0.0, deadline - _now())))
