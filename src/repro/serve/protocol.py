"""Wire protocol of the simulation service: HTTP/1.1 + JSON bodies.

The daemon speaks a deliberately tiny, curl-compatible subset of
HTTP/1.1 over a local socket — a Unix domain socket by default, TCP on
request. Each connection carries one request and one response
(``Connection: close``); bodies are UTF-8 JSON documents.

This module holds the pieces both ends share:

* :func:`parse_address` / :func:`format_address` — the one address
  syntax every CLI flag uses (``unix:/path/to.sock`` or ``host:port``),
* :func:`read_request` — asyncio-side request parser (server),
* :func:`response_bytes` / :func:`error_bytes` — response formatting,
* request size limits, so a confused client cannot balloon the daemon.

The HTTP subset: request line + headers + ``Content-Length``-framed
body. No chunked encoding, no keep-alive, no TLS — this is a loopback
service (see ``docs/serving.md`` for the trust model).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qs, urlsplit

#: Upper bound on a request body (a submit carrying a few thousand
#: design points stays far below this).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A request that cannot be parsed or exceeds the size limits."""


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
def parse_address(address: str) -> tuple[str, Any]:
    """Parse a server address into ``("unix", path)`` or
    ``("tcp", (host, port))``.

    Accepted spellings::

        unix:/run/repro/serve.sock      tcp:127.0.0.1:8731
        /absolute/path.sock             127.0.0.1:8731
    """
    address = address.strip()
    if not address:
        raise ValueError("empty server address")
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError(f"no socket path in {address!r}")
        return "unix", path
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
    elif address.startswith("/"):
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad server address {address!r}; expected unix:/path, "
            f"/path, or host:port")
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ValueError(f"bad port in server address {address!r}") \
            from None


def format_address(kind: str, target: Any) -> str:
    if kind == "unix":
        return f"unix:{target}"
    host, port = target
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Server-side request parsing (asyncio streams)
# ----------------------------------------------------------------------
class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "body")

    def __init__(self, method: str, path: str,
                 query: dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        self.body = body

    def json(self) -> Any:
        """Decode the body as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not JSON: {error}") \
                from None


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # connection closed between requests
        raise ProtocolError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head exceeds limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head exceeds limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"bad request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {key: values[-1]
             for key, values in parse_qs(split.query).items()}

    length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise ProtocolError(f"bad Content-Length {value!r}") \
                    from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"body of {length} bytes exceeds limit")
    body = await reader.readexactly(length) if length else b""
    return Request(method, split.path, query, body)


# ----------------------------------------------------------------------
# Response formatting (both sides)
# ----------------------------------------------------------------------
def response_bytes(status: int, document: Any) -> bytes:
    """Serialise one JSON response with framing headers."""
    return text_bytes(status, json.dumps(document), "application/json")


def text_bytes(status: int, text: str,
               content_type: str = "text/plain; charset=utf-8") -> bytes:
    """Serialise one non-JSON response (Prometheus exposition etc.)."""
    body = text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def error_bytes(status: int, message: str) -> bytes:
    return response_bytes(status, {"error": message})
