"""Job model, priority queue, and the crash-safe JSONL journal.

A **job** is an ordered list of design points submitted together; its
results come back in the same order. Jobs move through::

    queued -> running -> done
                      -> failed     (point error, timeout, too many
                                     worker crashes)
                      -> cancelled  (client request)

The **journal** makes the queue durable: every accepted submission is
appended as one JSON line *before* the client sees a job id, and every
terminal transition is appended when it happens. Restart recovery is a
single forward replay — a submission with no terminal record is still
owed to some client and re-enqueues as ``queued`` (half-run jobs redo
their points, which short-circuit through the result cache, so no
simulation work is actually repeated). The journal is then compacted to
just the pending submissions, so it cannot grow without bound.

A torn trailing line (the previous process died mid-append) is ignored
with a warning; any other undecodable line is, too — the journal is a
recovery aid, never a correctness dependency for completed work.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from typing import Any

from ..obs.log import get_logger
from ..sim.runner import DesignPoint

log = get_logger(__name__)

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States after which a job never runs again.
TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclasses.dataclass
class Job:
    """One submitted batch of design points."""

    id: str
    points: list[DesignPoint]
    priority: int = 0
    timeout_s: float | None = None
    state: str = QUEUED
    error: str | None = None
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    #: resolved results, in point order (populated when state == DONE;
    #: held in memory only — durable copies live in the result cache)
    results: list[Any] | None = None

    def public(self) -> dict[str, Any]:
        """The status document served to clients (no result payload)."""
        return {
            "id": self.id,
            "state": self.state,
            "points": len(self.points),
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "error": self.error,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }

    def submit_record(self) -> dict[str, Any]:
        return {
            "op": "submit",
            "id": self.id,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "submitted_s": self.submitted_s,
            "points": [dataclasses.asdict(p) for p in self.points],
        }


def job_from_record(record: dict[str, Any]) -> Job:
    """Rebuild a queued job from its journal submit record."""
    return Job(
        id=str(record["id"]),
        points=[DesignPoint(**fields) for fields in record["points"]],
        priority=int(record.get("priority", 0)),
        timeout_s=record.get("timeout_s"),
        submitted_s=float(record.get("submitted_s", 0.0)),
    )


class Journal:
    """Append-only JSONL record of submissions and terminal states."""

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_submit(self, job: Job) -> None:
        self._append(job.submit_record())

    def record_state(self, job_id: str, state: str,
                     error: str | None = None) -> None:
        if state not in TERMINAL:
            raise ValueError(f"only terminal states are journaled, "
                             f"not {state!r}")
        record: dict[str, Any] = {"op": "state", "id": job_id,
                                  "state": state}
        if error is not None:
            record["error"] = error
        self._append(record)

    def close(self) -> None:
        self._handle.close()

    # ------------------------------------------------------------------
    @staticmethod
    def load(path: str | pathlib.Path) -> list[Job]:
        """Replay a journal; returns still-pending jobs in submit order."""
        path = pathlib.Path(path)
        if not path.exists():
            return []
        pending: dict[str, Job] = {}
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    op = record["op"]
                    if op == "submit":
                        job = job_from_record(record)
                        pending[job.id] = job
                    elif op == "state":
                        pending.pop(str(record["id"]), None)
                    else:
                        raise ValueError(f"unknown op {op!r}")
                except (ValueError, KeyError, TypeError) as error:
                    # Torn trailing line from a crash mid-append, or a
                    # hand-edited journal: skip, never fail recovery.
                    log.warning("%s:%d: skipping bad journal line (%s)",
                                path, number, error)
        return list(pending.values())

    @staticmethod
    def compact(path: str | pathlib.Path, jobs: list[Job]) -> None:
        """Atomically rewrite the journal to just ``jobs``' submissions.

        Durability ordering matters: the temp file's *data* is fsynced
        before ``os.replace`` makes it visible, and the containing
        *directory* is fsynced after, so the rename itself survives a
        crash. Without the directory fsync a power cut right after
        compaction could resurrect the pre-compaction journal — safe
        (it holds a superset of records) but it silently undoes the
        compaction the caller was told succeeded. Only once both
        fsyncs land may the temp name be considered gone; the cleanup
        unlink runs solely on the failure path, before re-raising.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in jobs:
                    handle.write(json.dumps(job.submit_record()) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush a directory's metadata (rename durability); best-effort.

    Some filesystems (and all of Windows) reject opening a directory
    for fsync — the rename is still atomic there, just not provably
    durable, so failure degrades to the old behaviour rather than
    aborting a compaction that already succeeded.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def next_job_id(existing: list[str]) -> int:
    """First free ``job-<n>`` counter given already-journaled ids."""
    highest = 0
    for job_id in existing:
        _, _, suffix = job_id.partition("-")
        if suffix.isdigit():
            highest = max(highest, int(suffix))
    return highest + 1


def make_job(counter: int, points: list[DesignPoint], priority: int = 0,
             timeout_s: float | None = None) -> Job:
    return Job(id=f"job-{counter}", points=points, priority=priority,
               # repro: allow(determinism) — journal bookkeeping, not results
               timeout_s=timeout_s, submitted_s=time.time())
