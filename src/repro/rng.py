"""Deterministic random-number streams.

Every stochastic component in the simulator (workload generators, MoPAC
samplers, Monte-Carlo analyses) draws from its own named stream so that:

* a full-system run is reproducible from a single master seed, and
* adding randomness to one component never perturbs another component's
  stream (no shared-state coupling).

Streams are derived from the master seed with a stable hash of the stream
name, following the "root seed + spawn key" pattern of
``numpy.random.SeedSequence`` but implemented on top of ``random.Random``
so that hot paths avoid numpy call overhead.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Produces independent, named ``random.Random`` streams.

    >>> factory = RngFactory(master_seed=7)
    >>> a = factory.stream("mopac-c")
    >>> b = factory.stream("workload.bwaves")
    >>> a is not b
    True

    Requesting the same name twice returns a *fresh* generator seeded
    identically, so components can be re-created mid-experiment without
    advancing each other's sequences.
    """

    def __init__(self, master_seed: int = 0xC0FFEE):
        self.master_seed = master_seed

    def stream(self, name: str) -> random.Random:
        """Return a new generator for the given stream name."""
        return random.Random(derive_seed(self.master_seed, name))

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for a stream (e.g. for numpy)."""
        return derive_seed(self.master_seed, name)


def bernoulli_iter(rng: random.Random, probability: float) -> Iterator[bool]:
    """Yield an endless Bernoulli(probability) stream from ``rng``."""
    while True:
        yield rng.random() < probability
