"""Rowhammer mitigation policies.

Everything here implements the common :class:`MitigationPolicy` interface
and can be plugged into either the full-system simulator
(:mod:`repro.sim`) or the activation-level attack harness
(:mod:`repro.attacks`):

* :class:`BaselinePolicy` — unprotected DDR5,
* :class:`PRACMoatPolicy` — PRAC + ABO with the MOAT tracker (the paper's
  secure-but-slow baseline),
* :class:`MoPACCPolicy` — MC-side probabilistic counting (Section 5),
* :class:`MoPACDPolicy` — in-DRAM probabilistic counting with SRQ,
  tardiness bound, drain-on-REF, optional NUP and multi-chip (Sections 6/8),
* :class:`MINTPolicy`, :class:`PrIDEPolicy` — low-cost tracker baselines
  (Section 9.2),
* :class:`TRRPolicy` — the broken DDR4-era strawman (Section 2.3),
* :class:`QPRACPolicy` — QPRAC-style proactive priority-queue PRAC
  service (Section 9.1 related work).
"""

from .base import (EpisodeDecision, MitigationEvent, MitigationPolicy,
                   PolicyStats)
from .cnc_prac import CnCPRACPolicy
from .mint import MINTPolicy
from .moat import MOATPolicy
from .mopac_c import MoPACCPolicy
from .mopac_d import (DEFAULT_SRQ_SIZE, SRQ_DRAIN_PER_ABO, MintSampler,
                      MoPACDPolicy, ParaSampler, SRQEntry)
from .prac import BaselinePolicy, PRACMoatPolicy
from .prac_state import (BLAST_RADIUS, MoatTracker, PRACCounters,
                         RefreshSchedule)
from .practical import PRACticalPolicy, SubarrayState
from .pride import PrIDEPolicy
from .qprac import QPRACPolicy, QPRACProactivePolicy
from .registry import MitigationSpec, make_policy
from .registry import get as get_spec
from .registry import names as registered_names
from .registry import specs as registered_specs
from .trr import TRRPolicy

__all__ = [
    "BLAST_RADIUS", "BaselinePolicy", "CnCPRACPolicy", "DEFAULT_SRQ_SIZE",
    "EpisodeDecision",
    "MINTPolicy", "MOATPolicy", "MintSampler", "MitigationEvent",
    "MitigationPolicy", "MitigationSpec",
    "MoatTracker", "MoPACCPolicy", "MoPACDPolicy", "PRACCounters", "ParaSampler",
    "PRACMoatPolicy", "PRACticalPolicy", "PolicyStats", "PrIDEPolicy",
    "QPRACPolicy", "QPRACProactivePolicy",
    "RefreshSchedule", "SubarrayState",
    "SRQEntry", "SRQ_DRAIN_PER_ABO", "TRRPolicy",
    "get_spec", "make_policy", "registered_names", "registered_specs",
]
