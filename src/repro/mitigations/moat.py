"""MOAT with sweepable ALERT/eligibility thresholds (Section 9.2).

:class:`~repro.mitigations.prac.PRACMoatPolicy` pins its thresholds to
the paper's Table 2 model (ATH from :func:`repro.security.moat_model.moat_ath`,
ETH = ATH / 2). MOAT itself [Qureshi & Qazi, 2024] treats both as free
design parameters: a lower ATH trades extra ALERTs for a larger security
margin, and ETH controls how eagerly banks piggyback mitigations on a
neighbour's RFM. :class:`MOATPolicy` exposes both as constructor knobs so
ETH/ATH sweeps (the paper's §9.2 comparison axis) are one loop, while the
defaults reproduce the PRAC+MOAT baseline exactly.

The design stays *exact*: a counter update on every precharge, full PRAC
timings, zero drift against the shadow truth.
"""

from __future__ import annotations

from ..dram.timing import TimingSet
from ..security.moat_model import moat_ath, moat_eth
from .prac import PRACMoatPolicy


class MOATPolicy(PRACMoatPolicy):
    """PRAC + MOAT with explicitly sweepable ATH/ETH thresholds."""

    name = "moat"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 ath: int | None = None, eth: int | None = None,
                 timing: TimingSet | None = None):
        super().__init__(trh, banks, rows, refresh_groups, timing=timing)
        if ath is not None:
            if not 0 < ath <= trh:
                raise ValueError(f"ath must be in (0, trh={trh}]")
            self.ath = ath
        if eth is not None:
            if not 0 < eth <= self.ath:
                raise ValueError(f"eth must be in (0, ath={self.ath}]")
            self.eth = eth
        elif ath is not None:
            # the footnote-3 relation follows a swept ATH by default
            self.eth = max(self.ath // 2, 1)

    @staticmethod
    def model_thresholds(trh: int) -> tuple[int, int]:
        """The Table 2 (ATH, ETH) defaults for ``trh``."""
        return moat_ath(trh), moat_eth(trh)
