"""MoPAC-D: completely in-DRAM probabilistic counting (Sections 6 and 8).

Each DRAM chip keeps, per bank:

* a MINT sampler — exactly one activation is selected in every window of
  1/p activations (paper footnote 6 explains why PARA-style Bernoulli
  sampling would be insecure here); the selected row is inserted into the
  SRQ only at the *end* of the window;
* a *Selected Row Queue* (SRQ, default 16 entries) buffering rows awaiting
  their PRAC counter update. Each entry carries ACtr (activations suffered
  while buffered — the tardiness counter) and SCtr (how many times the row
  was selected, so coalesced selections cost a single update);
* the PRAC counters + MOAT tracker of :mod:`repro.mitigations.prac_state`.

The memory controller never sees any of this: all episodes run at baseline
timings. Counter updates are paid for with stolen time — ``drain_on_ref``
entries at every REF, five entries per ABO otherwise. ALERT fires when
(1) a drained counter reaches ATH* (mitigation), (2) the SRQ fills, or
(3) a buffered row's ACtr reaches the tardiness threshold TTH.

NUP (Section 8): when the selected row's PRAC counter is zero the selection
is accepted with probability 1/2 only, halving insertions for cold rows;
ATH* shrinks per the Markov-chain analysis (Table 11).

Appendix B: a DIMM has several chips whose samplers are *not* synchronised;
``chips`` > 1 instantiates independent per-chip state, and the sub-channel
ALERT is the OR over chips.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..dram.timing import TimingSet, ddr5_base
from ..units import ns
from ..security.csearch import (DEFAULT_TTH, MoPACParams,
                                drain_on_ref_default, mopac_d_params)
from ..security.markov import mopac_d_nup_params
from ..security.rowpress import ROWPRESS_TON_CAP_NS
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import PRACCounters, RefreshSchedule
from .security import SecurityTelemetry

#: SRQ entries drained per ABO (each row update takes 70 ns of the 350 ns).
SRQ_DRAIN_PER_ABO = 5

#: Default SRQ capacity (Section 6.1): 16 entries x 3 bytes = 48 B per bank.
DEFAULT_SRQ_SIZE = 16


@dataclass
class SRQEntry:
    """One Selected-Row-Queue entry: the row plus its two counters."""

    row: int
    actr: int = 0  #: activations to the row while buffered (tardiness)
    sctr: int = 1  #: number of selections coalesced into this entry


@dataclass
class MintSampler:
    """MINT: select exactly one activation per window of ``window`` ACTs."""

    window: int
    rng: random.Random
    index: int = 0
    slot: int = field(init=False)
    candidate: int | None = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.slot = self.rng.randrange(self.window)

    def observe(self, row: int) -> int | None:
        """Feed one activation; returns the selected row at window end."""
        if self.index == self.slot:
            self.candidate = row
        self.index += 1
        if self.index < self.window:
            return None
        selected, self.candidate = self.candidate, None
        self.index = 0
        self.slot = self.rng.randrange(self.window)
        return selected


@dataclass
class ParaSampler:
    """PARA-style sampling: Bernoulli(1/window) per activation.

    Included for the footnote-6 ablation: the paper argues PARA selection
    is *insecure* for MoPAC-D because the number of activations between
    selections is unbounded — after an SRQ-full ABO the attacker can keep
    hammering through every unlucky stretch, whereas MINT guarantees a
    selection every window. ``tests/mitigations/test_sampler_ablation.py``
    and ``benchmarks/bench_ablation_sampler.py`` measure the difference.
    """

    window: int
    rng: random.Random

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def observe(self, row: int) -> int | None:
        if self.rng.random() < 1.0 / self.window:
            return row
        return None


class _ChipState:
    """Per-chip MoPAC-D state: counters, samplers, SRQs."""

    def __init__(self, banks: int, rows: int, window: int,
                 srq_size: int, refresh_groups: int, rng: random.Random,
                 sampler: str = "mint"):
        self.prac = PRACCounters(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        sampler_cls = {"mint": MintSampler, "para": ParaSampler}[sampler]
        self.samplers = [sampler_cls(window, rng) for _ in range(banks)]
        self.srqs: list[dict[int, SRQEntry]] = [{} for _ in range(banks)]
        self.srq_size = srq_size
        self.rng = rng


class MoPACDPolicy(MitigationPolicy):
    """MoPAC-D with optional NUP and multi-chip modelling."""

    name = "mopac-d"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 p: float | None = None, srq_size: int = DEFAULT_SRQ_SIZE,
                 tth: int = DEFAULT_TTH, drain_on_ref: int | None = None,
                 nup: bool = False, chips: int = 1,
                 refresh_groups: int = 8192,
                 timing: TimingSet | None = None,
                 rng: random.Random | None = None,
                 params: MoPACParams | None = None,
                 sampler: str = "mint", rowpress_aware: bool = False,
                 abo_level: int = 1):
        super().__init__(timing or ddr5_base())
        if abo_level not in (1, 2, 4):
            raise ValueError("abo_level must be 1, 2 or 4 (JEDEC menu)")
        self.abo_level = abo_level
        if trh <= 0:
            raise ValueError("trh must be positive")
        if srq_size < SRQ_DRAIN_PER_ABO:
            raise ValueError("srq_size must be at least the ABO drain count")
        if chips < 1:
            raise ValueError("chips must be >= 1")
        self.trh = trh
        self.nup = nup
        if params is None:
            if nup:
                nup_params = mopac_d_nup_params(trh, p, tth)
                base = mopac_d_params(trh, p, tth)
                params = MoPACParams(
                    trh=trh, ath=base.ath, effective_acts=base.ath,
                    p=nup_params.p, critical_updates=nup_params.nup_c,
                    ath_star=nup_params.nup_ath_star, epsilon=base.epsilon,
                    undercount_probability=base.undercount_probability,
                )
            else:
                params = mopac_d_params(trh, p, tth)
        self.params = params
        self.p = params.p
        self.inv_p = round(1 / params.p)
        self.ath_star = params.ath_star
        self.eth_star = max(params.ath_star // 2, 1)
        self.tth = tth
        self.drain_on_ref = (drain_on_ref if drain_on_ref is not None
                             else drain_on_ref_default(trh))
        if sampler not in ("mint", "para"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.sampler_kind = sampler
        rng = rng or random.Random(0x40D0)
        self.chips = [
            _ChipState(banks, rows, self.inv_p, srq_size, refresh_groups,
                       random.Random(rng.getrandbits(64)), sampler)
            for _ in range(chips)
        ]
        self.banks = banks
        self.security = SecurityTelemetry(banks, rows)
        self.rowpress_aware = rowpress_aware
        self._alert_causes: set[str] = set()
        self._acts_since_rfm = 1

    # ------------------------------------------------------------------
    # Activation path — baseline timings, in-DRAM sampling
    # ------------------------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        self.security.on_activate(bank, row)
        for chip in self.chips:
            self._chip_activate(chip, bank, row)
        return self._plain_decision

    def _chip_activate(self, chip: _ChipState, bank: int, row: int) -> None:
        srq = chip.srqs[bank]
        entry = srq.get(row)
        if entry is not None:
            entry.actr += 1
            if entry.actr >= self.tth:
                self._alert_causes.add("tardiness")
        selected = chip.samplers[bank].observe(row)
        if selected is None:
            return
        if self.nup and chip.prac.value(bank, selected) == 0 \
                and chip.rng.random() < 0.5:
            return  # cold row: effective probability p/2
        self._insert(chip, bank, selected)

    def _insert(self, chip: _ChipState, bank: int, row: int) -> None:
        srq = chip.srqs[bank]
        entry = srq.get(row)
        if entry is not None:
            entry.sctr += 1  # coalesce into the existing entry
            self.stats.srq_insertions += 1
            return
        if len(srq) >= chip.srq_size:
            # Should be drained before this point; assert ALERT and drop.
            self._alert_causes.add("srq_full")
            return
        srq[row] = SRQEntry(row)
        self.stats.srq_insertions += 1
        if len(srq) >= chip.srq_size:
            self._alert_causes.add("srq_full")

    def note_row_open(self, bank: int, row: int, open_ps: int) -> None:
        """Appendix A: long row-open episodes charge extra damage.

        If the closing row is buffered in the SRQ, its SCtr grows by
        ceil(tON / 180 ns) - 1 *additional* units (the base selection
        already accounts for one activation of damage), so the eventual
        PRAC-counter update reflects the Row-Press amplification.
        """
        if not self.rowpress_aware:
            return
        extra = math.ceil(open_ps / ns(ROWPRESS_TON_CAP_NS)) - 1
        if extra <= 0:
            return
        for chip in self.chips:
            entry = chip.srqs[bank].get(row)
            if entry is not None:
                entry.sctr += extra

    # ------------------------------------------------------------------
    # Maintenance path
    # ------------------------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        for chip in self.chips:
            banks = (range(chip.prac.banks) if bank is None else (bank,))
            for index in banks:
                start, stop = chip.refresh_schedules[index].advance()
                chip.prac.refresh_rows(index, start, stop)
                if chip is self.chips[0]:
                    # all chips advance identical schedules; the shadow
                    # truth clears once per physical REF
                    self.security.on_refresh_range(index, start, stop)
                if self.drain_on_ref:
                    self._drain(chip, index, self.drain_on_ref, now,
                                on_ref=True)

    def alert_requested(self) -> bool:
        return bool(self._alert_causes) and self._acts_since_rfm > 0

    @property
    def alert_causes(self) -> frozenset[str]:
        return frozenset(self._alert_causes)

    def on_rfm(self, now: int) -> None:
        """Service one RFM: drain SRQs or mitigate, per Section 6.1.

        With ``abo_level`` > 1 the harness calls this several times per
        ALERT; the cause is attributed once (follow-up RFMs of the same
        episode find the cause set empty).
        """
        self.stats.alerts += 1
        if self._acts_since_rfm > 0:  # first RFM of this ALERT episode
            self.security.on_rfm(self.stats.activations)
        if self._alert_causes:
            if "srq_full" in self._alert_causes:
                self.stats.alerts_srq_full += 1
            elif "tardiness" in self._alert_causes:
                self.stats.alerts_tardiness += 1
            else:
                self.stats.alerts_mitigation += 1
        self._alert_causes.clear()
        for chip in self.chips:
            for bank in range(chip.prac.banks):
                self._service_bank(chip, bank, now)
        self._acts_since_rfm = 0

    def _service_bank(self, chip: _ChipState, bank: int, now: int) -> None:
        srq = chip.srqs[bank]
        tracker = chip.prac.tracker(bank)
        if len(srq) >= chip.srq_size:
            self._drain(chip, bank, SRQ_DRAIN_PER_ABO, now)
        elif tracker.valid and tracker.value >= self.ath_star:
            self._mitigate(chip, bank, now)
        elif srq:
            self._drain(chip, bank, SRQ_DRAIN_PER_ABO, now)
        elif tracker.valid and tracker.value >= self.eth_star:
            self._mitigate(chip, bank, now)

    def _drain(self, chip: _ChipState, bank: int, count: int, now: int,
               on_ref: bool = False) -> None:
        """Perform counter updates for up to ``count`` SRQ entries.

        Entries with the highest ACtr (most at-risk of tardiness) first.
        Each update increments the PRAC counter by 1 + SCtr / p: the "1"
        accounts for the activation that performs the write (Section 6.4).
        """
        srq = chip.srqs[bank]
        if not srq:
            return
        victims = sorted(srq.values(), key=lambda e: -e.actr)[:count]
        for entry in victims:
            del srq[entry.row]
            increment = 1 + entry.sctr * self.inv_p
            value = chip.prac.update(bank, entry.row, increment)
            self.security.on_counter_update(bank, entry.row, value)
            self.stats.counter_updates += 1
            if self.tracer is not None:
                self.tracer.record(now, "DRAIN", self.tracer_subchannel,
                                   bank, entry.row,
                                   "ref" if on_ref else "rfm")
            if on_ref:
                self.stats.ref_drains += 1
            if value >= self.ath_star:
                self._alert_causes.add("mitigation")

    def _mitigate(self, chip: _ChipState, bank: int, now: int) -> None:
        row = chip.prac.mitigate(bank)
        if row is not None:
            self._record_mitigation(bank, row, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        return max(chip.prac.value(bank, row) for chip in self.chips)

    def srq_occupancy(self, bank: int, chip_index: int = 0) -> int:
        return len(self.chips[chip_index].srqs[bank])

    def buffered_rows(self, bank: int, chip_index: int = 0) -> list[int]:
        return list(self.chips[chip_index].srqs[bank])
