"""PRAC + ABO with the MOAT tracker (paper Sections 2.5-2.6).

``PRACMoatPolicy`` is the paper's baseline mitigation: every activation
episode performs a counter read-modify-write during the precharge, so every
episode pays the inflated PRAC timings (tRP 36 ns, tRC 52 ns). MOAT asserts
ALERT when the hottest tracked counter reaches ATH, and each bank mitigates
its tracked row under the resulting RFM if the value is at least ETH.
"""

from __future__ import annotations

from ..dram.timing import TimingSet, ddr5_base, ddr5_prac
from ..security.moat_model import moat_ath, moat_eth
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import PRACCounters, RefreshSchedule
from .security import SecurityTelemetry


class PRACMoatPolicy(MitigationPolicy):
    """Deterministic PRAC: counter update on every precharge."""

    name = "prac"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 timing: TimingSet | None = None):
        super().__init__(timing or ddr5_prac())
        if trh <= 0:
            raise ValueError("trh must be positive")
        self.trh = trh
        self.ath = moat_ath(trh)
        self.eth = moat_eth(trh)
        self.state = PRACCounters(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self.security = SecurityTelemetry(banks, rows)
        self._alert = False
        self._acts_since_rfm = 1  # ABO requires activations between ALERTs

    # -- activation path --------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        self.security.on_activate(bank, row)
        return self._cu_decision

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        if not counter_update:
            return
        self.stats.counter_updates += 1
        value = self.state.update(bank, row, 1)
        self.security.on_counter_update(bank, row, value)
        if value >= self.ath:
            self._request_alert()

    # -- maintenance path --------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        banks = (range(self.state.banks) if bank is None else (bank,))
        for index in banks:
            start, stop = self.refresh_schedules[index].advance()
            self.state.refresh_rows(index, start, stop)
            self.security.on_refresh_range(index, start, stop)

    def alert_requested(self) -> bool:
        return self._alert and self._acts_since_rfm > 0

    def on_rfm(self, now: int) -> None:
        """All banks of the sub-channel mitigate their tracked row."""
        self.stats.alerts += 1
        self.stats.alerts_mitigation += 1
        if self._acts_since_rfm > 0:  # first RFM of this ALERT episode
            self.security.on_rfm(self.stats.activations)
        for bank in range(self.state.banks):
            tracker = self.state.tracker(bank)
            if tracker.valid and tracker.value >= self.eth:
                row = self.state.mitigate(bank)
                if row is not None:
                    self._record_mitigation(bank, row, now)
        self._alert = False
        self._acts_since_rfm = 0
        self._recheck_alert()

    # -- introspection -----------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        return self.state.value(bank, row)

    # -- internals -----------------------------------------------------------
    def _request_alert(self) -> None:
        self._alert = True

    def _recheck_alert(self) -> None:
        """Re-assert if some bank is still above threshold after RFM."""
        for bank in range(self.state.banks):
            if self.state.tracker(bank).value >= self.ath:
                self._alert = True
                return


class BaselinePolicy(MitigationPolicy):
    """Unprotected DDR5: baseline timings, no tracking, no mitigation."""

    name = "baseline"

    def __init__(self, timing: TimingSet | None = None):
        super().__init__(timing or ddr5_base())
