"""Mitigation policy interface.

A :class:`MitigationPolicy` instance encapsulates everything one
*sub-channel* worth of DRAM does about Rowhammer: per-row activation
counters (when the design has them), trackers (MOAT / SRQ / TRR table),
the probabilistic samplers, and the decision to assert ALERT.

The same policy object is driven by two harnesses:

* the full-system simulator (cores -> MC -> banks), which additionally
  enforces the per-episode DRAM timings the policy requests, and
* the fast activation-level attack simulator (``repro.attacks``), which
  issues back-to-back activations and only consults the hooks — this is
  how security verification runs millions of activations quickly.

Hooks are synchronous and must be cheap; all are called with the current
simulation time in picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.timing import TimingSet, ddr5_base


@dataclass(frozen=True)
class EpisodeDecision:
    """What the policy decided for one activation episode of a bank.

    ``act_timing`` governs tRCD/tRAS/tRC of this episode; ``pre_timing``
    governs the closing precharge's tRP. ``counter_update`` marks whether
    the closing precharge performs the PRAC read-modify-write (and should
    therefore be a PREcu for MC-side designs).
    """

    act_timing: TimingSet
    pre_timing: TimingSet
    counter_update: bool


@dataclass
class MitigationEvent:
    """A victim-refresh performed by the policy (for the security ledger)."""

    bank: int
    row: int
    time_ps: int


@dataclass
class PolicyStats:
    """Counters every policy maintains; subclasses may extend."""

    activations: int = 0
    counter_updates: int = 0
    alerts: int = 0
    alerts_mitigation: int = 0
    alerts_srq_full: int = 0
    alerts_tardiness: int = 0
    mitigations: int = 0
    srq_insertions: int = 0
    ref_drains: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class MitigationPolicy:
    """Base class: the do-nothing (baseline, unprotected) policy."""

    #: short name used in experiment output
    name = "baseline"

    def __init__(self, timing: TimingSet | None = None):
        self.timing = timing or ddr5_base()
        self.stats = PolicyStats()
        #: JEDEC ABO mitigation level: RFMs issued per ALERT (paper: 1).
        #: The harness stalls abo_level * tALERT_RFM and calls
        #: :meth:`on_rfm` that many times per ALERT episode.
        self.abo_level = 1
        #: mitigation events since last drain, consumed by the harness
        self.pending_mitigations: list[MitigationEvent] = []
        #: opt-in event tracer (set by the harness; None = no tracing)
        self.tracer = None
        #: sub-channel index for trace attribution (set by the harness)
        self.tracer_subchannel = -1
        #: shadow true-activation accounting for the counting designs
        #: (:class:`~repro.mitigations.security.SecurityTelemetry`);
        #: None for policies with no counters to compare against
        self.security = None
        # Decisions are frozen and depend only on the (fixed) timing
        # sets, so the two flavours are built once instead of allocating
        # a fresh EpisodeDecision on every ACT of the hot path.
        self._plain_decision = EpisodeDecision(self.timing, self.timing,
                                               False)
        self._cu_decision = EpisodeDecision(self.timing, self.timing, True)

    # -- activation path -------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        """Called when the MC issues an ACT. Returns the episode timings."""
        self.stats.activations += 1
        return self._plain_decision

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        """Called when the episode is closed."""

    def note_row_open(self, bank: int, row: int, open_ps: int) -> None:
        """Row-open-time report for Row-Press accounting (Appendix A).

        Called alongside the precharge with the episode's total open time;
        Row-Press-aware designs convert long open times into extra damage
        units. The default policy ignores it.
        """

    # -- maintenance path --------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        """Called at every REF command (policy may drain/mitigate here).

        ``bank`` is None for an all-bank REF (the paper's setup) or the
        refreshed bank's index for DDR5 same-bank REFsb.
        """

    def alert_requested(self) -> bool:
        """True when the sub-channel is asserting ALERT."""
        return False

    def on_rfm(self, now: int) -> None:
        """Perform the work of one RFM (the 350 ns ABO service window)."""

    def timing_pair(self) -> tuple[TimingSet, TimingSet]:
        """(normal, counter-update) timing sets this policy can request.

        Most designs run every episode on one timing set, so both slots
        are :attr:`timing`; MoPAC-C overrides this with its dual sets.
        The MC uses the pair to bound episode timings before the episode
        decision exists, and the conformance oracle uses it to pick the
        right set from a traced episode's counter-update flag.
        """
        return self.timing, self.timing

    # -- introspection -----------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        """Current PRAC counter value for (bank, row); 0 if untracked."""
        return 0

    def drain_mitigations(self) -> list[MitigationEvent]:
        """Return and clear mitigation events (harness ledger hookup)."""
        events, self.pending_mitigations = self.pending_mitigations, []
        return events

    def register_stats(self, registry, prefix: str) -> None:
        """Expose the policy's counters under ``prefix`` (registry hookup).

        Counting policies additionally publish the
        ``<prefix>.security.*`` family (drift vs ground truth, PRE
        rates, per-bank max disturbance, RFM cadence — see
        :mod:`repro.mitigations.security`).
        """
        registry.register(prefix, self.stats.as_dict)
        if self.security is not None:
            registry.register(f"{prefix}.security",
                              lambda: self.security.as_dict(self.stats))

    # -- helpers for subclasses ---------------------------------------------
    def _record_mitigation(self, bank: int, row: int, now: int) -> None:
        self.stats.mitigations += 1
        if self.tracer is not None:
            self.tracer.record(now, "MITIGATE", self.tracer_subchannel,
                               bank, row)
        if self.security is not None:
            # mirror the victim refresh into the shadow truth: the
            # aggressor's victims are fresh, and each victim row was
            # itself activated once by the refresh (footnote 5)
            self.security.on_mitigation(bank, row)
        self.pending_mitigations.append(MitigationEvent(bank, row, now))


@dataclass
class AlertCause:
    MITIGATION = "mitigation"
    SRQ_FULL = "srq_full"
    TARDINESS = "tardiness"

    cause: str = field(default=MITIGATION)
