"""Shared PRAC state: per-row counters and the MOAT tracker.

PRAC (Per-Row Activation Counting) stores one activation counter per DRAM
row, physically inlined with the row. MOAT [Qureshi & Qazi] is the provably
secure single-entry tracker built on top: each bank remembers only the row
with the *highest counter value observed since the bank's last mitigation*;
when that value reaches the ALERT threshold the DRAM asserts ALERT, and
under the resulting RFM every bank mitigates its tracked row if the value
is at least the Eligibility Threshold (ETH = ATH / 2).

All MoPAC variants reuse this machinery — they differ only in *when* and
*by how much* the counters are updated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Victim rows refreshed around a mitigated aggressor (blast radius 2).
BLAST_RADIUS = 2


@dataclass
class MoatTracker:
    """Single-entry per-bank tracker: (row, counter value)."""

    row: int = -1
    value: int = 0

    def observe(self, row: int, value: int) -> None:
        """Track the row if its counter exceeds the current maximum."""
        if value > self.value or self.row < 0:
            self.row = row
            self.value = value

    def invalidate(self) -> None:
        self.row = -1
        self.value = 0

    @property
    def valid(self) -> bool:
        return self.row >= 0


class PRACCounters:
    """Per-bank PRAC counter arrays with MOAT trackers.

    One instance models one DRAM chip's view of a sub-channel: ``banks``
    counter arrays of ``rows`` entries each, plus one :class:`MoatTracker`
    per bank. Counter updates feed the tracker; refreshes clear counters.
    """

    def __init__(self, banks: int, rows: int):
        if banks <= 0 or rows <= 0:
            raise ValueError("banks and rows must be positive")
        self.banks = banks
        self.rows = rows
        self.counters = [np.zeros(rows, dtype=np.int64) for _ in range(banks)]
        self.trackers = [MoatTracker() for _ in range(banks)]

    def update(self, bank: int, row: int, increment: int) -> int:
        """Apply a counter update and inform the MOAT tracker.

        Returns the new counter value.
        """
        counters = self.counters[bank]
        counters[row] += increment
        value = int(counters[row])
        self.trackers[bank].observe(row, value)
        return value

    def value(self, bank: int, row: int) -> int:
        return int(self.counters[bank][row])

    def tracker(self, bank: int) -> MoatTracker:
        return self.trackers[bank]

    def mitigate(self, bank: int) -> int | None:
        """Mitigate the tracked row of ``bank``.

        Performs the victim refresh bookkeeping: the aggressor's counter is
        reset (its victims are now fresh) and each victim row's counter is
        incremented by one, because a victim refresh activates the victim
        (paper footnote 5). Returns the mitigated row, or None if the
        tracker was empty.
        """
        tracker = self.trackers[bank]
        if not tracker.valid:
            return None
        row = tracker.row
        counters = self.counters[bank]
        counters[row] = 0
        tracker.invalidate()
        for offset in range(1, BLAST_RADIUS + 1):
            for victim in (row - offset, row + offset):
                if 0 <= victim < self.rows:
                    counters[victim] += 1
                    tracker.observe(victim, int(counters[victim]))
        return row

    def refresh_rows(self, bank: int, start: int, stop: int) -> None:
        """Periodic refresh of rows [start, stop): counters reset.

        If the MOAT-tracked row falls in the refreshed range its entry is
        invalidated (its counter is now zero).
        """
        self.counters[bank][start:stop] = 0
        tracker = self.trackers[bank]
        if tracker.valid and start <= tracker.row < stop:
            tracker.invalidate()

    def max_value(self, bank: int) -> int:
        return int(self.counters[bank].max())


@dataclass
class RefreshSchedule:
    """Round-robin group refresh: REF k refreshes group k mod groups.

    The paper divides memory into 8192 groups refreshed once per tREFW.
    Scaled-down geometries use fewer groups so that every row is still
    refreshed exactly once per (scaled) refresh window.
    """

    rows: int
    groups: int = 8192
    next_group: int = 0
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError("rows must be positive")
        self.groups = max(1, min(self.groups, self.rows))

    @property
    def rows_per_group(self) -> int:
        return (self.rows + self.groups - 1) // self.groups

    def advance(self) -> tuple[int, int]:
        """Return the [start, stop) row range refreshed by the next REF."""
        start = self.next_group * self.rows_per_group
        stop = min(start + self.rows_per_group, self.rows)
        self.next_group += 1
        if self.next_group >= self.groups:
            self.next_group = 0
            self.rounds += 1
        return start, stop
