"""PRACtical: subarray-level counter update, bank-level recovery (§9.2).

PRACtical attacks PRAC's two throughput sinks independently:

* **Subarray-level counter update.** The per-row counter read-modify-write
  only serialises against the *subarray* holding the row, not the whole
  bank. When consecutive episodes in a bank land in different subarrays the
  previous episode's counter write overlaps the next activation, so the
  episode runs at baseline timings; only a same-subarray back-to-back pair
  pays the full PRAC tRC. Counting stays exact — every precharge still
  adds +1 — the knob is purely *when the write is on the critical path*.

* **Bank-level recovery isolation.** On ABO the DRAM only needs the RFM to
  cover the bank(s) whose counters crossed ATH; activations to the other
  banks may proceed during the recovery window. The policy exposes
  ``recovery_scope = "bank"`` plus :meth:`alert_banks`, and the memory
  controller / attack harness stall exactly those banks while the rest of
  the sub-channel keeps issuing.

The tracker is per-(bank, subarray): each subarray remembers its hottest
counter value since its last mitigation, an RFM mitigates every eligible
subarray of the recovery banks, and ALERT fires when any subarray tracker
reaches ATH. MOAT's security argument is unchanged — the per-subarray
tracker dominates the per-bank one (it can only mitigate *more* rows per
RFM), and counting is exact — so the Table 2 thresholds apply as-is.
"""

from __future__ import annotations

from ..dram.timing import MoPACTimings, TimingSet
from ..security.moat_model import moat_ath, moat_eth
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import BLAST_RADIUS, MoatTracker, RefreshSchedule
from .security import SecurityTelemetry

import numpy as np

#: Default subarrays per bank (real parts have 32-128; the scaled-down
#: geometries used in tests keep the ratio rows/subarray meaningful).
DEFAULT_SUBARRAYS = 8


class SubarrayState:
    """Per-bank PRAC counters with one MOAT tracker per subarray."""

    def __init__(self, banks: int, rows: int, subarrays: int):
        if banks <= 0 or rows <= 0:
            raise ValueError("banks and rows must be positive")
        if not 0 < subarrays <= rows:
            raise ValueError("subarrays must be in (0, rows]")
        self.banks = banks
        self.rows = rows
        self.subarrays = subarrays
        self.counters = [np.zeros(rows, dtype=np.int64) for _ in range(banks)]
        self.trackers = [[MoatTracker() for _ in range(subarrays)]
                         for _ in range(banks)]

    def subarray_of(self, row: int) -> int:
        """Contiguous row blocks: subarray k holds rows [k*R/S, (k+1)*R/S)."""
        return row * self.subarrays // self.rows

    def update(self, bank: int, row: int, increment: int) -> int:
        counters = self.counters[bank]
        counters[row] += increment
        value = int(counters[row])
        self.trackers[bank][self.subarray_of(row)].observe(row, value)
        return value

    def value(self, bank: int, row: int) -> int:
        return int(self.counters[bank][row])

    def max_tracked(self, bank: int) -> int:
        """Hottest tracked value across the bank's subarrays."""
        return max(t.value for t in self.trackers[bank])

    def mitigate_subarray(self, bank: int, subarray: int) -> int | None:
        """Mitigate the subarray's tracked row (PRACCounters semantics).

        The aggressor's counter resets and each blast-radius victim gains
        +1 (the victim refresh activates it); victims near a subarray edge
        are observed into *their own* subarray's tracker.
        """
        tracker = self.trackers[bank][subarray]
        if not tracker.valid:
            return None
        row = tracker.row
        counters = self.counters[bank]
        counters[row] = 0
        tracker.invalidate()
        for offset in range(1, BLAST_RADIUS + 1):
            for victim in (row - offset, row + offset):
                if 0 <= victim < self.rows:
                    counters[victim] += 1
                    self.trackers[bank][self.subarray_of(victim)].observe(
                        victim, int(counters[victim]))
        return row

    def refresh_rows(self, bank: int, start: int, stop: int) -> None:
        self.counters[bank][start:stop] = 0
        for tracker in self.trackers[bank]:
            if tracker.valid and start <= tracker.row < stop:
                tracker.invalidate()


class PRACticalPolicy(MitigationPolicy):
    """Exact PRAC with subarray-overlapped updates and bank-scoped ABO."""

    name = "practical"

    #: The harness/MC stall only :meth:`alert_banks` during recovery.
    recovery_scope = "bank"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 subarrays: int = DEFAULT_SUBARRAYS,
                 timings: MoPACTimings | None = None):
        self.timings = timings or MoPACTimings.default()
        super().__init__(self.timings.normal)
        if trh <= 0:
            raise ValueError("trh must be positive")
        self.trh = trh
        self.ath = moat_ath(trh)
        self.eth = moat_eth(trh)
        self.state = SubarrayState(banks, rows, min(subarrays, rows))
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self.security = SecurityTelemetry(banks, rows)
        #: last-activated subarray per bank; -1 = counter write retired
        self._busy_subarray = [-1] * banks
        self._alert_banks: set[int] = set()
        self._alert = False
        self._acts_since_rfm = 1
        self.overlapped_updates = 0
        # the cu flag encodes which timing set the episode ran at (the
        # oracle's contract); counting itself is unconditional — see
        # on_precharge
        normal, cu = self.timings.normal, self.timings.counter_update
        self._plain_decision = EpisodeDecision(normal, normal, False)
        self._cu_decision = EpisodeDecision(cu, cu, True)

    # -- activation path --------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        self.security.on_activate(bank, row)
        subarray = self.state.subarray_of(row)
        previous = self._busy_subarray[bank]
        self._busy_subarray[bank] = subarray
        if previous == subarray:
            # same-subarray back-to-back: the pending counter write is on
            # the critical path, so this episode pays the PRAC timings
            return self._cu_decision
        self.overlapped_updates += 1
        return self._plain_decision

    def timing_pair(self) -> tuple[TimingSet, TimingSet]:
        return self.timings.normal, self.timings.counter_update

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        # counting is exact regardless of which timing set the episode
        # used — the decision flag only encodes critical-path placement
        self.stats.counter_updates += 1
        value = self.state.update(bank, row, 1)
        self.security.on_counter_update(bank, row, value)
        if value >= self.ath:
            self._alert = True
            self._alert_banks.add(bank)

    # -- maintenance path --------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        banks = (range(self.state.banks) if bank is None else (bank,))
        for index in banks:
            start, stop = self.refresh_schedules[index].advance()
            self.state.refresh_rows(index, start, stop)
            self.security.on_refresh_range(index, start, stop)
            # REF closes the bank; the pending write retires under it
            self._busy_subarray[index] = -1

    def alert_requested(self) -> bool:
        return self._alert and self._acts_since_rfm > 0

    def alert_banks(self) -> tuple[int, ...]:
        """Banks the pending ALERT needs recovery on (sorted)."""
        return tuple(sorted(self._alert_banks))

    def on_rfm(self, now: int) -> None:
        """Mitigate every eligible subarray of the recovery banks only."""
        self.stats.alerts += 1
        self.stats.alerts_mitigation += 1
        if self._acts_since_rfm > 0:  # first RFM of this ALERT episode
            self.security.on_rfm(self.stats.activations)
        for bank in sorted(self._alert_banks):
            for subarray in range(self.state.subarrays):
                tracker = self.state.trackers[bank][subarray]
                if tracker.valid and tracker.value >= self.eth:
                    row = self.state.mitigate_subarray(bank, subarray)
                    if row is not None:
                        self._record_mitigation(bank, row, now)
            self._busy_subarray[bank] = -1
        self._alert_banks.clear()
        self._alert = False
        self._acts_since_rfm = 0
        for bank in range(self.state.banks):
            if self.state.max_tracked(bank) >= self.ath:
                self._alert = True
                self._alert_banks.add(bank)

    # -- introspection -----------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        return self.state.value(bank, row)
