"""QPRAC-style priority-queue PRAC service (paper Section 9.1).

QPRAC [Woo+, HPCA'25] keeps PRAC's per-row counters and deterministic
updates but services mitigations *proactively*: each bank maintains a
small priority queue of hot rows (enqueued when their counter crosses an
eligibility threshold at precharge time) and mitigates the hottest entry
during every REF, reserving ABO as a rarely-used backstop for rows that
still manage to reach the ALERT threshold.

This is a simplified reconstruction (the HPCA paper has additional
service opportunities); it exists as the second secure PRAC servicing
discipline next to MOAT, to compare ABO rates —
``benchmarks/bench_ablation_qprac.py``.

Like PRAC+MOAT it pays the full inflated PRAC timings, so its benign
slowdown matches PRAC's; the interesting difference is *when* mitigations
are served.
"""

from __future__ import annotations

import heapq

from ..dram.timing import TimingSet, ddr5_prac
from ..security.moat_model import moat_ath, moat_eth
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import PRACCounters, RefreshSchedule
from .security import SecurityTelemetry

#: Default per-bank priority-queue capacity.
DEFAULT_QUEUE_SIZE = 8


class QPRACPolicy(MitigationPolicy):
    """PRAC with proactive priority-queue mitigation service."""

    name = "qprac"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 timing: TimingSet | None = None):
        super().__init__(timing or ddr5_prac())
        if trh <= 0:
            raise ValueError("trh must be positive")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.trh = trh
        self.ath = moat_ath(trh)
        self.eth = moat_eth(trh)  # enqueue threshold
        self.state = PRACCounters(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self.security = SecurityTelemetry(banks, rows)
        self.queue_size = queue_size
        # per-bank max-heaps of (-value, row); membership via sets
        self._heaps: list[list[tuple[int, int]]] = [[] for _ in range(banks)]
        self._queued: list[set[int]] = [set() for _ in range(banks)]
        self._alert = False
        self._acts_since_rfm = 1
        self.proactive_mitigations = 0

    # ------------------------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        self.security.on_activate(bank, row)
        return self._cu_decision

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        if not counter_update:
            return
        self.stats.counter_updates += 1
        value = self.state.update(bank, row, 1)
        self.security.on_counter_update(bank, row, value)
        if value >= self.eth:
            self._enqueue(bank, row, value)
        if value >= self.ath:
            self._alert = True

    def _enqueue(self, bank: int, row: int, value: int) -> None:
        if row in self._queued[bank]:
            return  # stale heap entries are refreshed lazily at pop time
        if len(self._queued[bank]) >= self.queue_size:
            return  # full queue: the row keeps counting toward ATH
        heapq.heappush(self._heaps[bank], (-value, row))
        self._queued[bank].add(row)

    # ------------------------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        banks = (range(self.state.banks) if bank is None else (bank,))
        for index in banks:
            start, stop = self.refresh_schedules[index].advance()
            self.state.refresh_rows(index, start, stop)
            self.security.on_refresh_range(index, start, stop)
            if self._service_queue(index, now):
                self.proactive_mitigations += 1

    def _service_queue(self, bank: int, now: int) -> bool:
        """Mitigate the hottest queued row of ``bank``; True if served."""
        heap = self._heaps[bank]
        while heap:
            _, row = heapq.heappop(heap)
            if row not in self._queued[bank]:
                continue  # stale
            self._queued[bank].discard(row)
            value = self.state.value(bank, row)
            if value <= 0:
                continue  # refreshed in the meantime
            self._mitigate_row(bank, row, now)
            return True
        return False

    def _mitigate_row(self, bank: int, row: int, now: int) -> None:
        tracker = self.state.tracker(bank)
        # Reuse the counter machinery: point the tracker at the row.
        tracker.row = row
        tracker.value = self.state.value(bank, row)
        mitigated = self.state.mitigate(bank)
        if mitigated is not None:
            self._record_mitigation(bank, mitigated, now)

    # ------------------------------------------------------------------
    def alert_requested(self) -> bool:
        return self._alert and self._acts_since_rfm > 0

    def on_rfm(self, now: int) -> None:
        """Backstop: mitigate every bank's hottest row under ABO."""
        self.stats.alerts += 1
        self.stats.alerts_mitigation += 1
        if self._acts_since_rfm > 0:  # first RFM of this ALERT episode
            self.security.on_rfm(self.stats.activations)
        for bank in range(self.state.banks):
            tracker = self.state.tracker(bank)
            if tracker.valid and tracker.value >= self.eth:
                row = self.state.mitigate(bank)
                if row is not None:
                    self._queued[bank].discard(row)
                    self._record_mitigation(bank, row, now)
        self._alert = False
        self._acts_since_rfm = 0
        for bank in range(self.state.banks):
            if self.state.tracker(bank).value >= self.ath:
                self._alert = True
                break

    # ------------------------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        return self.state.value(bank, row)

    def queue_occupancy(self, bank: int) -> int:
        return len(self._queued[bank])


#: Default proactive service budget per REF (the HPCA paper's QPRAC-2).
DEFAULT_MITIGATIONS_PER_REF = 2


class QPRACProactivePolicy(QPRACPolicy):
    """QPRAC with the paper's full proactive-service discipline.

    Two additions over the baseline queue service:

    * **multiple mitigations per REF** — each REF shadow is long enough to
      serve up to ``mitigations_per_ref`` queued rows per bank (QPRAC-k in
      the HPCA paper), draining bursts before they approach ATH;
    * **opportunistic service** — when a bank's queue is empty at REF time
      the bank mitigates its MOAT-tracked hottest row anyway (even below
      ETH), so the service slot is never wasted and steady-state counters
      stay far from the ALERT threshold.

    Together these make the ABO backstop essentially unreachable for
    benign workloads while keeping counting exact (+1 per precharge).
    """

    name = "qprac-proactive"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 mitigations_per_ref: int = DEFAULT_MITIGATIONS_PER_REF,
                 opportunistic: bool = True,
                 timing: TimingSet | None = None):
        super().__init__(trh, banks, rows, refresh_groups,
                         queue_size=queue_size, timing=timing)
        if mitigations_per_ref < 1:
            raise ValueError("mitigations_per_ref must be >= 1")
        self.mitigations_per_ref = mitigations_per_ref
        self.opportunistic = opportunistic
        self.opportunistic_mitigations = 0

    def on_refresh(self, now: int, bank: int | None = None) -> None:
        banks = (range(self.state.banks) if bank is None else (bank,))
        for index in banks:
            start, stop = self.refresh_schedules[index].advance()
            self.state.refresh_rows(index, start, stop)
            self.security.on_refresh_range(index, start, stop)
            served = 0
            while (served < self.mitigations_per_ref
                   and self._service_queue(index, now)):
                served += 1
                self.proactive_mitigations += 1
            if served == 0 and self.opportunistic:
                tracker = self.state.tracker(index)
                if tracker.valid and tracker.value > 0:
                    row = self.state.mitigate(index)
                    if row is not None:
                        self._queued[index].discard(row)
                        self._record_mitigation(index, row, now)
                        self.opportunistic_mitigations += 1
