"""TRR-style small tracker (paper Section 2.3 — the broken DDR4 strawman).

Commercial Target-Row-Refresh trackers keep a handful of counter entries
per bank (1-32) and mitigate the hottest entry under the shadow of REF.
Because the table is tiny, patterns with more aggressor rows than entries
(TRRespass / Blacksmith style) evict the real aggressors and hammer
through. We implement a Misra-Gries frequent-item tracker — a *charitable*
reconstruction of TRR — and the attack tests show it still breaks, which
is exactly the paper's motivation for PRAC.
"""

from __future__ import annotations

from ..dram.timing import TimingSet, ddr5_base
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import RefreshSchedule
from .security import SecurityTelemetry


class TRRPolicy(MitigationPolicy):
    """Misra-Gries tracker with ``entries`` counters per bank."""

    name = "trr"

    def __init__(self, banks: int = 32, entries: int = 16,
                 rows: int = 65536, refresh_groups: int = 8192,
                 mitigation_threshold: int = 64,
                 refs_per_mitigation: int = 4,
                 timing: TimingSet | None = None):
        super().__init__(timing or ddr5_base())
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.mitigation_threshold = mitigation_threshold
        self.refs_per_mitigation = refs_per_mitigation
        self.tables: list[dict[int, int]] = [{} for _ in range(banks)]
        # the shadow truth makes the strawman's escapes measurable
        self.security = SecurityTelemetry(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self._ref_count = 0
        self._bank_ref_counts = [0] * banks

    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self.security.on_activate(bank, row)
        table = self.tables[bank]
        if row in table:
            table[row] += 1
        elif len(table) < self.entries:
            table[row] = 1
        else:
            # Misra-Gries decrement: all counters shrink by one.
            for key in list(table):
                table[key] -= 1
                if table[key] <= 0:
                    del table[key]
        return self._plain_decision

    def _advance_refresh(self, bank: int) -> None:
        start, stop = self.refresh_schedules[bank].advance()
        self.security.on_refresh_range(bank, start, stop)

    def on_refresh(self, now: int, bank: int | None = None) -> None:
        if bank is not None:
            self._advance_refresh(bank)
            self._bank_ref_counts[bank] += 1
            if self._bank_ref_counts[bank] % self.refs_per_mitigation:
                return
            self._service_bank(bank, now)
            return
        for index in range(len(self.tables)):
            self._advance_refresh(index)
        self._ref_count += 1
        if self._ref_count % self.refs_per_mitigation:
            return
        for index in range(len(self.tables)):
            self._service_bank(index, now)

    def _service_bank(self, bank: int, now: int) -> None:
        table = self.tables[bank]
        if not table:
            return
        row, count = max(table.items(), key=lambda item: item[1])
        if count >= self.mitigation_threshold:
            self._record_mitigation(bank, row, now)
            del table[row]

    def tracked_rows(self, bank: int) -> dict[int, int]:
        return dict(self.tables[bank])
