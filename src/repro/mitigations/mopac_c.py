"""MoPAC-C: memory-controller-side probabilistic counting (Section 5).

The memory controller decides with probability p, at activation time,
whether the episode will be closed with PREcu (counter-update precharge,
PRAC latency) or a plain PRE (baseline latency). Selected episodes
increment the row's PRAC counter by 1/p; MOAT operates on the revised
ALERT threshold ATH* = C / p derived in :mod:`repro.security.csearch`.

Only a fraction p of episodes pays the PRAC timing tax, which is the whole
point of the design: at T_RH = 500 (p = 1/8) seven out of eight precharges
complete in 14 ns instead of 36 ns.
"""

from __future__ import annotations

import random

from ..dram.timing import MoPACTimings
from ..security.csearch import MoPACParams, mopac_c_params
from .base import EpisodeDecision
from .prac import PRACMoatPolicy


class MoPACCPolicy(PRACMoatPolicy):
    """MoPAC-C: probabilistic PREcu selection at the memory controller."""

    name = "mopac-c"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 p: float | None = None, refresh_groups: int = 8192,
                 timings: MoPACTimings | None = None,
                 rng: random.Random | None = None,
                 params: MoPACParams | None = None):
        self.params = params or mopac_c_params(trh, p)
        self.timings = timings or MoPACTimings.default()
        super().__init__(trh, banks, rows, refresh_groups,
                         timing=self.timings.normal)
        # MOAT thresholds are replaced by the revised probabilistic ones.
        self.ath = self.params.ath_star
        self.eth = max(self.params.ath_star // 2, 1)
        self.p = self.params.p
        self.increment = round(1 / self.p)
        self.rng = rng or random.Random(0x40AC)
        # The per-ACT coin flip picks between exactly two decisions, so
        # both flavours are prebuilt (EpisodeDecision is frozen).
        normal, cu = self.timings.normal, self.timings.counter_update
        self._plain_decision = EpisodeDecision(normal, normal, False)
        self._cu_decision = EpisodeDecision(cu, cu, True)

    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        self.security.on_activate(bank, row)
        if self.rng.random() < self.p:
            return self._cu_decision
        return self._plain_decision

    def timing_pair(self):
        return self.timings.normal, self.timings.counter_update

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        if not counter_update:
            return
        self.stats.counter_updates += 1
        value = self.state.update(bank, row, self.increment)
        self.security.on_counter_update(bank, row, value)
        if value >= self.ath:
            self._request_alert()
