"""Security telemetry: how well sampled counters track ground truth.

MoPAC's security argument is statistical — probabilistic activation
counting trades PRAC's exact per-row counters for sampled estimates —
yet until this module the simulator exported nothing about how far the
estimates stray. :class:`SecurityTelemetry` gives every counting policy
a shadow **true-activation** ledger with exact-PRAC semantics (the same
accounting the PR 3 :class:`~repro.check.differential.CounterConservationAuditor`
maintains externally): +1 per ACT, aggressor reset plus blast-radius
victim increments per mitigation (paper footnote 5), refresh ranges
cleared in lockstep with the policy's own clears. Policies feed it from
the exact sites where they mutate their own counters, so the shadow is
valid under both the full-system simulator and the activation-level
attack harness, and identically across the reference and fast engines
(both drive the same policy-hook sequence).

Exported under ``mitigation.{sc}.security.*`` on every result snapshot:

* ``drift.*`` — histogram of ``|estimate - truth|`` observed at every
  counter-update, plus ``drift_max``. Exact-PRAC designs must show
  identically zero drift (the differential harness asserts it);
  MoPAC's drift is the quantity its ATH*/TTH analysis bounds.
* ``precu_rate`` / ``srq_insertion_rate`` — PRE-insertion rates per
  activation (the performance side of the trade).
* ``max_disturbance`` and ``bank.{b}.max_disturbance`` — the highest
  true activation count any row reached between clears, per bank: the
  number MOAT's guarantee caps at the tolerated activation count.
* ``rfm_cadence.*`` — histogram of activations between RFM services
  (the ABO duty cycle).

Determinism: the telemetry reads no clock and no RNG; every value is a
pure function of the policy-hook sequence, so snapshots stay
bit-identical across serial/parallel execution and across engines.
"""

from __future__ import annotations

import numpy as np

from ..obs.registry import Histogram
from .prac_state import BLAST_RADIUS

#: Drift histogram bucket edges (|estimate - truth| in activations).
DRIFT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: RFM cadence bucket edges (activations between RFM services).
CADENCE_BOUNDS = (10, 100, 1_000, 10_000, 100_000, 1_000_000)


class SecurityTelemetry:
    """Shadow true-activation counters plus drift/cadence accounting."""

    __slots__ = ("banks", "rows", "true_counts", "peak", "drift",
                 "drift_max", "drift_total", "cadence", "_last_rfm_acts")

    def __init__(self, banks: int, rows: int):
        if banks <= 0 or rows <= 0:
            raise ValueError("banks and rows must be positive")
        self.banks = banks
        self.rows = rows
        self.true_counts = [np.zeros(rows, dtype=np.int64)
                            for _ in range(banks)]
        #: per-bank maximum true count captured at clear time
        self.peak = [0] * banks
        self.drift = Histogram(DRIFT_BOUNDS)
        self.drift_max = 0
        self.drift_total = 0
        self.cadence = Histogram(CADENCE_BOUNDS)
        self._last_rfm_acts = 0

    # -- feeding sites (called by the owning policy) -----------------------
    def on_activate(self, bank: int, row: int) -> None:
        """One true activation of (bank, row)."""
        self.true_counts[bank][row] += 1

    def on_counter_update(self, bank: int, row: int, estimate: int) -> None:
        """The policy wrote ``estimate`` into its (bank, row) counter."""
        drift = abs(int(estimate) - int(self.true_counts[bank][row]))
        self.drift.observe(drift)
        self.drift_total += drift
        if drift > self.drift_max:
            self.drift_max = drift

    def on_mitigation(self, bank: int, row: int) -> None:
        """Victim refresh of ``row``: truth resets, neighbours +1."""
        counts = self.true_counts[bank]
        value = int(counts[row])
        if value > self.peak[bank]:
            self.peak[bank] = value
        counts[row] = 0
        for offset in range(1, BLAST_RADIUS + 1):
            for victim in (row - offset, row + offset):
                if 0 <= victim < self.rows:
                    counts[victim] += 1

    def on_refresh_range(self, bank: int, start: int, stop: int) -> None:
        """Periodic refresh cleared rows [start, stop) of ``bank``."""
        if stop <= start:
            return
        counts = self.true_counts[bank]
        window_max = int(counts[start:stop].max())
        if window_max > self.peak[bank]:
            self.peak[bank] = window_max
        counts[start:stop] = 0

    def on_rfm(self, total_activations: int) -> None:
        """One RFM service; pass the policy's running activation count."""
        self.cadence.observe(total_activations - self._last_rfm_acts)
        self._last_rfm_acts = total_activations

    # -- introspection -----------------------------------------------------
    def true_count(self, bank: int, row: int) -> int:
        return int(self.true_counts[bank][row])

    def max_disturbance(self, bank: int) -> int:
        """Highest true count any row of ``bank`` ever reached."""
        return max(self.peak[bank], int(self.true_counts[bank].max()))

    def as_dict(self, stats) -> dict:
        """``mitigation.{sc}.security.*`` snapshot fragment.

        ``stats`` is the policy's :class:`~repro.mitigations.base.PolicyStats`
        — the rates are derived from its counters so they agree with
        the neighbouring ``mitigation.{sc}.*`` family by construction.
        """
        acts = stats.activations
        per_bank = [self.max_disturbance(bank)
                    for bank in range(self.banks)]
        return {
            "drift": self.drift,
            "drift_max": self.drift_max,
            "drift_total": self.drift_total,
            "precu_rate": stats.counter_updates / acts if acts else 0.0,
            "srq_insertion_rate":
                stats.srq_insertions / acts if acts else 0.0,
            "rfm_cadence": self.cadence,
            "max_disturbance": max(per_bank) if per_bank else 0,
            "bank": {str(bank): {"max_disturbance": value}
                     for bank, value in enumerate(per_bank)},
        }
