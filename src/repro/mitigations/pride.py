"""PrIDE baseline tracker (Jaleel+, ISCA'24; paper Section 9.2).

PrIDE samples each activation with a fixed Bernoulli probability (one
expected sample per mitigation window) into a small per-bank FIFO; one
entry is mitigated per mitigation opportunity (every
``refs_per_mitigation`` REFs). The FIFO is lossy — a sample arriving when
the queue is full is dropped — which is the structural weakness that makes
PrIDE tolerate a higher T_RH than MINT in Table 13.
"""

from __future__ import annotations

import collections
import random

from ..dram.timing import TimingSet, ddr5_base
from .base import EpisodeDecision, MitigationPolicy
from .mint import DEFAULT_WINDOW
from .prac_state import RefreshSchedule
from .security import SecurityTelemetry


class PrIDEPolicy(MitigationPolicy):
    """Bernoulli sampling into a lossy per-bank FIFO, drain-on-REF."""

    name = "pride"

    def __init__(self, banks: int = 32, window: int = DEFAULT_WINDOW,
                 rows: int = 65536, refresh_groups: int = 8192,
                 queue_size: int = 2, refs_per_mitigation: int = 1,
                 timing: TimingSet | None = None,
                 rng: random.Random | None = None):
        super().__init__(timing or ddr5_base())
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if refs_per_mitigation < 1:
            raise ValueError("refs_per_mitigation must be >= 1")
        self.probability = 1.0 / window
        self.queues: list[collections.deque[int]] = [
            collections.deque() for _ in range(banks)
        ]
        self.queue_size = queue_size
        self.refs_per_mitigation = refs_per_mitigation
        self.rng = rng or random.Random(0x1DE)
        self.security = SecurityTelemetry(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self.dropped_samples = 0
        self._ref_count = 0
        self._bank_ref_counts = [0] * banks

    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self.security.on_activate(bank, row)
        if self.rng.random() < self.probability:
            queue = self.queues[bank]
            if len(queue) < self.queue_size:
                queue.append(row)
            else:
                self.dropped_samples += 1
        return self._plain_decision

    def _advance_refresh(self, bank: int) -> None:
        start, stop = self.refresh_schedules[bank].advance()
        self.security.on_refresh_range(bank, start, stop)

    def on_refresh(self, now: int, bank: int | None = None) -> None:
        if bank is not None:
            self._advance_refresh(bank)
            self._bank_ref_counts[bank] += 1
            if self._bank_ref_counts[bank] % self.refs_per_mitigation:
                return
            if self.queues[bank]:
                self._record_mitigation(bank, self.queues[bank].popleft(),
                                        now)
            return
        for index in range(len(self.queues)):
            self._advance_refresh(index)
        self._ref_count += 1
        if self._ref_count % self.refs_per_mitigation:
            return
        for index, queue in enumerate(self.queues):
            if queue:
                self._record_mitigation(index, queue.popleft(), now)
