"""Discovery registry for mitigation designs.

Every registered design is described by a :class:`MitigationSpec` — a
factory plus the *contract* the design claims to satisfy (exact counting,
update-per-activation, expected security, tolerated threshold). The
differential harness, the scheduler fuzzer, the shared contract test
suite and the ``campaign compare-mitigations`` table all iterate the
registry instead of hard-coding design lists, so registering a new
mitigation automatically subjects it to:

* the identical-adversarial-stream differential run (security ledger,
  counter-conservation shadow audit, drift bounds),
* the property-based MC scheduler fuzzer + conformance oracle,
* ~30 contract tests (determinism, conservation, engine bit-identity).

Policies are constructed through :func:`make_policy`; stochastic designs
receive a :func:`repro.rng.derive_seed`-derived private stream named
after the design, so the same ``seed`` reproduces the same run for every
consumer of the registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..rng import derive_seed
from .base import MitigationPolicy
from .cnc_prac import CnCPRACPolicy
from .mint import MINTPolicy
from .moat import MOATPolicy
from .mopac_c import MoPACCPolicy
from .mopac_d import MoPACDPolicy
from .prac import PRACMoatPolicy
from .practical import PRACticalPolicy
from .pride import PrIDEPolicy
from .qprac import QPRACPolicy, QPRACProactivePolicy
from .trr import TRRPolicy

#: factory signature: (trh, banks, rows, refresh_groups, seed, **overrides)
PolicyFactory = Callable[..., MitigationPolicy]


@dataclass(frozen=True)
class MitigationSpec:
    """One registered design and the contract it claims to satisfy."""

    name: str
    factory: PolicyFactory
    #: short human description for tables and docs
    description: str = ""
    #: per-row counters conserved exactly vs the exact-PRAC shadow
    #: (counter-conservation audit + identically-zero security drift)
    exact: bool = False
    #: maintains activation counters at all (drift telemetry meaningful)
    counting: bool = True
    #: expected to hold the Rowhammer threshold (False: known-broken
    #: strawman — the differential run *expects* the ledger to complain)
    secure: bool = True
    #: one counter update per activation (coalescing designs are exact
    #: but commit fewer writes than activations)
    update_per_act: bool = False
    #: which timing set(s) episodes run on: "base" | "prac" | "dual"
    timing: str = "prac"
    #: minimum T_RH the design's analysis tolerates (None: trh itself).
    #: The security ledger judges the design at max(trh, tolerated).
    tolerated_trh: Callable[[int], int] | None = None
    #: constructor knobs worth sweeping, for docs: (name, meaning)
    knobs: tuple[tuple[str, str], ...] = field(default=())

    def effective_trh(self, trh: int) -> int:
        """Threshold the security verdict holds this design to."""
        if self.tolerated_trh is None:
            return trh
        return max(trh, self.tolerated_trh(trh))

    def build(self, trh: int, banks: int = 32, rows: int = 65536,
              refresh_groups: int | None = None, seed: int = 0,
              **overrides) -> MitigationPolicy:
        groups = refresh_groups if refresh_groups is not None \
            else min(8192, rows)
        policy = self.factory(trh=trh, banks=banks, rows=rows,
                              refresh_groups=groups, seed=seed, **overrides)
        assert policy.name == self.name, \
            f"factory for {self.name!r} built {policy.name!r}"
        return policy


_REGISTRY: dict[str, MitigationSpec] = {}


def register(spec: MitigationSpec) -> MitigationSpec:
    """Add ``spec`` to the registry (insertion order is table order)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"mitigation {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> MitigationSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown mitigation {name!r}; "
                       f"registered: {', '.join(_REGISTRY)}") from None


def names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def specs() -> tuple[MitigationSpec, ...]:
    return tuple(_REGISTRY.values())


def make_policy(name: str, trh: int, banks: int = 32, rows: int = 65536,
                refresh_groups: int | None = None, seed: int = 0,
                **overrides) -> MitigationPolicy:
    """Build a registered design with a design-private derived seed."""
    return get(name).build(trh, banks, rows, refresh_groups, seed,
                           **overrides)


# ---------------------------------------------------------------------------
# Registrations. Order = presentation order in comparison tables.
# ---------------------------------------------------------------------------

def _rng(seed: int, name: str) -> random.Random:
    return random.Random(derive_seed(seed, name))


def _mint_tolerated(trh: int) -> int:
    # deferred: repro.security imports dram/sim machinery that itself
    # imports repro.mitigations (registry loads at package import time)
    from ..security.tolerated import mint_tolerated
    return mint_tolerated(1)


def _pride_tolerated(trh: int) -> int:
    from ..security.tolerated import pride_tolerated
    return pride_tolerated(1)


register(MitigationSpec(
    name="prac",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        PRACMoatPolicy(trh, banks, rows, refresh_groups, **kw),
    description="Exact PRAC + ABO with the MOAT tracker (paper baseline)",
    exact=True, update_per_act=True, timing="prac",
    knobs=(("trh", "Rowhammer threshold the Table 2 ATH derives from"),),
))

register(MitigationSpec(
    name="moat",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        MOATPolicy(trh, banks, rows, refresh_groups, **kw),
    description="PRAC + MOAT with sweepable ATH/ETH thresholds",
    exact=True, update_per_act=True, timing="prac",
    knobs=(("ath", "ALERT threshold (default: Table 2 model)"),
           ("eth", "mitigation eligibility threshold (default: ATH/2)")),
))

register(MitigationSpec(
    name="qprac",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        QPRACPolicy(trh, banks, rows, refresh_groups, **kw),
    description="PRAC with per-bank priority-queue service at REF",
    exact=True, update_per_act=True, timing="prac",
    knobs=(("queue_size", "per-bank priority-queue capacity"),),
))

register(MitigationSpec(
    name="qprac-proactive",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        QPRACProactivePolicy(trh, banks, rows, refresh_groups, **kw),
    description="QPRAC with multi-service REFs + opportunistic mitigation",
    exact=True, update_per_act=True, timing="prac",
    knobs=(("queue_size", "per-bank priority-queue capacity"),
           ("mitigations_per_ref", "queue entries served per REF shadow"),
           ("opportunistic",
            "serve the MOAT-tracked row when the queue is empty")),
))

register(MitigationSpec(
    name="cnc-prac",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        CnCPRACPolicy(trh, banks, rows, refresh_groups, **kw),
    description="PRAC with coalesced counter updates (flush-on-pressure)",
    exact=True, update_per_act=False, timing="base",
    knobs=(("buffer_size", "coalescing-buffer entries per bank"),
           ("flush_threshold",
            "pending increments forcing an entry flush (derates ATH)")),
))

register(MitigationSpec(
    name="practical",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        PRACticalPolicy(trh, banks, rows, refresh_groups, **kw),
    description="Subarray-level counter update, bank-scoped ABO recovery",
    exact=True, update_per_act=True, timing="dual",
    knobs=(("subarrays", "subarrays per bank (overlap granularity)"),),
))

register(MitigationSpec(
    name="mopac-c",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        MoPACCPolicy(trh, banks, rows, refresh_groups=refresh_groups,
                     rng=_rng(seed, "mopac-c"), **kw),
    description="MoPAC-C: MC-side probabilistic PREcu selection",
    exact=False, timing="dual",
    knobs=(("p", "PREcu selection probability (default: C-search)"),),
))

register(MitigationSpec(
    name="mopac-d",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        MoPACDPolicy(trh, banks, rows, refresh_groups=refresh_groups,
                     rng=_rng(seed, "mopac-d"), **kw),
    description="MoPAC-D: in-DRAM probabilistic counting with SRQ",
    exact=False, timing="base",
    knobs=(("srq_size", "sampled-row-queue capacity"),
           ("abo_level", "RFMs per ALERT (JEDEC menu: 1, 2, 4)"),
           ("nup", "no-update-period filtering")),
))

register(MitigationSpec(
    name="mint",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        MINTPolicy(banks=banks, rows=rows, refresh_groups=refresh_groups,
                   rng=_rng(seed, "mint"), **kw),
    description="MINT: one uniform sample per window, mitigate at REF",
    counting=False, timing="base",
    tolerated_trh=_mint_tolerated,
    knobs=(("window", "sampling window W (activations)"),
           ("refs_per_mitigation", "REFs per granted mitigation")),
))

register(MitigationSpec(
    name="pride",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        PrIDEPolicy(banks=banks, rows=rows, refresh_groups=refresh_groups,
                    rng=_rng(seed, "pride"), **kw),
    description="PrIDE: Bernoulli samples into a lossy FIFO, drain at REF",
    counting=False, timing="base",
    tolerated_trh=_pride_tolerated,
    knobs=(("window", "expected activations per sample"),
           ("queue_size", "per-bank FIFO capacity"),
           ("refs_per_mitigation", "REFs per granted mitigation")),
))

register(MitigationSpec(
    name="trr",
    factory=lambda trh, banks, rows, refresh_groups, seed, **kw:
        TRRPolicy(banks=banks, rows=rows, refresh_groups=refresh_groups,
                  **kw),
    description="TRR-style Misra-Gries tracker (known-broken strawman)",
    counting=False, secure=False, timing="base",
    knobs=(("entries", "tracker entries per bank"),
           ("mitigation_threshold", "count required to mitigate"),
           ("refs_per_mitigation", "REFs per service opportunity")),
))
