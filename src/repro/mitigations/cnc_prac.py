"""CnC-PRAC: coalescing per-row counter updates (related work, §9.2).

CnC-PRAC observes that PRAC's per-precharge read-modify-write is mostly
redundant: consecutive episodes often reopen the same few rows, so their
counter increments can be *coalesced* in a small per-bank buffer and
written back in one update. Episodes then run at baseline timings — the
counter write rides maintenance windows instead of inflating every
precharge — while the coalescing buffer keeps exact per-row accounting.

Semantics implemented here:

* every closed episode adds +1 to the row's entry in the bank's
  coalescing buffer (allocating one if needed);
* **flush-on-pressure** — an entry is written back to the PRAC counter
  array immediately when (1) its pending count reaches
  ``flush_threshold`` (bounding how stale the MOAT tracker can be), or
  (2) the buffer is full and a new row needs a slot (the largest
  pending entry is evicted, preserving the hottest-row signal);
* all remaining entries flush under REF and ABO-RFM shadows, where the
  batched write is architecturally free;
* periodic refresh *forgives* buffered increments of the refreshed rows
  (their activations are erased along with the committed counter), and
  a mitigation forgives the aggressor's pending increments — both
  mirror the exact-PRAC shadow semantics, which is what keeps the
  design bit-exact under the counter-conservation audit.

Because the tracker only sees flushed values, ALERT detection can lag a
row by at most ``flush_threshold - 1`` activations; the ALERT threshold
is derated by exactly that staleness bound, so the tolerated threshold
is unchanged (MOAT's argument applies to the derated ATH).
"""

from __future__ import annotations

from ..dram.timing import TimingSet, ddr5_base
from ..security.moat_model import moat_ath
from .base import EpisodeDecision, MitigationPolicy
from .prac_state import PRACCounters, RefreshSchedule
from .security import SecurityTelemetry

#: Default coalescing-buffer capacity per bank (entries).
DEFAULT_BUFFER_SIZE = 8

#: Default flush-on-pressure bound: pending increments per entry.
DEFAULT_FLUSH_THRESHOLD = 8


class CnCPRACPolicy(MitigationPolicy):
    """PRAC with a per-bank coalescing buffer for counter updates."""

    name = "cnc-prac"

    def __init__(self, trh: int, banks: int = 32, rows: int = 65536,
                 refresh_groups: int = 8192,
                 buffer_size: int = DEFAULT_BUFFER_SIZE,
                 flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
                 timing: TimingSet | None = None):
        super().__init__(timing or ddr5_base())
        if trh <= 0:
            raise ValueError("trh must be positive")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if flush_threshold < 1:
            raise ValueError("flush_threshold must be >= 1")
        self.trh = trh
        self.buffer_size = buffer_size
        self.flush_threshold = flush_threshold
        # ALERT detection lags a hammered row by the entry's unflushed
        # pending count, so the threshold is derated by that staleness.
        self.ath = max(moat_ath(trh) - (flush_threshold - 1), 1)
        self.eth = max(self.ath // 2, 1)
        self.state = PRACCounters(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self.security = SecurityTelemetry(banks, rows)
        #: per-bank coalescing buffers: row -> pending increments
        self.buffers: list[dict[int, int]] = [{} for _ in range(banks)]
        self.coalesced_updates = 0
        self.buffer_evictions = 0
        self._alert = False
        self._acts_since_rfm = 1

    # -- activation path --------------------------------------------------
    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self._acts_since_rfm += 1
        return self._plain_decision

    def on_precharge(self, bank: int, row: int, now: int,
                     counter_update: bool) -> None:
        # The shadow truth advances at the buffering site (not the ACT):
        # an RFM flush can interleave with an open episode, and pairing
        # the truth with the increment it accounts keeps every flushed
        # value bit-equal to the truth — the design's exactness claim.
        self.security.on_activate(bank, row)
        buffer = self.buffers[bank]
        pending = buffer.get(row)
        if pending is not None:
            buffer[row] = pending + 1
            self.coalesced_updates += 1
            if pending + 1 >= self.flush_threshold:
                self._flush_entry(bank, row)
            return
        if len(buffer) >= self.buffer_size:
            # pressure: evict the largest pending entry to make room
            victim = max(buffer, key=lambda r: (buffer[r], -r))
            self._flush_entry(bank, victim)
            self.buffer_evictions += 1
        buffer[row] = 1

    # -- flush machinery ---------------------------------------------------
    def _flush_entry(self, bank: int, row: int) -> None:
        """Write one buffered entry back to the PRAC counter array."""
        increment = self.buffers[bank].pop(row)
        value = self.state.update(bank, row, increment)
        self.security.on_counter_update(bank, row, value)
        self.stats.counter_updates += 1
        if value >= self.ath:
            self._alert = True

    def _flush_bank(self, bank: int) -> None:
        for row in sorted(self.buffers[bank]):
            self._flush_entry(bank, row)

    # -- maintenance path --------------------------------------------------
    def on_refresh(self, now: int, bank: int | None = None) -> None:
        banks = (range(self.state.banks) if bank is None else (bank,))
        for index in banks:
            start, stop = self.refresh_schedules[index].advance()
            # refreshed rows are forgiven: their buffered increments
            # vanish with the committed counter, exactly like the shadow
            buffer = self.buffers[index]
            for row in [r for r in buffer if start <= r < stop]:
                del buffer[row]
            self.state.refresh_rows(index, start, stop)
            self.security.on_refresh_range(index, start, stop)
            # the REF shadow pays for writing back everything else
            self._flush_bank(index)

    def alert_requested(self) -> bool:
        return self._alert and self._acts_since_rfm > 0

    def on_rfm(self, now: int) -> None:
        """Flush every buffer, then MOAT-mitigate under the RFM."""
        self.stats.alerts += 1
        self.stats.alerts_mitigation += 1
        if self._acts_since_rfm > 0:  # first RFM of this ALERT episode
            self.security.on_rfm(self.stats.activations)
        for bank in range(self.state.banks):
            self._flush_bank(bank)
        for bank in range(self.state.banks):
            tracker = self.state.tracker(bank)
            if tracker.valid and tracker.value >= self.eth:
                row = self.state.mitigate(bank)
                if row is not None:
                    # the victim refresh forgives the aggressor's
                    # not-yet-recorded increments too
                    self.buffers[bank].pop(row, None)
                    self._record_mitigation(bank, row, now)
        self._alert = False
        self._acts_since_rfm = 0
        for bank in range(self.state.banks):
            if self.state.tracker(bank).value >= self.ath:
                self._alert = True
                break

    # -- introspection -----------------------------------------------------
    def counter_value(self, bank: int, row: int) -> int:
        """Logical counter value: committed plus buffered increments."""
        return self.state.value(bank, row) + self.buffers[bank].get(row, 0)

    def buffer_occupancy(self, bank: int) -> int:
        return len(self.buffers[bank])
