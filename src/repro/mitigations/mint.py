"""MINT baseline tracker (Qureshi+, MICRO'24; paper Section 9.2).

MINT is a minimalist in-DRAM tracker: per bank, exactly one activation out
of every sampling window of W activations is selected uniformly at random,
and the selected row is mitigated (victim-refreshed) at the next refresh
opportunity. The DRAM vendor grants one mitigation every
``refs_per_mitigation`` REF commands (Table 13 varies this from 1 to 4).

MINT never asserts ALERT and runs at baseline timings; its security is
analysed in :mod:`repro.security.tolerated`.
"""

from __future__ import annotations

import random

from ..dram.timing import TimingSet, ddr5_base
from .base import EpisodeDecision, MitigationPolicy
from .mopac_d import MintSampler
from .prac_state import RefreshSchedule
from .security import SecurityTelemetry

#: Activations a bank can perform per tREFI (3900 ns / 46 ns).
DEFAULT_WINDOW = 84


class MINTPolicy(MitigationPolicy):
    """Per-bank MINT sampling with mitigate-on-REF."""

    name = "mint"

    def __init__(self, banks: int = 32, window: int = DEFAULT_WINDOW,
                 rows: int = 65536, refresh_groups: int = 8192,
                 refs_per_mitigation: int = 1,
                 timing: TimingSet | None = None,
                 rng: random.Random | None = None):
        super().__init__(timing or ddr5_base())
        if refs_per_mitigation < 1:
            raise ValueError("refs_per_mitigation must be >= 1")
        rng = rng or random.Random(0x414E54)
        self.samplers = [
            MintSampler(window, random.Random(rng.getrandbits(64)))
            for _ in range(banks)
        ]
        self.pending: list[int | None] = [None] * banks
        self.refs_per_mitigation = refs_per_mitigation
        # MINT has no counters, but the shadow truth still tracks the
        # per-row disturbance its sampling leaves unmitigated
        self.security = SecurityTelemetry(banks, rows)
        self.refresh_schedules = [RefreshSchedule(rows, refresh_groups)
                                  for _ in range(banks)]
        self._ref_count = 0
        self._bank_ref_counts = [0] * banks

    def on_activate(self, bank: int, row: int, now: int) -> EpisodeDecision:
        self.stats.activations += 1
        self.security.on_activate(bank, row)
        selected = self.samplers[bank].observe(row)
        if selected is not None:
            # A new selection replaces an unserviced one (single register).
            self.pending[bank] = selected
        return self._plain_decision

    def _advance_refresh(self, bank: int) -> None:
        start, stop = self.refresh_schedules[bank].advance()
        self.security.on_refresh_range(bank, start, stop)

    def on_refresh(self, now: int, bank: int | None = None) -> None:
        if bank is not None:
            self._advance_refresh(bank)
            self._bank_ref_counts[bank] += 1
            if self._bank_ref_counts[bank] % self.refs_per_mitigation:
                return
            if self.pending[bank] is not None:
                self._record_mitigation(bank, self.pending[bank], now)
                self.pending[bank] = None
            return
        for index in range(len(self.pending)):
            self._advance_refresh(index)
        self._ref_count += 1
        if self._ref_count % self.refs_per_mitigation:
            return
        for index, row in enumerate(self.pending):
            if row is not None:
                self._record_mitigation(index, row, now)
                self.pending[index] = None
