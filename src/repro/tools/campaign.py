"""Evaluation campaign runner (artifact §11.5 parity).

The paper's artifact workflow is: generate configurations
(``make_ini.py``), generate the run commands (``scripts/prac/run.py``),
execute them, then aggregate per-run stats into CSVs
(``scripts/prac/stats.py``). This tool is the equivalent:

* ``plan``  — write one INI per (workload, design, T_RH) evaluation
  point into a campaign directory,
* ``run``   — execute every INI in the directory, appending one CSV row
  per run (weighted-speedup slowdown, RBHR, ALERTs, energy),
* ``stats`` — aggregate the CSV into a per-configuration summary table,
* ``verify`` — replay each planned point's traced DDR5 command stream
  through the independent conformance oracle (:mod:`repro.check`),
* ``compare-mitigations`` — run every registered mitigation through the
  differential harness on one seeded adversarial stream and print the
  §9.2-style cross-mitigation table (security verdict, service
  activity, drift, harness slowdown vs an unprotected baseline).

``run`` executes through the :mod:`repro.exec.engine`: evaluation
points (and their baselines) fan out across worker processes, results
persist in the on-disk cache (``--cache-dir`` / ``REPRO_CACHE_DIR``),
and re-running a campaign only simulates what is not cached yet.
``--serial`` restores the inline path (identical numbers).

Against a running :mod:`repro.serve` daemon the same campaign executes
remotely — concurrent campaigns share one worker pool and deduplicate
overlapping points (see ``docs/serving.md``):

* ``submit`` — send every planned point (plus baselines) as one job;
  the job id is remembered in ``<dir>/job.json``,
* ``status`` — poll the job,
* ``fetch``  — wait for completion and write the same ``results.csv``
  the local ``run`` would have produced (bit-identical numbers).

With ``submit --fabric unix:/a.sock,unix:/b.sock,...`` the campaign
instead shards across a multi-node fabric (points route to their
rendezvous-owner nodes, with hedging and node-loss failover — see
``docs/fabric.md``); ``status`` and ``fetch`` auto-detect the sharded
submission from ``job.json`` and reassemble the same ``results.csv``.

Example::

    python -m repro.tools.campaign plan  --dir camp --workloads add mcf
    python -m repro.tools.campaign run   --dir camp --workers 8
    python -m repro.tools.campaign stats --dir camp

    python -m repro.tools.campaign submit --dir camp --server unix:/tmp/s.sock
    python -m repro.tools.campaign fetch  --dir camp
    python -m repro.tools.campaign stats  --dir camp
"""

from __future__ import annotations

import argparse
import csv
import json
import pathlib
from dataclasses import replace

from ..config_io import load_design_point, save_design_point
from ..dram.energy import energy_overhead
from ..exec.engine import PointOutcome, SweepEngine
from ..exec.env import set_knob
from ..obs.log import configure, get_logger
from ..sim.runner import DesignPoint, weighted_speedup

log = get_logger("repro.tools.campaign")

DEFAULT_DESIGNS = ("prac", "mopac-c", "mopac-d")
DEFAULT_TRHS = (1000, 500, 250)
CSV_FIELDS = ("name", "workload", "design", "trh", "slowdown",
              "weighted_speedup", "rbhr", "alerts", "energy_overhead",
              "elapsed_us", "requests")


def plan(directory: pathlib.Path, workloads, designs, trhs,
         instructions: int) -> list[pathlib.Path]:
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for workload in workloads:
        for design in designs:
            for trh in trhs:
                point = DesignPoint(workload=workload, design=design,
                                    trh=trh, instructions=instructions)
                name = f"{workload}.{design}.t{trh}.ini"
                path = directory / name
                save_design_point(point, str(path))
                paths.append(path)
    return paths


def planned_points(directory: pathlib.Path
                   ) -> tuple[list[pathlib.Path], list[DesignPoint],
                              list[DesignPoint]]:
    """The campaign's INIs, their points, and the flat point+baseline
    list in execution order."""
    ini_paths = sorted(directory.glob("*.ini"))
    if not ini_paths:
        raise FileNotFoundError(f"no .ini files in {directory}")
    points = [load_design_point(str(path)) for path in ini_paths]
    flat: list[DesignPoint] = []
    for point in points:
        flat.append(point)
        flat.append(point.baseline())
    return ini_paths, points, flat


def write_results_csv(csv_path: pathlib.Path,
                      ini_paths: list[pathlib.Path],
                      points: list[DesignPoint],
                      results: list) -> pathlib.Path:
    """Render one CSV row per evaluation from the flat result list.

    ``results`` interleaves evaluation and baseline results, exactly as
    :func:`planned_points` interleaves the flat point list — the local
    ``run`` and the remote ``fetch`` both funnel through here, which is
    what keeps their CSVs byte-identical.
    """
    with open(csv_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for path, point, result, baseline in zip(
                ini_paths, points, results[0::2], results[1::2]):
            ws = weighted_speedup(result, baseline)
            writer.writerow({
                "name": path.stem,
                "workload": point.workload,
                "design": point.design,
                "trh": point.trh,
                "slowdown": f"{1 - ws:.6f}",
                "weighted_speedup": f"{ws:.6f}",
                "rbhr": f"{result.row_buffer_hit_rate:.4f}",
                "alerts": result.total_alerts,
                "energy_overhead":
                    f"{energy_overhead(result, baseline):.6f}",
                "elapsed_us": f"{result.elapsed_ps / 1e6:.2f}",
                "requests": result.total_requests,
            })
    return csv_path


def run(directory: pathlib.Path, workers: int | None = None,
        parallel: bool | None = None,
        verbose: bool = True) -> pathlib.Path:
    csv_path = directory / "results.csv"
    ini_paths, points, flat = planned_points(directory)

    total = len(set(flat))

    def progress(outcome: PointOutcome) -> None:
        point = outcome.point
        log.info("[%3d/%d] %s.%s.t%d (%s, %.1fs)",
                 outcome.index + 1, total, point.workload, point.design,
                 point.trh, outcome.source, outcome.wall_s)

    engine = SweepEngine(workers=workers, parallel=parallel,
                         progress=progress if verbose else None)
    results = engine.run(flat)
    log.info("%s", engine.metrics.summary())
    log.info("phases: %s", engine.profiler.summary())
    return write_results_csv(csv_path, ini_paths, points, results)


# ----------------------------------------------------------------------
# Remote execution through a repro.serve daemon
# ----------------------------------------------------------------------
def _job_file(directory: pathlib.Path) -> pathlib.Path:
    return directory / "job.json"


def _load_record(directory: pathlib.Path) -> dict:
    """The persisted submission record (single-server or fabric)."""
    path = _job_file(directory)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} missing; run `campaign submit` first")
    return json.loads(path.read_text())


def _load_job(directory: pathlib.Path,
              server: str | None) -> tuple[str, str]:
    """The campaign's submitted ``(job_id, server_address)``."""
    record = _load_record(directory)
    return record["id"], server or record["server"]


def submit(directory: pathlib.Path, server: str,
           priority: int = 0) -> str:
    """Submit the planned campaign as one job; remembers the id."""
    from ..serve.client import ServeClient
    _, _, flat = planned_points(directory)
    client = ServeClient(server)
    job_id = client.submit(flat, priority=priority)
    _job_file(directory).write_text(json.dumps(
        {"id": job_id, "server": server}) + "\n")
    log.info("submitted %d points as %s to %s", len(flat), job_id,
             server)
    return job_id


def fabric_submit(directory: pathlib.Path, nodes: list[str],
                  priority: int = 0) -> dict:
    """Shard the planned campaign across a fabric; remembers the jobs.

    The points route by cache key onto their rendezvous-owner nodes
    (see ``docs/fabric.md``); ``fetch`` later reassembles the shards
    into the same ``results.csv`` a single-server run produces.
    """
    from ..fabric.client import FabricClient
    _, _, flat = planned_points(directory)
    fabric = FabricClient(nodes)
    run = fabric.submit(flat, priority=priority)
    record = {"fabric": nodes, **run.describe()}
    _job_file(directory).write_text(json.dumps(record) + "\n")
    log.info("submitted %d points (%d unique) as %d job(s) across the "
             "%d-node fabric", len(flat), len(run.unique),
             len(run.jobs), len(nodes))
    return record


def status(directory: pathlib.Path, server: str | None = None) -> dict:
    from ..serve.client import ServeClient
    record = _load_record(directory)
    if "fabric" in record:
        states: dict[str, str] = {}
        for job in record["jobs"]:
            try:
                document = ServeClient(job["server"]).status(job["id"])
                state = document["state"]
            except OSError as error:
                state = f"unreachable ({error})"
            states[f"{job['server']}#{job['id']}"] = state
        done = sum(1 for state in states.values() if state == "done")
        return {"fabric_nodes": len(record["fabric"]),
                "jobs_done": done, "jobs_total": len(states), **states}
    job_id = record["id"]
    return ServeClient(server or record["server"]).status(job_id)


def fetch(directory: pathlib.Path, server: str | None = None,
          wait_s: float = 600.0) -> pathlib.Path:
    """Wait for the submitted job(s) and write ``results.csv``."""
    from ..serve.client import ServeClient
    record = _load_record(directory)
    ini_paths, points, flat = planned_points(directory)
    if "fabric" in record:
        from ..fabric.client import FabricClient
        fabric = FabricClient(record["fabric"])
        run = fabric.attach(flat, record["jobs"])
        results = fabric.wait(run, timeout_s=wait_s)
        return write_results_csv(directory / "results.csv", ini_paths,
                                 points, results)
    job_id = record["id"]
    client = ServeClient(server or record["server"])
    document = client.wait(job_id, timeout_s=wait_s,
                           tolerate_disconnects=True)
    if document["state"] != "done":
        raise RuntimeError(f"{job_id} ended {document['state']}: "
                           f"{document['error']}")
    results = client.result(job_id)
    if len(results) != len(flat):
        raise RuntimeError(
            f"{job_id} returned {len(results)} results for "
            f"{len(flat)} submitted points; was the campaign "
            f"re-planned after submit?")
    return write_results_csv(directory / "results.csv", ini_paths,
                             points, results)


def verify(directory: pathlib.Path, limit: int | None = None) -> int:
    """Replay every planned point through the conformance oracle.

    Re-runs each INI's design point with tracing enabled and checks the
    captured DDR5 command stream against :mod:`repro.check.oracle`.
    Returns the number of failing points.
    """
    from ..check.driver import verify_point
    ini_paths = sorted(directory.glob("*.ini"))
    if not ini_paths:
        raise FileNotFoundError(f"no .ini files in {directory}")
    points = [load_design_point(str(path)) for path in ini_paths]
    if limit is not None:
        points = points[:limit]
    failures = 0
    for index, point in enumerate(points):
        verdict = verify_point(point)
        print(f"[{index + 1}/{len(points)}] {verdict.describe()}")
        if not verdict.ok:
            failures += 1
    return failures


def compare_mitigations(trh: int = 500, activations: int = 60_000,
                        banks: int = 4, rows: int = 512,
                        refresh_groups: int = 64, seed: int = 0xD1FF,
                        designs: tuple[str, ...] | None = None,
                        csv_path: pathlib.Path | None = None
                        ) -> tuple[str, bool]:
    """Cross-mitigation comparison table (paper §9.2) from one command.

    Runs every registered post-PRAC design (or ``designs``) through the
    differential harness on one seeded adversarial stream, plus an
    unprotected baseline for the slowdown column, and renders one row
    per design: contract class, timing family, the threshold the
    security ledger held it to, the ledger verdict, service activity,
    telemetry drift, and harness slowdown. Returns ``(table, ok)``.
    """
    from ..attacks.harness import AttackHarness
    from ..check.differential import make_targets, run_differential
    from ..mitigations.prac import BaselinePolicy

    report = run_differential(trh=trh, activations=activations,
                              banks=banks, rows=rows,
                              refresh_groups=refresh_groups, seed=seed,
                              designs=tuple(designs) if designs else None)
    baseline = AttackHarness(
        BaselinePolicy(), trh, banks, rows, refresh_groups).run(
        iter(make_targets(seed, banks, rows, activations)), activations)
    base_ps = baseline.elapsed_ps

    fields = ("design", "class", "timing", "eff_trh", "secure",
              "max_count", "alerts", "mitigations", "cu_per_act",
              "drift_max", "slowdown")
    table_rows = []
    for o in report.outcomes:
        if o.attack_succeeded:
            verdict = "BROKEN" if o.expected_secure else "broken*"
        else:
            verdict = "yes"
        table_rows.append({
            "design": o.design,
            "class": "exact" if o.exact
                     else ("sampled" if o.counter_updates else "tracker"),
            "timing": o.timing,
            "eff_trh": o.effective_trh,
            "secure": verdict,
            "max_count": o.max_count,
            "alerts": o.alerts,
            "mitigations": o.mitigations,
            "cu_per_act": (f"{o.counter_updates / o.total_activations:.3f}"
                           if o.total_activations else "0"),
            "drift_max": o.drift_max,
            "slowdown": (f"{o.elapsed_ps / base_ps - 1:+.1%}"
                         if base_ps else "n/a"),
        })

    if csv_path is not None:
        with open(csv_path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            writer.writerows(table_rows)

    widths = {f: max(len(f), *(len(str(r[f])) for r in table_rows))
              for f in fields}
    lines = [f"cross-mitigation comparison: trh={trh} "
             f"acts={activations} banks={banks} rows={rows} "
             f"seed={hex(seed)}",
             "  ".join(f"{f:>{widths[f]}s}" for f in fields)]
    lines.extend("  ".join(f"{str(r[f]):>{widths[f]}s}" for f in fields)
                 for r in table_rows)
    if any(r["secure"] == "broken*" for r in table_rows):
        lines.append("broken*: registered as a known-broken strawman "
                     "(expected)")
    if not report.ok:
        lines.append(f"{len(report.failures)} invariant FAILURE(S):")
        lines.extend(f"  {f}" for f in report.failures)
    return "\n".join(lines) + "\n", report.ok


def stats(directory: pathlib.Path) -> str:
    csv_path = directory / "results.csv"
    if not csv_path.exists():
        raise FileNotFoundError(f"{csv_path} missing; run the campaign")
    groups: dict[tuple[str, int], list[float]] = {}
    with open(csv_path, newline="") as handle:
        for row in csv.DictReader(handle):
            key = (row["design"], int(row["trh"]))
            groups.setdefault(key, []).append(float(row["slowdown"]))
    lines = [f"{'design':>10s} {'T_RH':>6s} {'runs':>5s} "
             f"{'avg slowdown':>13s} {'worst':>8s}"]
    for (design, trh), values in sorted(groups.items()):
        lines.append(f"{design:>10s} {trh:>6d} {len(values):>5d} "
                     f"{sum(values) / len(values):>13.1%} "
                     f"{max(values):>8.1%}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.campaign",
        description="Plan, run, and aggregate an evaluation campaign.")
    parser.add_argument("command",
                        choices=("plan", "run", "stats", "verify",
                                 "submit", "status", "fetch",
                                 "compare-mitigations"))
    parser.add_argument("--dir", default="campaign",
                        help="campaign directory")
    parser.add_argument("--workloads", nargs="*",
                        default=["add", "mcf", "xalancbmk"])
    parser.add_argument("--designs", nargs="*", default=None,
                        help="plan: designs to sweep (default "
                             f"{' '.join(DEFAULT_DESIGNS)}); "
                             "compare-mitigations: designs to compare "
                             "(default: every registered mitigation)")
    parser.add_argument("--trhs", nargs="*", type=int,
                        default=list(DEFAULT_TRHS))
    parser.add_argument("--trh", type=int, default=500,
                        help="compare-mitigations: Rowhammer threshold")
    parser.add_argument("--activations", type=int, default=60_000,
                        help="compare-mitigations: adversarial stream "
                             "length")
    parser.add_argument("--seed", type=lambda s: int(s, 0),
                        default=0xD1FF,
                        help="compare-mitigations: stream master seed")
    parser.add_argument("--csv", default=None,
                        help="compare-mitigations: also write the table "
                             "as CSV to this path")
    parser.add_argument("--instructions", type=int, default=60_000)
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes "
                             "(default: REPRO_WORKERS or cpu count)")
    parser.add_argument("--serial", action="store_true",
                        help="run points inline instead of in parallel")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory "
                             "(default: REPRO_CACHE_DIR)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress logging (same as "
                             "REPRO_LOG=warning)")
    parser.add_argument("--limit", type=int, default=None,
                        help="verify: only check the first N points")
    parser.add_argument("--server", default=None,
                        help="repro.serve address (unix:/path.sock or "
                             "host:port) for submit/status/fetch")
    parser.add_argument("--fabric", nargs="?", const="", default=None,
                        metavar="ADDR,ADDR,...",
                        help="submit: shard the campaign across these "
                             "fabric nodes instead of one --server "
                             "(bare --fabric reads REPRO_FABRIC_NODES); "
                             "status/fetch auto-detect fabric "
                             "submissions from job.json")
    parser.add_argument("--priority", type=int, default=0,
                        help="submit: job priority (higher runs first)")
    parser.add_argument("--wait-s", type=float, default=600.0,
                        help="fetch: how long to wait for the job")
    args = parser.parse_args(argv)
    configure("warning" if args.quiet else None)
    directory = pathlib.Path(args.dir)
    if args.cache_dir:
        set_knob("REPRO_CACHE_DIR", args.cache_dir)

    if args.command == "compare-mitigations":
        table, ok = compare_mitigations(
            trh=args.trh, activations=args.activations, seed=args.seed,
            designs=tuple(args.designs) if args.designs else None,
            csv_path=pathlib.Path(args.csv) if args.csv else None)
        print(table, end="")
        return 0 if ok else 1
    if args.command == "plan":
        paths = plan(directory, args.workloads,
                     args.designs or list(DEFAULT_DESIGNS), args.trhs,
                     args.instructions)
        log.info("planned %d evaluations in %s/", len(paths), directory)
        return 0
    if args.command == "run":
        csv_path = run(directory, workers=args.workers,
                       parallel=False if args.serial else None,
                       verbose=not args.quiet)
        log.info("wrote %s", csv_path)
        return 0
    if args.command == "verify":
        try:
            failures = verify(directory, limit=args.limit)
        except FileNotFoundError as error:
            log.error("%s", error)
            return 2
        return 1 if failures else 0
    if args.command == "submit":
        if args.fabric is not None:
            nodes = [part.strip() for part in args.fabric.split(",")
                     if part.strip()]
            if not nodes:
                from ..fabric import fabric_nodes
                nodes = fabric_nodes() or []
            if not nodes:
                parser.error("--fabric needs node addresses (inline "
                             "or via REPRO_FABRIC_NODES)")
            try:
                record = fabric_submit(directory, nodes,
                                       priority=args.priority)
            except FileNotFoundError as error:
                log.error("%s", error)
                return 2
            for job in record["jobs"]:
                print(f"{job['server']}#{job['id']}")
            return 0
        if not args.server:
            parser.error("submit requires --server or --fabric")
        try:
            print(submit(directory, args.server,
                         priority=args.priority))
        except FileNotFoundError as error:
            log.error("%s", error)
            return 2
        return 0
    if args.command == "status":
        try:
            document = status(directory, server=args.server)
        except FileNotFoundError as error:
            log.error("%s", error)
            return 2
        for key in sorted(document):
            print(f"{key}={document[key]}")
        return 0
    if args.command == "fetch":
        try:
            csv_path = fetch(directory, server=args.server,
                             wait_s=args.wait_s)
        except (FileNotFoundError, RuntimeError, TimeoutError) as error:
            log.error("%s", error)
            return 2
        log.info("wrote %s", csv_path)
        return 0
    try:
        print(stats(directory), end="")
    except FileNotFoundError as error:
        log.error("%s", error)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
