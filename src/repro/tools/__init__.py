"""Command-line tools.

* ``python -m repro.tools.tables <name>`` — print any reproduced paper
  table/figure by name (``tab02``, ``tab05`` ... ``fig09`` ...),
* ``python -m repro.tools.hammer`` — run an attack pattern against a
  mitigation and print the referee's verdict,
* ``python -m repro.tools.tracegen`` — dump a calibrated synthetic trace
  to the ``gap address [W]`` text format,
* ``python -m repro.tools.campaign`` — plan / run / aggregate a full
  evaluation campaign from INI files (the artifact's
  ``make_ini.py`` + ``run.py`` + ``stats.py`` workflow).
"""
