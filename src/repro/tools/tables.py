"""Print reproduced paper tables/figures by name.

Usage::

    python -m repro.tools.tables tab07
    python -m repro.tools.tables fig09 --workloads add mcf --instructions 50000
    python -m repro.tools.tables --list
"""

from __future__ import annotations

import argparse
import sys

from ..analysis import experiments as ex
from ..analysis import tables as render


def _analytic(name: str) -> str:
    if name == "tab02":
        return render.render_tab2(ex.tab2_moat_ath())
    if name == "tab05":
        return render.render_tab5(ex.tab5_budgets())
    if name == "tab06":
        return render.render_tab6(ex.tab6_pe1_grid())
    if name == "tab07":
        return render.render_params_table(
            ex.tab7_mopac_c(), "Table 7: MoPAC-C parameters",
            "tab7_ath_star")
    if name == "tab08":
        return render.render_params_table(
            ex.tab8_mopac_d(), "Table 8: MoPAC-D parameters",
            "tab8_ath_star")
    if name == "tab09":
        return render.render_tab9(ex.tab9_attacks_c())
    if name == "tab10":
        return render.render_tab10(ex.tab10_attacks_d())
    if name == "tab11":
        return render.render_tab11(ex.tab11_nup())
    if name == "tab13":
        return render.render_tab13(ex.tab13_tolerated())
    if name == "tab14":
        return render.render_tab14(ex.tab14_rowpress())
    if name == "fig04":
        data = ex.fig4_latency()
        return (f"Figure 4: conflict read latency: baseline "
                f"{data['baseline_ns']:.0f} ns, PRAC "
                f"{data['prac_ns']:.0f} ns\n")
    if name == "fig14":
        return f"alpha = {ex.fig14_alpha():.3f} (paper: ~0.55)\n"
    raise KeyError(name)


#: simulation-backed drivers: name -> (driver, title)
_SIMULATED = {
    "fig01": (ex.fig1_overview, "Figure 1(d): PRAC vs MoPAC"),
    "fig02": (ex.fig2_prac_slowdown, "Figure 2: PRAC slowdown"),
    "fig09": (ex.fig9_mopac_c, "Figure 9: PRAC vs MoPAC-C"),
    "fig11": (ex.fig11_mopac_d, "Figure 11: PRAC vs MoPAC-D"),
    "fig12": (ex.fig12_drain_sweep, "Figure 12: drain-on-REF sweep"),
    "fig13": (ex.fig13_srq_sweep, "Figure 13: SRQ-size sweep"),
    "fig17": (ex.fig17_nup, "Figure 17: NUP"),
    "fig18": (ex.fig18_rowpress, "Figure 18: Row-Press"),
    "fig19": (ex.fig19_chips, "Figure 19: chip-count sweep"),
}

ANALYTIC_NAMES = ("tab02", "tab05", "tab06", "tab07", "tab08", "tab09",
                  "tab10", "tab11", "tab13", "tab14", "fig04", "fig14")


def available() -> list[str]:
    return sorted((*ANALYTIC_NAMES, *_SIMULATED))


def render_table(name: str, workloads=None, instructions=None) -> str:
    """Produce the rendered text for one table/figure name."""
    if name in ANALYTIC_NAMES:
        return _analytic(name)
    if name in _SIMULATED:
        driver, title = _SIMULATED[name]
        table = driver(workloads=workloads, instructions=instructions)
        return render.render_slowdown_table(table, title)
    raise KeyError(f"unknown table {name!r}; choose from {available()}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.tables",
        description="Print reproduced paper tables/figures.")
    parser.add_argument("name", nargs="?", help="table/figure name")
    parser.add_argument("--list", action="store_true",
                        help="list available names")
    parser.add_argument("--workloads", nargs="*", default=None)
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--plot", action="store_true",
                        help="render simulated figures as ASCII bars")
    args = parser.parse_args(argv)

    if args.list or not args.name:
        print("\n".join(available()))
        return 0
    try:
        if args.plot and args.name in _SIMULATED:
            from .. analysis.plots import figure_from_table
            driver, title = _SIMULATED[args.name]
            table = driver(workloads=args.workloads,
                           instructions=args.instructions)
            print(figure_from_table(table, title), end="")
            return 0
        text = render_table(args.name, workloads=args.workloads,
                            instructions=args.instructions)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
