"""Synthetic trace dumper.

Usage::

    python -m repro.tools.tracegen mcf --accesses 10000 -o mcf.trace
    python -m repro.tools.tracegen --list
"""

from __future__ import annotations

import argparse

from ..config import DRAMConfig
from ..cpu.trace import trace_mpki, write_trace_file
from ..obs.log import configure, get_logger
from ..workloads.catalog import SPEC_WORKLOADS
from ..workloads.synthetic import generate_trace

log = get_logger("repro.tools.tracegen")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.tracegen",
        description="Dump a calibrated synthetic trace to a text file.")
    parser.add_argument("workload", nargs="?")
    parser.add_argument("--list", action="store_true")
    parser.add_argument("--accesses", type=int, default=10_000)
    parser.add_argument("--core", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0x7ACE)
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)
    configure()

    if args.list or not args.workload:
        print("\n".join(sorted(SPEC_WORKLOADS)))
        return 0
    try:
        spec = SPEC_WORKLOADS[args.workload]
    except KeyError:
        log.error("unknown workload %r", args.workload)
        return 2
    items = generate_trace(spec, DRAMConfig(), args.accesses,
                           core_id=args.core, seed=args.seed)
    path = args.output or f"{args.workload}.trace"
    header = (f"workload={spec.name} accesses={len(items)} "
              f"core={args.core} seed={args.seed} "
              f"measured_mpki={trace_mpki(items):.2f}")
    count = write_trace_file(path, items, header=header)
    log.info("wrote %d accesses to %s (MPKI %.1f, target %s)",
             count, path, trace_mpki(items), spec.mpki)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
