"""Attack CLI: run a Rowhammer pattern against a mitigation.

Usage::

    python -m repro.tools.hammer --design mopac-d --trh 500 \
        --pattern double-sided --acts 300000
    python -m repro.tools.hammer --design trr --pattern many-sided \
        --aggressors 24
"""

from __future__ import annotations

import argparse
import random

from ..attacks import patterns
from ..attacks.harness import run_attack
from ..mitigations.mint import MINTPolicy
from ..mitigations.mopac_c import MoPACCPolicy
from ..mitigations.mopac_d import MoPACDPolicy
from ..mitigations.prac import BaselinePolicy, PRACMoatPolicy
from ..mitigations.pride import PrIDEPolicy
from ..mitigations.trr import TRRPolicy

DESIGNS = ("baseline", "trr", "mint", "pride", "prac", "mopac-c",
           "mopac-d", "mopac-d-nup")
PATTERNS = ("single-sided", "double-sided", "many-sided", "multi-bank",
            "srq-fill", "decoy")


def build_policy(design: str, trh: int, banks: int, rows: int,
                 groups: int, seed: int):
    rng = random.Random(seed)
    geo = dict(banks=banks, rows=rows, refresh_groups=groups)
    if design == "baseline":
        return BaselinePolicy()
    if design == "trr":
        return TRRPolicy(banks=banks, entries=16, mitigation_threshold=64,
                         refs_per_mitigation=4)
    if design == "mint":
        return MINTPolicy(banks=banks, rng=rng)
    if design == "pride":
        return PrIDEPolicy(banks=banks, rng=rng)
    if design == "prac":
        return PRACMoatPolicy(trh, **geo)
    if design == "mopac-c":
        return MoPACCPolicy(trh, **geo, rng=rng)
    if design == "mopac-d":
        return MoPACDPolicy(trh, **geo, rng=rng)
    if design == "mopac-d-nup":
        return MoPACDPolicy(trh, nup=True, **geo, rng=rng)
    raise ValueError(f"unknown design {design!r}")


def build_pattern(name: str, banks: int, aggressors: int, seed: int):
    if name == "single-sided":
        return patterns.single_sided(0, 100)
    if name == "double-sided":
        return patterns.double_sided(0, 100)
    if name == "many-sided":
        return patterns.many_sided(0, range(100, 100 + aggressors))
    if name == "multi-bank":
        return patterns.multi_bank_single_row(range(banks), 100)
    if name == "srq-fill":
        return patterns.srq_fill(0, max(aggressors, 100))
    if name == "decoy":
        return patterns.decoy_hammer(0, 100, decoy_rows=aggressors,
                                     rng=random.Random(seed))
    raise ValueError(f"unknown pattern {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.hammer",
        description="Run a Rowhammer attack against a mitigation.")
    parser.add_argument("--design", choices=DESIGNS, default="mopac-d")
    parser.add_argument("--pattern", choices=PATTERNS,
                        default="double-sided")
    parser.add_argument("--trh", type=int, default=500)
    parser.add_argument("--acts", type=int, default=300_000)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--rows", type=int, default=1024)
    parser.add_argument("--refresh-groups", type=int, default=64)
    parser.add_argument("--aggressors", type=int, default=24,
                        help="aggressor/decoy row count where relevant")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    policy = build_policy(args.design, args.trh, args.banks, args.rows,
                          args.refresh_groups, args.seed)
    pattern = build_pattern(args.pattern, args.banks, args.aggressors,
                            args.seed)
    result = run_attack(policy, pattern, args.acts, trh=args.trh,
                        banks=args.banks, rows=args.rows,
                        refresh_groups=args.refresh_groups)
    report = result.ledger
    print(f"design={args.design} pattern={args.pattern} trh={args.trh}")
    print(f"activations issued : {result.activations:,}")
    print(f"ALERT episodes     : {result.alerts}")
    print(f"hottest row        : bank {report.max_bank}, row "
          f"{report.max_row}, {report.max_count} unmitigated ACTs")
    verdict = "ATTACK SUCCEEDED" if result.attack_succeeded else \
        "attack defeated"
    print(f"verdict            : {verdict}")
    return 1 if result.attack_succeeded else 0


if __name__ == "__main__":
    raise SystemExit(main())
