"""Figure 12: MoPAC-D slowdown vs the drain-on-REF rate (0/1/2/4).

Paper: without draining even T_RH = 1000 suffers (3.1%); the required
drain rate rises as the threshold falls (250 needs 4 per REF).
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig12_drain_sweep(benchmark):
    table = run_once(benchmark, lambda: ex.fig12_drain_sweep(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig12_drain_sweep", tables.render_slowdown_table(
        table, "Figure 12: MoPAC-D vs drain-on-REF rate"))
    averages = table.averages()
    for trh in (1000, 500, 250):
        # more draining never hurts
        series = [averages[f"trh{trh}/drain{d}"] for d in (0, 1, 2, 4)]
        assert series[0] >= series[-1] - 0.005
    # zero-drain overhead grows as the threshold falls
    assert averages["trh1000/drain0"] <= averages["trh250/drain0"] + 0.01
    # the Table 8 drain rates keep the overhead tiny at T_RH >= 500
    assert averages["trh500/drain2"] < 0.03
    assert averages["trh1000/drain1"] < 0.02
