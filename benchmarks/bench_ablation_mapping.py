"""Ablation: MOP vs fully-open-page address mapping.

The paper uses MOP with 4 lines/row (Section 3.1): a short burst of
spatial locality per row plus aggressive bank interleaving. Fully
row-contiguous mapping harvests more row hits on streams but loses
bank-level parallelism for everything else. This bench compares the two
mappings under the baseline and PRAC.
"""

from _common import bench_instructions, record, run_once

from repro.sim.runner import DesignPoint, build_config, build_traces, \
    make_policy_factory
from repro.sim.system import System
from repro.workloads.catalog import workload_cores


def run(workload: str, mapper_kind: str, design: str):
    point = DesignPoint(workload=workload, design=design,
                        instructions=bench_instructions())
    config = build_config(point)
    specs = workload_cores(workload, config.cores)
    windows = [round(config.rob_entries * s.mlp_boost) for s in specs]
    system = System(config, make_policy_factory(point, config),
                    build_traces(point, config), point.instructions,
                    mapper_kind=mapper_kind, windows=windows)
    return system.run()


def sweep():
    out = {}
    for workload in ("add", "mcf"):
        for kind in ("mop", "open"):
            base = run(workload, kind, "baseline")
            prac = run(workload, kind, "prac")
            ipc_b = sum(base.ipcs)
            ipc_p = sum(prac.ipcs)
            out[(workload, kind)] = {
                "rbhr": base.row_buffer_hit_rate,
                "prac_slowdown": 1 - ipc_p / ipc_b,
            }
    return out


def test_ablation_mapping(benchmark):
    out = run_once(benchmark, sweep)
    lines = ["Ablation: MOP vs open-page address mapping",
             f"{'workload':>9s} {'mapping':>8s} {'RBHR':>6s} "
             f"{'PRAC slowdown':>14s}"]
    for (workload, kind), row in out.items():
        lines.append(f"{workload:>9s} {kind:>8s} {row['rbhr']:>6.2f} "
                     f"{row['prac_slowdown']:>14.1%}")
    record("ablation_mapping", "\n".join(lines) + "\n")
    # row-contiguous mapping yields a higher stream hit rate than MOP-4
    assert out[("add", "open")]["rbhr"] > out[("add", "mop")]["rbhr"]
    # PRAC hurts under both mappings
    for row in out.values():
        assert row["prac_slowdown"] > 0
