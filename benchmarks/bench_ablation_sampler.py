"""Ablation (paper footnote 6): MINT vs PARA selection inside MoPAC-D.

MINT selects exactly one activation per 1/p window; PARA samples each
activation independently. The paper argues only MINT is safe. We measure
the worst unmitigated activation count under a single-sided hammer across
seeds: PARA's unbounded selection gaps produce a visibly heavier tail.
"""

import random

from _common import record, run_once

from repro.attacks.harness import run_attack
from repro.attacks.patterns import single_sided
from repro.mitigations.mopac_d import MoPACDPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
TRH = 500
ACTS = 150_000
SEEDS = range(6)


def worst_case(sampler: str) -> int:
    worst = 0
    for seed in SEEDS:
        policy = MoPACDPolicy(TRH, **GEO, sampler=sampler,
                              rng=random.Random(seed))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            **GEO)
        worst = max(worst, result.ledger.max_count)
    return worst


def test_ablation_mint_vs_para(benchmark):
    results = run_once(benchmark, lambda: {
        "mint": worst_case("mint"), "para": worst_case("para")})
    text = (
        "Ablation: sampler choice inside MoPAC-D (footnote 6)\n"
        f"  worst unmitigated count over {len(list(SEEDS))} seeds, "
        f"single-sided hammer, T_RH = {TRH}\n"
        f"  MINT: {results['mint']}\n"
        f"  PARA: {results['para']}\n"
        "  (MINT bounds the gap between selections; PARA does not)\n"
    )
    record("ablation_sampler", text)
    assert results["para"] > results["mint"]
    assert results["mint"] < TRH
