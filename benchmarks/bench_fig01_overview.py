"""Figure 1(d): average slowdown of PRAC vs MoPAC as T_RH scales from
4000 (near-term) down to 250 (long-term).

Paper: PRAC is flat at ~10%; MoPAC grows from ~0.2% at 4K to ~2.5% at
250 as the sampling probability rises.
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig01_overview(benchmark):
    table = run_once(benchmark, lambda: ex.fig1_overview(
        workloads=bench_workloads(), instructions=bench_instructions(),
        trhs=(4000, 1000, 500, 250)))
    record("fig01_overview", tables.render_slowdown_table(
        table, "Figure 1(d): PRAC vs MoPAC across thresholds"))
    averages = table.averages()
    prac = averages["prac"]
    # every MoPAC point beats PRAC
    for column, value in averages.items():
        if column != "prac":
            assert value < prac
    # MoPAC-C overhead grows as T_RH falls (p rises)
    assert averages["mopac-c@4000"] <= averages["mopac-c@250"] + 0.01
