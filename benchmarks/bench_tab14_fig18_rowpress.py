"""Table 14 + Figure 18: Row-Press-aware parameters and their
performance impact (Appendix A)."""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab14_rowpress_params(benchmark):
    table = run_once(benchmark, ex.tab14_rowpress)
    record("tab14_rowpress", tables.render_tab14(table))
    assert table[500] == {"mopac_c": 80, "mopac_d": 64}
    assert table[1000] == {"mopac_c": 160, "mopac_d": 144}


def test_fig18_rowpress_slowdowns(benchmark):
    table = run_once(benchmark, lambda: ex.fig18_rowpress(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig18_rowpress", tables.render_slowdown_table(
        table, "Figure 18: slowdowns with Row-Press protection"))
    averages = table.averages()
    # Row-Press protection lowers ATH*, so slowdown can only grow
    for trh in (500, 1000):
        for design in ("mopac-c", "mopac-d"):
            assert averages[f"{design}@{trh}+rp"] >= \
                averages[f"{design}@{trh}"] - 0.01
