"""Figure 9: per-workload slowdown of PRAC vs MoPAC-C at T_RH
1000/500/250 (paper averages: 10% vs 0.8% / 1.8% / 3.0%)."""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig09_mopac_c(benchmark):
    table = run_once(benchmark, lambda: ex.fig9_mopac_c(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig09_mopac_c", tables.render_slowdown_table(
        table, "Figure 9: PRAC vs MoPAC-C"))
    averages = table.averages()
    # MoPAC-C removes most of PRAC's slowdown at every threshold
    for trh in (1000, 500, 250):
        assert averages[f"mopac-c@{trh}"] < averages["prac"] * 0.6
    # overheads ordered by sampling probability: 250 (1/4) worst
    assert averages["mopac-c@1000"] <= averages["mopac-c@500"] + 0.01
    assert averages["mopac-c@500"] <= averages["mopac-c@250"] + 0.01
