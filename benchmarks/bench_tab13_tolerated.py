"""Table 13: tolerated T_RH for MoPAC-D vs MINT vs PrIDE as the time
reserved for Rowhammer mitigation per REF varies."""

import pytest
from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab13_tolerated(benchmark):
    rows = run_once(benchmark, ex.tab13_tolerated)
    record("tab13_tolerated", tables.render_tab13(rows))
    assert [r.mopac_d for r in rows] == [250, 500, 1000]
    for row in rows:
        # headline claim: ~6x vs MINT, ~8x vs PrIDE
        assert row.mint_ratio == pytest.approx(6, abs=0.7)
        assert row.pride_ratio == pytest.approx(8, abs=0.9)
    # fixed points near the published numbers
    assert rows[0].mint == pytest.approx(1491, rel=0.05)
    assert rows[0].pride == pytest.approx(1975, rel=0.08)
