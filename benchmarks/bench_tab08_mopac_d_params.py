"""Table 8: MoPAC-D parameters (A', p, C, ATH*, drain-on-REF)."""

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.security.csearch import drain_on_ref_default


def test_tab08_mopac_d_params(benchmark):
    params = run_once(benchmark, ex.tab8_mopac_d)
    text = tables.render_params_table(
        params, "Table 8: MoPAC-D parameters", "tab8_ath_star")
    text += "drain-on-REF: " + ", ".join(
        f"T={p.trh}: {drain_on_ref_default(p.trh)}" for p in params) + "\n"
    record("tab08_mopac_d_params", text)
    by_trh = {p.trh: p for p in params}
    assert by_trh[250].ath_star == 60
    assert by_trh[500].ath_star == 152
    assert by_trh[1000].ath_star == 336
    assert [drain_on_ref_default(t) for t in (250, 500, 1000)] == [4, 2, 1]
