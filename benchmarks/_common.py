"""Shared benchmark plumbing.

Every bench regenerates one paper table/figure through the drivers in
:mod:`repro.analysis.experiments`, prints the rendered table, and writes it
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
exact output.

Scale: benches default to a 3-workload, 60K-instruction profile so the
whole suite runs in minutes. Set ``REPRO_FULL=1`` (all 23 workloads) and
``REPRO_INSTRUCTIONS=<n>`` to reproduce at larger scale; the shapes
reported in EXPERIMENTS.md are stable across scales.

Execution: benches run through the :mod:`repro.exec` engine. Unless
``REPRO_CACHE_DIR`` is already set, results persist under
``benchmarks/results/.cache`` so a rerun of any figure only simulates
design points it has not seen before. ``REPRO_WORKERS=<n>`` sizes the
process pool, ``REPRO_SERIAL=1`` forces the inline path.
"""

from __future__ import annotations

import pathlib

from repro.analysis.experiments import instruction_budget
from repro.exec.env import env_flag, env_str, set_knob

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Persistent result cache shared by every benchmark invocation.
CACHE_DIR = RESULTS_DIR / ".cache"
if env_str("REPRO_CACHE_DIR") is None:
    set_knob("REPRO_CACHE_DIR", str(CACHE_DIR))

#: one stream, one latency-bound, one low-MPKI, one hot-row stress
BENCH_WORKLOADS = ("add", "mcf", "xalancbmk", "hammer")


def bench_workloads() -> tuple[str, ...]:
    if env_flag("REPRO_FULL"):
        from repro.workloads.catalog import ALL_WORKLOADS, EXTRA_WORKLOADS
        return ALL_WORKLOADS + EXTRA_WORKLOADS
    return BENCH_WORKLOADS


def bench_instructions(default: int = 60_000) -> int:
    return instruction_budget(default)


def record(name: str, text: str) -> None:
    """Print the rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)


def run_once(benchmark, func):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
