"""Compare two ``BENCH_engine*.json`` summaries and gate regressions.

``bench_engine.py`` records per-(workload, design) wall-clock for the
reference and fast engines plus a bit-identical flag. This tool diffs a
candidate run against a committed baseline and exits non-zero when the
fast engine regressed — either in correctness (a row stopped being
bit-identical) or in speed (fast-engine time grew by more than the
threshold, 10% by default)::

    python benchmarks/compare.py results/BENCH_engine_smoke.json \
        results/BENCH_engine_current.json --threshold 0.25

``make bench-engine`` runs the smoke profile to a scratch file and
compares it against the committed baseline with ``BENCH_THRESHOLD``
(default 0.5 — sub-second smoke timings on shared runners jitter
~±20%, so the gate is wide; it still catches losing the fast path
entirely, which is a 2-3x slowdown).

Rows present on only one side are reported but are not failures: the
benchmark mix is allowed to grow. Only like-for-like rows gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _rows_by_key(doc: dict) -> dict[tuple[str, str], dict]:
    return {(row["workload"], row["design"]): row
            for row in doc.get("rows", [])}


def compare(baseline: dict, candidate: dict,
            threshold: float) -> tuple[list[str], list[str]]:
    """Diff two summaries; returns ``(failures, notes)``."""
    failures: list[str] = []
    notes: list[str] = []
    base_rows = _rows_by_key(baseline)
    cand_rows = _rows_by_key(candidate)

    for key in sorted(set(base_rows) - set(cand_rows)):
        notes.append(f"{key[0]}/{key[1]}: only in baseline (skipped)")
    for key in sorted(set(cand_rows) - set(base_rows)):
        notes.append(f"{key[0]}/{key[1]}: only in candidate (skipped)")

    for key in sorted(set(base_rows) & set(cand_rows)):
        base, cand = base_rows[key], cand_rows[key]
        label = f"{key[0]}/{key[1]}"
        if base.get("identical") and not cand.get("identical"):
            failures.append(f"{label}: engines no longer bit-identical")
        base_s, cand_s = base["fast_s"], cand["fast_s"]
        if base_s > 0 and cand_s > base_s * (1 + threshold):
            ratio = cand_s / base_s - 1
            failures.append(
                f"{label}: fast engine {ratio:+.0%} "
                f"({base_s:.4f}s -> {cand_s:.4f}s, "
                f"threshold {threshold:.0%})")
        else:
            notes.append(f"{label}: fast {base_s:.4f}s -> {cand_s:.4f}s"
                         f" (speedup {cand.get('speedup', 0):.2f}x)")

    base_total = baseline.get("total_fast_s", 0)
    cand_total = candidate.get("total_fast_s", 0)
    if base_total > 0 and cand_total > base_total * (1 + threshold):
        ratio = cand_total / base_total - 1
        failures.append(f"total: fast engine {ratio:+.0%} "
                        f"({base_total:.4f}s -> {cand_total:.4f}s)")
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/compare.py",
        description="Diff two BENCH_engine*.json summaries; exit 1 on "
                    "a correctness or >threshold speed regression.")
    parser.add_argument("baseline", type=pathlib.Path,
                        help="committed baseline summary")
    parser.add_argument("candidate", type=pathlib.Path,
                        help="fresh summary to gate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="tolerated fractional slowdown of the "
                             "fast engine (default: 0.10)")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare: {error}", file=sys.stderr)
        return 2

    failures, notes = compare(baseline, candidate, args.threshold)
    for line in notes:
        print(f"  {line}")
    if failures:
        print(f"REGRESSION ({len(failures)} failure(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"OK: {args.candidate} within {args.threshold:.0%} of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
