"""Figure 13: MoPAC-D slowdown vs SRQ size (8/16/32 entries).

Paper: lower thresholds fill the queue faster, so T_RH = 250 benefits
most from a larger SRQ (9.0% -> 3.5% -> 2.7%).
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig13_srq_sweep(benchmark):
    table = run_once(benchmark, lambda: ex.fig13_srq_sweep(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig13_srq_sweep", tables.render_slowdown_table(
        table, "Figure 13: MoPAC-D vs SRQ size"))
    averages = table.averages()
    for trh in (1000, 500, 250):
        series = [averages[f"trh{trh}/srq{s}"] for s in (8, 16, 32)]
        # a bigger queue never hurts
        assert series[0] >= series[-1] - 0.005
    # the smallest queue hurts low thresholds the most
    assert averages["trh1000/srq8"] <= averages["trh250/srq8"] + 0.01
