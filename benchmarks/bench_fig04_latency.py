"""Figure 4: row-buffer-conflict read latency, baseline vs PRAC —
analytically and through the full memory controller."""

import heapq
import itertools

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.config import DRAMConfig
from repro.dram.commands import BankAddress, LineAddress
from repro.dram.timing import ddr5_base, ddr5_prac
from repro.mc.controller import MemoryController
from repro.mc.request import MemRequest
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy
from repro.units import ns, to_ns


def _conflict_latency(timing, policy):
    config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                        rows_per_bank=128, timing=timing)
    heap, seq, done = [], itertools.count(), []
    mc = MemoryController(0, config, policy,
                          lambda t, cb: heapq.heappush(
                              heap, (int(t), next(seq), cb)),
                          done.append)
    mc.enqueue(MemRequest(0, LineAddress(BankAddress(0, 0, 5), 0), 0), 0)
    while heap:
        t, _, cb = heapq.heappop(heap)
        cb(t)
    conflict = MemRequest(0, LineAddress(BankAddress(0, 0, 9), 0), ns(500))
    mc.enqueue(conflict, ns(500))
    while heap:
        t, _, cb = heapq.heappop(heap)
        cb(t)
    return to_ns(conflict.latency_ps)


def test_fig04_latency(benchmark):
    analytic = run_once(benchmark, ex.fig4_latency)
    base_mc = _conflict_latency(ddr5_base(), BaselinePolicy(ddr5_base()))
    prac_mc = _conflict_latency(
        ddr5_prac(), PRACMoatPolicy(500, 4, 128, 32, timing=ddr5_prac()))
    text = (
        "Figure 4: row-conflict read latency\n"
        f"  analytic  : baseline {analytic['baseline_ns']:.0f} ns, "
        f"PRAC {analytic['prac_ns']:.0f} ns (paper: 40 / 62 ns)\n"
        f"  controller: baseline {base_mc:.1f} ns, PRAC {prac_mc:.1f} ns "
        "(includes CAS + burst)\n"
    )
    record("fig04_latency", text)
    assert analytic["baseline_ns"] == 40
    # PRAC's PRE+ACT component is 52 ns vs 28 ns (>= 55% worse overall)
    assert prac_mc - base_mc == to_ns(ns(24))
