"""Table 9: performance attacks on MoPAC-C — analytical model plus an
actual attack run through the activation-level harness."""

import random

import pytest
from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.attacks.harness import measure_slowdown
from repro.attacks.patterns import multi_bank_single_row
from repro.mitigations.mopac_c import MoPACCPolicy


def test_tab09_analytical(benchmark):
    reports = run_once(benchmark, ex.tab9_attacks_c)
    record("tab09_attacks_c", tables.render_tab9(reports))
    by_trh = {r.trh: r for r in reports}
    assert by_trh[250].slowdown == pytest.approx(0.140, abs=0.01)
    assert by_trh[500].slowdown == pytest.approx(0.067, abs=0.005)
    assert by_trh[1000].slowdown == pytest.approx(0.032, abs=0.005)


def test_tab09_simulated_attack(benchmark):
    """The harness-measured multi-bank attack (8 banks saturate under
    tRRD); throughput loss must be in the analytical ballpark."""
    geo = dict(banks=8, rows=1024, refresh_groups=64)

    def run():
        policy = MoPACCPolicy(500, **geo, rng=random.Random(3))
        return measure_slowdown(
            policy, lambda: multi_bank_single_row(range(8), 100),
            300_000, trh=500, **geo)

    slow = run_once(benchmark, run)
    record("tab09_attacks_c_simulated",
           f"MoPAC-C multi-bank attack (measured): {slow:.1%} "
           f"(analytical model: 6.5%, paper: 6.7%)\n")
    assert 0.01 < slow < 0.15
