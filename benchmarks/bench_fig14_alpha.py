"""Section 7.2 / Figure 14: Monte-Carlo estimate of the multi-bank race
factor alpha (paper reports ~0.55 over 32 banks)."""

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.security.attacks_model import estimate_alpha
from repro.security.csearch import mopac_c_params


def test_fig14_alpha(benchmark):
    alpha = run_once(benchmark, lambda: ex.fig14_alpha(trials=30_000))
    lines = [f"Multi-bank race factor alpha (paper: ~0.55)",
             f"  T_RH=500 (C=22, p=1/8): alpha = {alpha:.3f}"]
    for trh in (250, 1000):
        params = mopac_c_params(trh)
        a = estimate_alpha(params.critical_updates, params.p, trials=30_000)
        lines.append(f"  T_RH={trh} (C={params.critical_updates}, "
                     f"p=1/{params.inv_p}): alpha = {a:.3f}")
    record("fig14_alpha", "\n".join(lines) + "\n")
    assert 0.4 < alpha < 0.8


def test_fig14_alpha_grows_with_c(benchmark):
    """Dispersion shrinks with more updates, so alpha rises with C."""
    def run():
        return [estimate_alpha(c, 1 / 8, trials=10_000)
                for c in (5, 20, 80)]

    alphas = run_once(benchmark, run)
    assert alphas == sorted(alphas)
