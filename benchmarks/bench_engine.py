"""A/B the fast engine against the reference event loop.

Runs the Table 4 workload mix through both engines at identical design
points, checks bit-identity of every result fingerprint, and records
per-workload wall times and throughput ratios in
``benchmarks/results/BENCH_engine.json``.

Two profiles:

* **full** (default): the paper's mix at default instruction counts —
  the numbers quoted in docs/performance.md come from this profile.
* **--smoke**: two short workloads, used by ``make bench-engine`` in
  CI. Asserts the fast engine is no slower than the reference and
  produces identical results; exits non-zero otherwise.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py          # full A/B
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.mitigations import registry
from repro.sim.runner import DesignPoint, run_point

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_engine.json"
SMOKE_OUTPUT = RESULTS_DIR / "BENCH_engine_smoke.json"

#: Table 4 mix: the six rate-mix blends plus the latency-bound and
#: streaming SPEC anchors.
FULL_WORKLOADS = ("mix1", "mix2", "mix3", "mix4", "mix5", "mix6",
                  "mcf", "lbm")
SMOKE_WORKLOADS = ("mix1", "mcf")


def fingerprint(result):
    return (
        dict(result.stats),
        [dataclasses.asdict(s) for s in result.core_stats],
        [dataclasses.asdict(s) for s in result.mc_stats],
        result.elapsed_ps,
    )


def time_engine(point: DesignPoint, engine: str) -> tuple[float, tuple]:
    start = time.perf_counter()
    result = run_point(point, engine=engine)
    return time.perf_counter() - start, fingerprint(result)


def bench(workloads, instructions=None, design="mopac-c"):
    rows = []
    for workload in workloads:
        kwargs = {} if instructions is None else {
            "instructions": instructions}
        point = DesignPoint(workload=workload, design=design, **kwargs)
        ref_s, ref_fp = time_engine(point, "reference")
        fast_s, fast_fp = time_engine(point, "fast")
        rows.append({
            "workload": workload,
            "design": design,
            "instructions": point.instructions,
            "reference_s": round(ref_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(ref_s / fast_s, 3) if fast_s else None,
            "identical": ref_fp == fast_fp,
        })
        print(f"{workload:12s} reference {ref_s:7.2f}s   "
              f"fast {fast_s:7.2f}s   x{rows[-1]['speedup']:.2f}   "
              f"{'identical' if rows[-1]['identical'] else 'DIVERGED'}")
    total_ref = sum(row["reference_s"] for row in rows)
    total_fast = sum(row["fast_s"] for row in rows)
    summary = {
        "design": design,
        "workloads": list(workloads),
        "total_reference_s": round(total_ref, 4),
        "total_fast_s": round(total_fast, 4),
        "total_speedup": round(total_ref / total_fast, 3),
        "all_identical": all(row["identical"] for row in rows),
        "rows": rows,
    }
    print(f"{'TOTAL':12s} reference {total_ref:7.2f}s   "
          f"fast {total_fast:7.2f}s   x{summary['total_speedup']:.2f}")
    return summary


def identity_sweep(designs, instructions=8_000,
                   workload="mcf") -> dict:
    """Bit-identity gate across every registered mitigation design.

    Timing is not judged here (the runs are too short); what must hold
    is that the fast engine replays each design's policy logic exactly.
    """
    rows = []
    for design in designs:
        point = DesignPoint(workload=workload, design=design, trh=500,
                            instructions=instructions)
        _, ref_fp = time_engine(point, "reference")
        _, fast_fp = time_engine(point, "fast")
        identical = ref_fp == fast_fp
        rows.append({"design": design, "identical": identical})
        print(f"identity {design:16s} "
              f"{'identical' if identical else 'DIVERGED'}")
    return {"workload": workload, "instructions": instructions,
            "all_identical": all(r["identical"] for r in rows),
            "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short CI gate: identical results and "
                             "fast >= reference throughput")
    parser.add_argument("--instructions", type=int, default=None,
                        help="override per-core instruction budget")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help=f"JSON report path (default {OUTPUT})")
    args = parser.parse_args(argv)

    if args.smoke:
        instructions = args.instructions or 40_000
        summary = bench(SMOKE_WORKLOADS, instructions=instructions)
        summary["profile"] = "smoke"
        if not summary["all_identical"]:
            print("FAIL: engines diverged", file=sys.stderr)
            return 1
        if summary["total_speedup"] < 1.0:
            # timing smoke, so allow one retry before declaring the
            # fast path a slowdown (a noisy neighbour can steal a run)
            summary = bench(SMOKE_WORKLOADS, instructions=instructions)
            summary["profile"] = "smoke"
            if not summary["all_identical"]:
                print("FAIL: engines diverged", file=sys.stderr)
                return 1
            if summary["total_speedup"] < 1.0:
                print("FAIL: fast engine slower than reference",
                      file=sys.stderr)
                return 1
        sweep = identity_sweep(registry.names())
        summary["identity_sweep"] = sweep
        if not sweep["all_identical"]:
            print("FAIL: a design diverged between engines",
                  file=sys.stderr)
            return 1
    else:
        summary = bench(FULL_WORKLOADS, instructions=args.instructions)
        summary["profile"] = "full"

    # the smoke gate records beside, not over, the full-profile table
    output = args.output or (SMOKE_OUTPUT if args.smoke else OUTPUT)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
