"""Table 2: MOAT's ALERT threshold per Rowhammer threshold."""

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab02_moat_ath(benchmark):
    ath = run_once(benchmark, ex.tab2_moat_ath)
    record("tab02_moat_ath", tables.render_tab2(ath))
    assert ath == {1000: 975, 500: 472, 250: 219}
