"""Ablation: JEDEC ABO mitigation level (1 / 2 / 4 RFMs per ALERT).

The paper fixes the level at 1 (350 ns per ALERT). Higher levels buy
more drain work per episode at a longer stall: under an SRQ-flood the
ALERT *rate* drops ~proportionally while each stall grows, so the
throughput cost stays in the same band — confirming level 1 is a
reasonable default.
"""

import random

from _common import record, run_once

from repro.attacks.harness import run_attack
from repro.attacks.patterns import srq_fill
from repro.mitigations.mopac_d import MoPACDPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
TRH = 500


def sweep():
    rows = []
    for level in (1, 2, 4):
        policy = MoPACDPolicy(TRH, **GEO, abo_level=level, drain_on_ref=0,
                              rng=random.Random(3))
        result = run_attack(policy, srq_fill(0, 500), 150_000, trh=TRH,
                            **GEO)
        rows.append((level, result.alerts, result.ledger.max_count))
    return rows


def test_ablation_abo_level(benchmark):
    rows = run_once(benchmark, sweep)
    lines = ["Ablation: ABO mitigation level under SRQ flood (T_RH=500)",
             f"{'level':>6s} {'ALERTs':>8s} {'worst count':>12s}"]
    for level, alerts, worst in rows:
        lines.append(f"{level:>6d} {alerts:>8d} {worst:>12d}")
    record("ablation_abo_level", "\n".join(lines) + "\n")
    by_level = {r[0]: r for r in rows}
    # more RFMs per ALERT -> fewer ALERT episodes
    assert by_level[4][1] < by_level[2][1] < by_level[1][1]
    # security independent of the level
    assert all(r[2] < TRH for r in rows)
