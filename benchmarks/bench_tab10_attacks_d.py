"""Table 10: the three performance attacks on MoPAC-D."""

import random

import pytest
from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.attacks.harness import measure_slowdown
from repro.attacks.patterns import srq_fill
from repro.mitigations.mopac_d import MoPACDPolicy


def test_tab10_analytical(benchmark):
    table = run_once(benchmark, ex.tab10_attacks_d)
    record("tab10_attacks_d", tables.render_tab10(table))
    assert table[500]["mitigation"].slowdown == pytest.approx(0.074,
                                                              abs=0.005)
    assert table[500]["srq_full"].slowdown == pytest.approx(0.149,
                                                            abs=0.005)
    assert table[500]["tardiness"].slowdown == pytest.approx(0.179,
                                                             abs=0.005)


def test_tab10_simulated_srq_attack(benchmark):
    """SRQ-full flood measured through the harness."""
    geo = dict(banks=4, rows=1024, refresh_groups=64)

    def run():
        policy = MoPACDPolicy(500, **geo, rng=random.Random(5),
                              drain_on_ref=0)
        return measure_slowdown(policy, lambda: srq_fill(0, 500),
                                300_000, trh=500, **geo)

    slow = run_once(benchmark, run)
    record("tab10_attacks_d_simulated",
           f"MoPAC-D SRQ-full attack (measured): {slow:.1%} "
           f"(analytical: 14.9%, paper: 14.9%)\n")
    assert 0.05 < slow < 0.25
