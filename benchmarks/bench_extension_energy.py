"""Extension: DRAM energy overhead of PRAC vs MoPAC.

Not a paper experiment — PRAC's counter read-modify-write costs array
energy on every activation, and MoPAC's probabilistic updates shrink that
the same way they shrink the latency tax. Energy is post-processed from
the simulation's operation counts with DDR5-class per-op constants.
"""

from _common import bench_instructions, record, run_once

from repro.dram.energy import energy_of, energy_overhead
from repro.sim.runner import DesignPoint, simulate

WORKLOAD = "mcf"


def sweep():
    base = simulate(DesignPoint(workload=WORKLOAD, design="baseline",
                                instructions=bench_instructions()))
    out = {"baseline": (energy_of(base), 0.0)}
    for design in ("prac", "mopac-c", "mopac-d"):
        result = simulate(DesignPoint(workload=WORKLOAD, design=design,
                                      trh=500,
                                      instructions=bench_instructions()))
        out[design] = (energy_of(result), energy_overhead(result, base))
    return out


def test_extension_energy(benchmark):
    out = run_once(benchmark, sweep)
    lines = [f"Extension: DRAM energy on {WORKLOAD} (T_RH = 500)",
             f"{'design':>9s} {'total mJ':>9s} {'counter mJ':>11s} "
             f"{'cu share':>9s} {'overhead':>9s}"]
    for design, (breakdown, overhead) in out.items():
        lines.append(
            f"{design:>9s} {breakdown.total_mj:>9.3f} "
            f"{breakdown.counter_update_mj:>11.4f} "
            f"{breakdown.counter_update_share:>9.1%} {overhead:>9.1%}")
    record("extension_energy", "\n".join(lines) + "\n")
    assert out["baseline"][0].counter_update_mj == 0
    assert out["prac"][1] > out["mopac-c"][1] > -0.02
    assert out["mopac-d"][1] < out["prac"][1]


def test_extension_energy_counter_scaling(benchmark):
    """MoPAC-C's counter-update energy is ~p x PRAC's."""
    def measure():
        prac = simulate(DesignPoint(workload=WORKLOAD, design="prac",
                                    trh=500,
                                    instructions=bench_instructions()))
        mopac = simulate(DesignPoint(workload=WORKLOAD, design="mopac-c",
                                     trh=500,
                                     instructions=bench_instructions()))
        return (energy_of(mopac).counter_update_mj
                / energy_of(prac).counter_update_mj)

    ratio = run_once(benchmark, measure)
    assert ratio < 0.25  # p = 1/8 plus noise
