"""Randomized security regression: fuzz the secure designs.

A Blacksmith-style campaign of random structured patterns (aggressor
counts, frequencies, phases, bank spread, dilution) against each secure
design. The ground-truth ledger must never see a row cross T_RH.
"""

import random

from _common import record, run_once

from repro.attacks.fuzzer import fuzz
from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import PRACMoatPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
TRH = 500


def campaign():
    designs = {
        "prac": lambda: PRACMoatPolicy(TRH, **GEO),
        "mopac-c": lambda: MoPACCPolicy(TRH, **GEO,
                                        rng=random.Random(21)),
        "mopac-d": lambda: MoPACDPolicy(TRH, **GEO,
                                        rng=random.Random(22)),
        "mopac-d-nup": lambda: MoPACDPolicy(TRH, nup=True, **GEO,
                                            rng=random.Random(23)),
    }
    return {
        name: fuzz(factory, trh=TRH, cases=12, acts_per_case=60_000,
                   seed=0xF00 + i, **GEO)
        for i, (name, factory) in enumerate(designs.items())
    }


def test_fuzzer_campaign(benchmark):
    results = run_once(benchmark, campaign)
    lines = [f"Fuzzing campaign: 12 random patterns x 60K ACTs, "
             f"T_RH = {TRH}",
             f"{'design':>12s} {'worst count':>12s}  worst pattern"]
    for name, result in results.items():
        lines.append(f"{name:>12s} {result.worst_count:>12d}  "
                     f"{result.worst_case}")
    record("fuzzer_campaign", "\n".join(lines) + "\n")
    for name, result in results.items():
        assert not result.broken, f"{name} broken by {result.worst_case}"
