"""Figure 19 (Appendix B): MoPAC-D sensitivity to the number of DRAM
chips per sub-channel.

Paper: negligible variation at T_RH 500/1000; at 250 the 1/4 sampling
oversamples with more chips (2.7% at 1 chip -> 4.2% at 16 chips).
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig19_chips(benchmark):
    table = run_once(benchmark, lambda: ex.fig19_chips(
        workloads=bench_workloads(), instructions=bench_instructions(),
        chip_counts=(1, 4, 16)))
    record("fig19_chips", tables.render_slowdown_table(
        table, "Figure 19: MoPAC-D vs chips per sub-channel"))
    averages = table.averages()
    # high thresholds stay flat
    for trh in (500, 1000):
        spread = (averages[f"trh{trh}/chips16"]
                  - averages[f"trh{trh}/chips1"])
        assert abs(spread) < 0.03
    # the low threshold is the sensitive one
    assert averages["trh250/chips16"] >= averages["trh250/chips1"] - 0.01
