"""Figure 11: per-workload slowdown of PRAC vs MoPAC-D at T_RH
1000/500/250 (paper averages: 10% vs 0.1% / 0.8% / 3.5%)."""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig11_mopac_d(benchmark):
    table = run_once(benchmark, lambda: ex.fig11_mopac_d(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig11_mopac_d", tables.render_slowdown_table(
        table, "Figure 11: PRAC vs MoPAC-D"))
    averages = table.averages()
    # MoPAC-D removes almost all of PRAC's slowdown at T_RH >= 500
    assert averages["mopac-d@1000"] < 0.02
    assert averages["mopac-d@500"] < 0.03
    for trh in (1000, 500, 250):
        assert averages[f"mopac-d@{trh}"] < averages["prac"] * 0.6
    # overheads rise as the threshold falls
    assert averages["mopac-d@1000"] <= averages["mopac-d@250"] + 0.01
