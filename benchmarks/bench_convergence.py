"""Methodology check: slowdown stationarity in run length.

EXPERIMENTS.md claims the scaled runs measure the same slowdown ratios
the paper's 100M-instruction runs would — because slowdown is a
stationary property of the trace statistics. This bench sweeps the run
length and asserts the PRAC slowdown settles.
"""

from _common import record, run_once

from repro.sim.runner import DesignPoint, slowdown

LENGTHS = (30_000, 60_000, 120_000)


def sweep():
    out = {}
    for workload in ("mcf", "add"):
        out[workload] = {
            n: slowdown(DesignPoint(workload=workload, design="prac",
                                    trh=500, instructions=n))
            for n in LENGTHS
        }
    return out


def test_convergence(benchmark):
    out = run_once(benchmark, sweep)
    lines = ["Methodology: PRAC slowdown vs run length",
             f"{'workload':>9s}" + "".join(f"{n:>10,d}" for n in LENGTHS)]
    for workload, row in out.items():
        lines.append(f"{workload:>9s}" + "".join(
            f"{row[n]:>10.1%}" for n in LENGTHS))
    record("convergence", "\n".join(lines) + "\n")
    for workload, row in out.items():
        values = [row[n] for n in LENGTHS]
        assert max(values) - min(values) < 0.05, \
            f"{workload} slowdown not stationary: {values}"
