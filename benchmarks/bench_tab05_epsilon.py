"""Table 5: failure budget F and per-side escape budget epsilon."""

import pytest
from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab05_epsilon(benchmark):
    budgets = run_once(benchmark, ex.tab5_budgets)
    record("tab05_epsilon", tables.render_tab5(budgets))
    by_trh = {b.trh: b for b in budgets}
    assert by_trh[250].failure_probability == pytest.approx(3.59e-17,
                                                            rel=0.01)
    assert by_trh[500].epsilon == pytest.approx(8.48e-9, rel=0.01)
