"""Ablation: all-bank REF vs DDR5 same-bank REFsb.

The paper evaluates with all-bank REF (410 ns of full stall every
3.9 us). REFsb spreads one short (130 ns) per-bank refresh across the
tREFI instead, removing the global freeze; drain-on-REF opportunities
become per-bank. This bench compares the two modes for the baseline,
PRAC and MoPAC-D.
"""

from _common import bench_instructions, record, run_once

from repro.sim.runner import DesignPoint, simulate, slowdown

WORKLOADS = ("mcf", "hammer")


def sweep():
    out = {}
    for mode in ("all-bank", "same-bank"):
        base_elapsed = {}
        for workload in WORKLOADS:
            base = simulate(DesignPoint(
                workload=workload, design="baseline", refresh_mode=mode,
                instructions=bench_instructions()))
            base_elapsed[workload] = base.elapsed_ps / 1e6
        prac = sum(
            slowdown(DesignPoint(workload=w, design="prac", trh=500,
                                 refresh_mode=mode,
                                 instructions=bench_instructions()))
            for w in WORKLOADS) / len(WORKLOADS)
        mopac = sum(
            slowdown(DesignPoint(workload=w, design="mopac-d", trh=500,
                                 refresh_mode=mode,
                                 instructions=bench_instructions()))
            for w in WORKLOADS) / len(WORKLOADS)
        out[mode] = {"base_us": base_elapsed, "prac": prac,
                     "mopac-d": mopac}
    return out


def test_ablation_refsb(benchmark):
    out = run_once(benchmark, sweep)
    lines = ["Ablation: all-bank REF vs same-bank REFsb (T_RH = 500)",
             f"{'mode':>10s} {'prac':>7s} {'mopac-d':>8s}  baseline us"]
    for mode, row in out.items():
        base = ", ".join(f"{w}={v:.0f}" for w, v in row["base_us"].items())
        lines.append(f"{mode:>10s} {row['prac']:>7.1%} "
                     f"{row['mopac-d']:>8.1%}  {base}")
    record("ablation_refsb", "\n".join(lines) + "\n")
    # both modes keep the headline ordering
    for row in out.values():
        assert row["mopac-d"] < row["prac"]
    # MoPAC-D stays cheap with per-bank drain opportunities too
    assert out["same-bank"]["mopac-d"] < 0.06
