"""Ablation (Section 6.3): the Tardiness Threshold trade-off.

TTH bounds how long a buffered row can be hammered before a forced
drain. Smaller TTH tightens security (higher usable ATH*, lower worst
count) but hands the attacker a cheaper ABO trigger (one per TTH
activations, Table 10's 17.9% column). This bench sweeps TTH and shows
both sides.
"""

import random

from _common import record, run_once

from repro.attacks.harness import measure_slowdown, run_attack
from repro.attacks.patterns import single_sided
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.security.attacks_model import abo_slowdown
from repro.security.csearch import mopac_d_params

GEO = dict(banks=4, rows=1024, refresh_groups=64)
TRH = 500
TTHS = (16, 32, 64, 128)


def sweep():
    rows = []
    for tth in TTHS:
        params = mopac_d_params(TRH, tth=tth)
        policy = MoPACDPolicy(TRH, **GEO, tth=tth, params=params,
                              rng=random.Random(7))
        result = run_attack(policy, single_sided(0, 100), 150_000,
                            trh=TRH, **GEO)
        attack_cost = abo_slowdown(tth)  # analytic TTH-attack slowdown
        rows.append((tth, params.ath_star, result.ledger.max_count,
                     attack_cost))
    return rows


def test_ablation_tth(benchmark):
    rows = run_once(benchmark, sweep)
    lines = ["Ablation: tardiness threshold sweep (T_RH = 500)",
             f"{'TTH':>5s} {'ATH*':>6s} {'worst count':>12s} "
             f"{'TTH-attack':>11s}"]
    for tth, ath_star, worst, attack in rows:
        lines.append(f"{tth:>5d} {ath_star:>6d} {worst:>12d} "
                     f"{attack:>11.1%}")
    record("ablation_tth", "\n".join(lines) + "\n")
    by_tth = {r[0]: r for r in rows}
    # security: every configuration holds
    assert all(r[2] < TRH for r in rows)
    # larger TTH -> smaller usable ATH* budget? No: larger TTH means a
    # smaller A' and therefore a smaller ATH*.
    assert by_tth[128][1] < by_tth[16][1]
    # larger TTH -> cheaper for the attacker to avoid (lower DoS cost)
    assert by_tth[128][3] < by_tth[16][3]
