"""Table 11: ATH* of MoPAC-D with and without NUP (Markov chain)."""

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab11_nup_ath(benchmark):
    rows = run_once(benchmark, ex.tab11_nup)
    record("tab11_nup_ath", tables.render_tab11(rows))
    by_trh = {r.trh: r for r in rows}
    assert (by_trh[1000].uniform_ath_star,
            by_trh[1000].nup_ath_star) == (336, 288)
    assert (by_trh[500].uniform_ath_star,
            by_trh[500].nup_ath_star) == (152, 136)
    assert (by_trh[250].uniform_ath_star,
            by_trh[250].nup_ath_star) == (60, 56)
