"""Ablation (Section 9.1): MOAT vs QPRAC servicing of PRAC.

Both are secure PRAC service disciplines with identical timing overheads;
they differ in *when* mitigation happens. MOAT waits for ATH and uses
ABO; QPRAC mitigates its queued hot rows proactively at every REF and
keeps ABO as a backstop — under a single-sided hammer its ALERT count
collapses.
"""

from _common import record, run_once

from repro.attacks.harness import run_attack
from repro.attacks.patterns import single_sided
from repro.mitigations.prac import PRACMoatPolicy
from repro.mitigations.qprac import QPRACPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
TRH = 500
ACTS = 250_000


def sweep():
    out = {}
    for name, policy in (("moat", PRACMoatPolicy(TRH, **GEO)),
                         ("qprac", QPRACPolicy(TRH, **GEO))):
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            **GEO)
        out[name] = {
            "alerts": result.alerts,
            "max_count": result.ledger.max_count,
            "mitigations": policy.stats.mitigations,
        }
    return out


def test_ablation_qprac_vs_moat(benchmark):
    out = run_once(benchmark, sweep)
    lines = ["Ablation: MOAT vs QPRAC service discipline "
             f"(single-sided, T_RH={TRH}, {ACTS:,} ACTs)",
             f"{'design':>7s} {'ALERTs':>8s} {'mitigations':>12s} "
             f"{'worst count':>12s}"]
    for name, row in out.items():
        lines.append(f"{name:>7s} {row['alerts']:>8d} "
                     f"{row['mitigations']:>12d} {row['max_count']:>12d}")
    record("ablation_qprac", "\n".join(lines) + "\n")
    assert out["qprac"]["alerts"] < out["moat"]["alerts"] / 5
    assert out["qprac"]["max_count"] <= TRH
    assert out["moat"]["max_count"] <= TRH
