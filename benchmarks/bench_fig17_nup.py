"""Figure 17: MoPAC-D with and without Non-Uniform Probability.

Paper: NUP cuts the average slowdowns from 0.1 / 0.8 / 3.5% to
0 / 0 / 1.1% at T_RH 1000 / 500 / 250.
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_fig17_nup(benchmark):
    table = run_once(benchmark, lambda: ex.fig17_nup(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig17_nup", tables.render_slowdown_table(
        table, "Figure 17: MoPAC-D uniform vs NUP"))
    averages = table.averages()
    for trh in (1000, 500, 250):
        # NUP never makes it meaningfully worse
        assert averages[f"nup@{trh}"] <= averages[f"uniform@{trh}"] + 0.01
    # and both stay far below PRAC territory
    assert averages["nup@500"] < 0.03
