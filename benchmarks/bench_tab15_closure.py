"""Table 15 (Appendix C): slowdowns with proactive row-closure policies.

Paper: PRAC drops from 10% (open-page) to 7.1% (close-page) because an
already-closed row hides the long precharge; MoPAC-D stays small under
every policy.
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab15_closure(benchmark):
    out = run_once(benchmark, lambda: ex.tab15_closure(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("tab15_closure", tables.render_tab15(out))
    # timeout closure hides part of PRAC's precharge latency (the paper's
    # close-page row shows the same effect; at bench scale the pure
    # close-page point is within noise of open-page)
    best_timeout = min(out["ton100"]["prac"], out["ton200"]["prac"])
    assert best_timeout <= out["open"]["prac"] + 0.01
    assert abs(out["close"]["prac"] - out["open"]["prac"]) < 0.05
    # MoPAC-D remains far cheaper than PRAC under every policy
    for policy, row in out.items():
        assert row["mopac-d@500"] < row["prac"]
