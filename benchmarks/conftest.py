"""Make the shared ``_common`` helpers importable from bench modules."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
