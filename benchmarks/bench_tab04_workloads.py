"""Table 4: measured characteristics of the synthetic workload suite.

The bench measures MPKI / RBHR / APRI / hot-row counts of our calibrated
generators and prints them beside the paper's published columns (hot-row
columns use the scaled refresh window; see EXPERIMENTS.md).
"""

import pytest
from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.workloads.catalog import MIX_PAPER, SPEC_WORKLOADS


def test_tab04_workloads(benchmark):
    table = run_once(benchmark, lambda: ex.tab4_characteristics(
        workloads=bench_workloads(), instructions=bench_instructions()))
    text = tables.render_tab4(table)
    text += "\npaper reference columns:\n"
    for name in table:
        paper = (SPEC_WORKLOADS[name].paper if name in SPEC_WORKLOADS
                 else MIX_PAPER.get(name))
        if paper:
            text += (f"{name:12s} {paper.mpki:>7.1f} {paper.rbhr:>6.2f} "
                     f"{paper.apri:>7.1f} {paper.act64:>7.1f} "
                     f"{paper.act200:>8.1f}\n")
    record("tab04_workloads", text)
    for name, row in table.items():
        spec = SPEC_WORKLOADS.get(name)
        if spec is None or spec.paper is None:
            continue
        # MPKI is calibrated tightly; RBHR within a workable band
        assert row["mpki"] == pytest.approx(spec.mpki, rel=0.15)
        assert abs(row["rbhr"] - spec.paper.rbhr) < 0.25
