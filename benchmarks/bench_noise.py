"""Methodology: seed-to-seed noise and statistical significance.

Quantifies the measurement noise of the probabilistic designs at bench
scale and confirms the headline ordering (MoPAC-C < PRAC) is significant
beyond that noise.
"""

from _common import record, run_once

from repro.sim.replication import replicate, significantly_faster
from repro.sim.runner import DesignPoint

SEEDS = (1, 2, 3, 4)
FAST = dict(instructions=40_000)


def measure():
    out = {}
    for design in ("prac", "mopac-c", "mopac-d"):
        point = DesignPoint(workload="mcf", design=design, trh=500,
                            **FAST)
        out[design] = replicate(point, seeds=SEEDS)
    return out


def test_noise(benchmark):
    out = run_once(benchmark, measure)
    lines = ["Methodology: seed-to-seed noise (mcf, T_RH = 500)"]
    for design, repl in out.items():
        lines.append(f"  {design:>9s}: {repl}")
    record("noise", "\n".join(lines) + "\n")
    # probabilistic designs carry bounded noise at this scale
    assert out["mopac-c"].ci95 < 0.05
    # the headline ordering survives the noise
    assert out["mopac-c"].mean < out["prac"].mean
    assert not out["mopac-c"].overlaps(out["prac"])


def test_significance_helper(benchmark):
    result = run_once(benchmark, lambda: significantly_faster(
        DesignPoint(workload="mcf", design="mopac-d", trh=500, **FAST),
        DesignPoint(workload="mcf", design="prac", trh=500, **FAST),
        seeds=SEEDS))
    assert result
