"""Table 7: MoPAC-C parameters (p, C, ATH*) per threshold."""

from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab07_mopac_c_params(benchmark):
    params = run_once(benchmark, ex.tab7_mopac_c)
    record("tab07_mopac_c_params", tables.render_params_table(
        params, "Table 7: MoPAC-C parameters", "tab7_ath_star"))
    by_trh = {p.trh: p for p in params}
    assert (by_trh[250].p, by_trh[250].critical_updates,
            by_trh[250].ath_star) == (1 / 4, 20, 80)
    assert (by_trh[500].p, by_trh[500].critical_updates,
            by_trh[500].ath_star) == (1 / 8, 22, 176)
    assert (by_trh[1000].p, by_trh[1000].critical_updates,
            by_trh[1000].ath_star) == (1 / 16, 23, 368)
