"""Figure 2: PRAC slowdown per workload at T_RH 4000 / 500 / 100.

Paper: the slowdown is identical across thresholds (~10% average, 18%
worst case) because it comes from the inflated timings, not ABO.
"""

from _common import (bench_instructions, bench_workloads, record, run_once)

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.workloads.catalog import STREAM_NAMES


def test_fig02_prac_slowdown(benchmark):
    table = run_once(benchmark, lambda: ex.fig2_prac_slowdown(
        workloads=bench_workloads(), instructions=bench_instructions()))
    record("fig02_prac_slowdown", tables.render_slowdown_table(
        table, "Figure 2: PRAC slowdown (paper avg: 10%)"))
    averages = table.averages()
    # flat across thresholds (ABO contributes ~nothing for benign runs)
    values = list(averages.values())
    assert max(values) - min(values) < 0.03
    # meaningful average slowdown (our core model reads ~1.3-1.6x the
    # paper's 10%; see EXPERIMENTS.md for the calibration discussion)
    assert 0.05 < averages["prac@500"] < 0.25
    # streams are the least affected workloads present
    streams = ex.stream_subset(table)
    if streams:
        non_stream = [row["prac@500"] for name, row in table.rows.items()
                      if name not in STREAM_NAMES]
        assert streams["prac@500"] < sum(non_stream) / len(non_stream)
