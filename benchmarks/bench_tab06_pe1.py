"""Table 6: row failure probability P_e1 as C varies from 20 to 25."""

import pytest
from _common import record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables


def test_tab06_pe1_grid(benchmark):
    grid = run_once(benchmark, ex.tab6_pe1_grid)
    record("tab06_pe1", tables.render_tab6(grid))
    # the boldface (largest safe C) entries of the paper
    assert grid[250][20][1] < 1 < grid[250][21][1]
    assert grid[500][22][1] < 1 < grid[500][23][1]
    assert grid[1000][23][1] < 1 < grid[1000][24][1]
    # spot value: T=500, C=22 -> 5.9e-9
    assert grid[500][22][0] == pytest.approx(5.9e-9, rel=0.03)
