"""Table 12: SRQ insertions per 100 activations, uniform vs NUP.

Paper: 6.2 / 12.5 / 25.0 insertions per 100 ACTs at T_RH 1000/500/250,
roughly halved by NUP (3.1 / 6.3 / 13.4).
"""

import pytest
from _common import bench_instructions, record, run_once

from repro.analysis import experiments as ex
from repro.analysis import tables

#: insertion-rate measurement needs ACT-rich workloads
WORKLOADS = ("mcf", "add")


def test_tab12_srq_insertions(benchmark):
    out = run_once(benchmark, lambda: ex.tab12_srq_insertions(
        workloads=WORKLOADS,
        instructions=max(bench_instructions(), 60_000)))
    record("tab12_srq_insertions", tables.render_tab12(out))
    for trh, expected in ((1000, 6.25), (500, 12.5), (250, 25.0)):
        # uniform MINT sampling inserts once per 1/p activations
        assert out[trh]["uniform"] == pytest.approx(expected, rel=0.15)
        # NUP halves it for cold-row-dominated traffic
        ratio = out[trh]["nup"] / out[trh]["uniform"]
        assert 0.4 < ratio < 0.75
