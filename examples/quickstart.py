#!/usr/bin/env python3
"""Quickstart: the MoPAC reproduction in five minutes.

1. Derive the paper's security parameters for a Rowhammer threshold.
2. Throw a double-sided Rowhammer attack at MoPAC-D and check it holds.
3. Compare benign-workload slowdown: PRAC vs MoPAC-C vs MoPAC-D.

Run:  python examples/quickstart.py
"""

import random

from repro import security
from repro.attacks import double_sided, run_attack
from repro.mitigations import MoPACDPolicy
from repro.sim import DesignPoint, slowdown

TRH = 500  # the paper's default Rowhammer threshold


def derive_parameters():
    print(f"=== Security parameters at T_RH = {TRH} ===")
    budget = security.budget_for(TRH)
    print(f"failure budget F = {budget.failure_probability:.2e}, "
          f"epsilon = {budget.epsilon:.2e} (10K-year bank MTTF)")

    mopac_c = security.mopac_c_params(TRH)
    print(f"MoPAC-C: p = 1/{mopac_c.inv_p}, C = "
          f"{mopac_c.critical_updates}, ATH* = {mopac_c.ath_star} "
          f"(paper Table 7: 1/8, 22, 176)")

    mopac_d = security.mopac_d_params(TRH)
    print(f"MoPAC-D: A' = {mopac_d.effective_acts}, C = "
          f"{mopac_d.critical_updates}, ATH* = {mopac_d.ath_star} "
          f"(paper Table 8: 440, 19, 152)")
    print()


def attack_mopac_d():
    print("=== Double-sided Rowhammer vs MoPAC-D ===")
    geometry = dict(banks=4, rows=1024, refresh_groups=64)
    policy = MoPACDPolicy(TRH, **geometry, rng=random.Random(1))
    result = run_attack(policy, double_sided(0, 100),
                        activations=300_000, trh=TRH, **geometry)
    report = result.ledger
    print(f"issued {result.activations:,} activations, "
          f"{result.alerts} ABO episodes")
    print(f"hottest unmitigated row reached {report.max_count} "
          f"activations (threshold {TRH})")
    print("attack", "SUCCEEDED" if result.attack_succeeded else "DEFEATED")
    print()


def benign_slowdown():
    print("=== Benign slowdown on 8-core mcf (scaled run) ===")
    for design in ("prac", "mopac-c", "mopac-d"):
        point = DesignPoint(workload="mcf", design=design, trh=TRH,
                            instructions=60_000)
        print(f"{design:9s}: {slowdown(point):6.1%}")
    print("(paper, full scale: prac ~10-14%, mopac-c ~1.8%, "
          "mopac-d ~0.8% on average)")


if __name__ == "__main__":
    derive_parameters()
    attack_mopac_d()
    benign_slowdown()
