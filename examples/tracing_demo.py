#!/usr/bin/env python3
"""Event-tracing demo: record a Rowhammer-ish run, export a Chrome trace.

Runs the ``hammer`` workload against MoPAC-D with a deliberately tiny
SRQ (every activation episode samples into it), so the run produces
real ABO ALERT/RFM traffic. The opt-in :class:`repro.obs.EventTracer`
records every ACT / PRE / REF / ALERT / RFM / DRAIN / MITIGATE event;
the demo then

* prints the per-kind event tally and the run's phase breakdown,
* cross-checks the traced RFM/ALERT counts against the memory
  controllers' stats counters,
* exports both a JSONL dump and a Chrome trace-event JSON you can open
  at https://ui.perfetto.dev (sub-channels appear as processes, banks
  as threads).

Run:  python examples/tracing_demo.py [--out trace.json] [--jsonl trace.jsonl]
"""

import argparse
import json
import sys
import tempfile

from repro.obs import EventTracer
from repro.sim.runner import DesignPoint, run_point

#: SRQ-pressure point: p=1.0 forces every episode into the 5-entry SRQ.
POINT = DesignPoint(workload="hammer", design="mopac-d", trh=250,
                    instructions=12_000, rows_per_bank=128,
                    refresh_scale=1 / 256, p=1.0, srq_size=5,
                    drain_on_ref=0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--out", default=None,
                        help="Chrome trace output path "
                             "(default: a temporary file)")
    parser.add_argument("--jsonl", default=None,
                        help="also write a JSONL event dump here")
    args = parser.parse_args(argv)

    tracer = EventTracer()
    result = run_point(POINT, tracer=tracer)

    counts = tracer.counts()
    print(f"run: {result.summary()}")
    print("phases:", " ".join(f"{name}={seconds:.3f}s"
                              for name, seconds in result.phases.items()))
    print("events:", " ".join(f"{kind}={counts.get(kind, 0)}"
                              for kind in ("ACT", "PRE", "REF", "ALERT",
                                           "RFM", "DRAIN", "MITIGATE")))

    alerts = counts.get("ALERT", 0)
    if alerts == 0:
        print("ERROR: expected ALERT events in the trace", file=sys.stderr)
        return 1
    rfm_stats = sum(s.rfm_commands for s in result.mc_stats)
    if counts.get("RFM", 0) != rfm_stats:
        print(f"ERROR: {counts.get('RFM', 0)} RFM trace events but the "
              f"controllers count {rfm_stats}", file=sys.stderr)
        return 1
    print(f"traced RFM events match controller stats ({rfm_stats})")

    out = args.out or tempfile.mkstemp(suffix=".trace.json",
                                       prefix="mopac-")[1]
    written = tracer.to_chrome_trace(out)
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    assert len(document["traceEvents"]) == written
    print(f"wrote {written} events to {out} (open in Perfetto)")
    if args.jsonl:
        lines = tracer.to_jsonl(args.jsonl)
        print(f"wrote {lines} JSONL events to {args.jsonl}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
