#!/usr/bin/env python3
"""LLC substrate demo: raw access traces vs pre-filtered miss traces.

The calibrated Table 4 workloads generate LLC-*miss* streams (their MPKI
column already counts misses). This example shows the other mode: feed a
raw access trace with reuse through the shared 8 MB LLC and watch the
cache absorb the re-references before they reach DRAM.

Run:  python examples/llc_filtering.py
"""

from repro.config import DRAMConfig, SystemConfig
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.trace import TraceItem
from repro.dram.timing import ddr5_base
from repro.mitigations.prac import BaselinePolicy
from repro.sim.system import System


def hot_cold_trace(n: int, hot_lines: int = 64, cold_stride: int = 1):
    """Alternate between a small hot set (cache-resident) and a cold
    streaming sweep (cache-hostile)."""
    cold = 10_000
    for i in range(n):
        if i % 2:
            yield TraceItem(20, (i // 2 % hot_lines) * 64)
        else:
            cold += cold_stride
            yield TraceItem(20, cold * 64)


def run(use_llc: bool):
    dram = DRAMConfig(subchannels=2, banks_per_subchannel=8,
                      rows_per_bank=1024,
                      timing=ddr5_base().scaled_refresh(1 / 256))
    config = SystemConfig(dram=dram, cores=1)
    system = System(config, lambda i: BaselinePolicy(dram.timing),
                    [hot_cold_trace(4000)], instruction_limit=100_000,
                    use_llc=use_llc)
    result = system.run()
    return result, system.llc


def main():
    raw, _ = run(use_llc=False)
    filtered, llc = run(use_llc=True)
    print("=== Same trace, with and without the LLC in the loop ===\n")
    print(f"{'':24s}{'no LLC':>10s}{'with LLC':>10s}")
    print(f"{'DRAM requests':24s}{raw.total_requests:>10d}"
          f"{filtered.total_requests:>10d}")
    print(f"{'elapsed (us)':24s}{raw.elapsed_ps / 1e6:>10.1f}"
          f"{filtered.elapsed_ps / 1e6:>10.1f}")
    print(f"{'IPC':24s}{raw.ipcs[0]:>10.2f}{filtered.ipcs[0]:>10.2f}")
    assert llc is not None
    print(f"\nLLC: {llc.stats.accesses} accesses, "
          f"hit rate {llc.stats.hit_rate:.1%}, "
          f"{llc.stats.writebacks} writebacks")
    print("\nThe hot half of the trace lives in the cache; only the cold "
          "sweep reaches DRAM.")


def standalone_cache_demo():
    print("\n=== Standalone cache: LRU mechanics ===")
    cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
    for line in range(4):
        cache.access(line * 64)
    cache.access(0)  # promote line 0
    cache.access(4 * 64)  # evicts line 1, the LRU
    print(f"line 0 still cached: {cache.contains(0)}")
    print(f"line 1 evicted:      {not cache.contains(64)}")


if __name__ == "__main__":
    main()
    standalone_cache_demo()
