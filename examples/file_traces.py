#!/usr/bin/env python3
"""File-based traces: dump, inspect, and replay through the simulator.

The paper's artifact ships binary traces; our equivalent is a plain-text
``gap address [W]`` format. This example:

1. dumps a calibrated synthetic trace per core,
2. reloads the files,
3. replays them through the full system under baseline and PRAC.

Run:  python examples/file_traces.py
"""

import tempfile
from pathlib import Path

from repro.config import SystemConfig
from repro.cpu.trace import load_trace_file, trace_mpki, write_trace_file
from repro.sim.runner import DesignPoint, build_config, make_policy_factory
from repro.sim.system import System
from repro.workloads.catalog import SPEC_WORKLOADS
from repro.workloads.synthetic import generate_trace

CORES = 8
ACCESSES = 3000


def dump_traces(directory: Path, config: SystemConfig) -> list[Path]:
    spec = SPEC_WORKLOADS["mcf"]
    paths = []
    for core in range(CORES):
        items = generate_trace(spec, config.dram, ACCESSES, core_id=core)
        path = directory / f"mcf.core{core}.trace"
        write_trace_file(str(path), items,
                         header=f"workload=mcf core={core}")
        paths.append(path)
    return paths


def replay(paths: list[Path], design: str):
    point = DesignPoint(workload="mcf", design=design, trh=500)
    config = build_config(point)
    loaded = [load_trace_file(str(path)) for path in paths]
    # the instruction budget is exactly what the traces contain, so the
    # run ends when the last access retires (no silent idle tail)
    budget = min(sum(item.gap + 1 for item in items) for items in loaded)
    system = System(config, make_policy_factory(point, config),
                    [iter(items) for items in loaded],
                    instruction_limit=budget)
    result = system.run()
    return result, sum(result.ipcs)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        point = DesignPoint(workload="mcf", design="baseline")
        config = build_config(point)
        paths = dump_traces(directory, config)
        items = load_trace_file(str(paths[0]))
        print(f"dumped {len(paths)} per-core trace files, "
              f"{len(items)} accesses each, MPKI "
              f"{trace_mpki(items):.1f}")
        base, ipc_base = replay(paths, "baseline")
        prac, ipc_prac = replay(paths, "prac")
        print(f"baseline: {base.summary()}")
        print(f"prac    : {prac.summary()}")
        print(f"PRAC slowdown on the replayed traces: "
              f"{1 - ipc_prac / ipc_base:.1%}")


if __name__ == "__main__":
    main()
