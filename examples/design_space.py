#!/usr/bin/env python3
"""Design-space capstone: security x performance x energy x DoS.

One table that compares every secure design along the four axes the
paper's argument runs on:

* benign slowdown (the PRAC adoption blocker, Figures 2/9/11),
* DRAM energy overhead (extension),
* ALERT traffic under a benign hot-row workload,
* worst unmitigated activation count under a fuzzing campaign
  (the security margin).

Run:  python examples/design_space.py [--trh 500]
"""

import argparse
import random

from repro.attacks.fuzzer import fuzz
from repro.dram.energy import energy_overhead
from repro.mitigations import (MoPACCPolicy, MoPACDPolicy, PRACMoatPolicy,
                               QPRACPolicy)
from repro.sim.runner import DesignPoint, simulate, slowdown

GEO = dict(banks=4, rows=1024, refresh_groups=64)
INSTRUCTIONS = 50_000


def fuzz_margin(trh: int) -> dict[str, int]:
    designs = {
        "prac": lambda: PRACMoatPolicy(trh, **GEO),
        "qprac": lambda: QPRACPolicy(trh, **GEO),
        "mopac-c": lambda: MoPACCPolicy(trh, **GEO,
                                        rng=random.Random(31)),
        "mopac-d": lambda: MoPACDPolicy(trh, **GEO,
                                        rng=random.Random(32)),
        "mopac-d-nup": lambda: MoPACDPolicy(trh, nup=True, **GEO,
                                            rng=random.Random(33)),
    }
    return {name: fuzz(factory, trh=trh, cases=8, acts_per_case=50_000,
                       seed=77, **GEO).worst_count
            for name, factory in designs.items()}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trh", type=int, default=500)
    parser.add_argument("--workload", default="hammer")
    args = parser.parse_args()

    margins = fuzz_margin(args.trh)
    base = simulate(DesignPoint(workload=args.workload, design="baseline",
                                instructions=INSTRUCTIONS))

    print(f"Design space at T_RH = {args.trh}, workload "
          f"{args.workload} ({INSTRUCTIONS:,} instr/core)\n")
    print(f"{'design':>12s} {'slowdown':>9s} {'energy':>8s} "
          f"{'ALERTs':>7s} {'fuzz worst':>11s} {'margin':>7s}")
    # qprac is not a sim runner design (identical timing to prac); show
    # the sim rows for the four runner designs and fuzz for all five.
    for design in ("prac", "mopac-c", "mopac-d", "mopac-d-nup"):
        point = DesignPoint(workload=args.workload, design=design,
                            trh=args.trh, instructions=INSTRUCTIONS)
        result = simulate(point)
        sd = slowdown(point)
        energy = energy_overhead(result, base)
        worst = margins[design]
        margin = 1 - worst / args.trh
        print(f"{design:>12s} {sd:>9.1%} {energy:>8.1%} "
              f"{result.total_alerts:>7d} {worst:>11d} {margin:>7.0%}")
    print(f"{'qprac':>12s} {'= prac':>9s} {'= prac':>8s} {'~0':>7s} "
          f"{margins['qprac']:>11d} "
          f"{1 - margins['qprac'] / args.trh:>7.0%}")
    print("\n(margin = headroom below T_RH under the fuzzing campaign;"
          "\n qprac matches PRAC's timings but services mitigations "
          "proactively at REF)")


if __name__ == "__main__":
    main()
