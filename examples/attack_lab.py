#!/usr/bin/env python3
"""Attack lab: every pattern against every mitigation.

Reproduces the paper's security story end-to-end:

* unprotected DDR5 breaks instantly,
* the DDR4-era TRR strawman survives single-sided hammering but falls to
  a TRRespass-style many-sided pattern (Section 2.3),
* PRAC+MOAT, MoPAC-C and MoPAC-D(+NUP) defeat everything, and the
  attacker's best move only costs *throughput* (Section 7).

Run:  python examples/attack_lab.py
"""

import random

from repro.attacks import (double_sided, many_sided, run_attack,
                           single_sided, srq_fill)
from repro.mitigations import (BaselinePolicy, MoPACCPolicy, MoPACDPolicy,
                               PRACMoatPolicy, TRRPolicy)

TRH = 500
GEO = dict(banks=4, rows=1024, refresh_groups=1024)
ACTS = 200_000


def build_policies():
    return [
        ("unprotected", BaselinePolicy()),
        ("trr-16", TRRPolicy(banks=4, entries=16,
                             mitigation_threshold=64,
                             refs_per_mitigation=4)),
        ("prac+moat", PRACMoatPolicy(TRH, **GEO)),
        ("mopac-c", MoPACCPolicy(TRH, **GEO, rng=random.Random(1))),
        ("mopac-d", MoPACDPolicy(TRH, **GEO, rng=random.Random(2))),
        ("mopac-d+nup", MoPACDPolicy(TRH, nup=True, **GEO,
                                     rng=random.Random(3))),
    ]


PATTERNS = [
    ("single-sided", lambda: single_sided(0, 100)),
    ("double-sided", lambda: double_sided(0, 100)),
    ("many-sided-24", lambda: many_sided(0, range(100, 124))),
    ("srq-fill-500", lambda: srq_fill(0, 500)),
]


def main():
    header = f"{'pattern':16s}" + "".join(
        f"{name:>14s}" for name, _ in build_policies())
    print(header)
    print("-" * len(header))
    for pattern_name, pattern_factory in PATTERNS:
        cells = []
        for _, policy in build_policies():
            result = run_attack(policy, pattern_factory(), ACTS, trh=TRH,
                                stop_on_failure=True, **GEO)
            verdict = ("BROKEN" if result.attack_succeeded
                       else f"max {result.ledger.max_count}")
            cells.append(f"{verdict:>14s}")
        print(f"{pattern_name:16s}" + "".join(cells))
    print()
    print(f"(max N = hottest unmitigated row, threshold {TRH}; "
          "BROKEN = bit-flips possible)")


if __name__ == "__main__":
    main()
