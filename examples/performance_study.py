#!/usr/bin/env python3
"""Performance study: regenerate the paper's headline comparison.

Sweeps PRAC, MoPAC-C and MoPAC-D (+NUP) across Rowhammer thresholds for
a set of workloads and prints Figure-9/11/17-style tables. Use
``--full`` for the whole 23-workload suite (slow) and
``--instructions N`` to lengthen the runs.

Run:  python examples/performance_study.py [--full] [--instructions N]
"""

import argparse

from repro.analysis import experiments as ex
from repro.analysis import tables
from repro.workloads.catalog import ALL_WORKLOADS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all 23 workloads (slow)")
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="instructions per core per run")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="explicit workload list")
    parser.add_argument("--plot", action="store_true",
                        help="also draw ASCII bar charts")
    args = parser.parse_args()

    if args.workloads:
        workloads = tuple(args.workloads)
    elif args.full:
        workloads = ALL_WORKLOADS
    else:
        workloads = ("add", "scale", "mcf", "parest", "xalancbmk")

    print(f"workloads: {', '.join(workloads)}")
    print(f"instructions/core: {args.instructions:,}\n")

    fig9 = ex.fig9_mopac_c(workloads=workloads,
                           instructions=args.instructions)
    print(tables.render_slowdown_table(
        fig9, "PRAC vs MoPAC-C (paper Fig. 9; avg 10% vs 0.8/1.8/3.0%)"))

    fig11 = ex.fig11_mopac_d(workloads=workloads,
                             instructions=args.instructions)
    print(tables.render_slowdown_table(
        fig11, "PRAC vs MoPAC-D (paper Fig. 11; avg 10% vs 0.1/0.8/3.5%)"))

    fig17 = ex.fig17_nup(workloads=workloads,
                         instructions=args.instructions)
    print(tables.render_slowdown_table(
        fig17, "MoPAC-D uniform vs NUP (paper Fig. 17)"))

    if args.plot:
        from repro.analysis import plots
        print(plots.figure_from_table(fig9, "Figure 9 (averages)"))
        print(plots.figure_from_table(fig11, "Figure 11 (averages)"))


if __name__ == "__main__":
    main()
