#!/usr/bin/env python3
"""Security analysis walkthrough: from MTTF target to ATH*.

Reproduces the full parameter-derivation pipeline of Sections 5.3/6.4/8.2
for an arbitrary threshold — including non-paper values — and shows how
the knobs interact:

* the failure budget from the 10K-year bank MTTF,
* the binomial C-search for MoPAC-C and MoPAC-D,
* the NUP Markov chain,
* what happens when you pick a *smaller* p than the default (cheaper
  updates, but ATH* collapses and ABO rates explode).

Run:  python examples/security_analysis.py [TRH]
"""

import sys

from repro import security


def derive(trh: int) -> None:
    print(f"=== Parameter derivation for T_RH = {trh} ===\n")
    budget = security.budget_for(trh)
    print(f"Eq. 3: F = {budget.failure_probability:.3e}  "
          f"(time for {trh} ACTs / 10K years)")
    print(f"Eq. 6: epsilon = sqrt(F) = {budget.epsilon:.3e}  "
          "(per aggressor of a double-sided pair)\n")

    default = security.default_p(trh)
    print(f"default sampling probability: p = 1/{round(1 / default)}\n")

    print("MoPAC-C (binomial over A = ATH):")
    c_side = security.mopac_c_params(trh)
    print(f"  ATH = {c_side.ath}, C = {c_side.critical_updates}, "
          f"ATH* = {c_side.ath_star}, "
          f"P(undercount) = {c_side.undercount_probability:.2e}\n")

    print("MoPAC-D (binomial over A' = ATH - TTH):")
    d_side = security.mopac_d_params(trh)
    print(f"  A' = {d_side.effective_acts}, C = "
          f"{d_side.critical_updates}, ATH* = {d_side.ath_star}, "
          f"drain-on-REF = {security.drain_on_ref_default(trh)}\n")

    print("MoPAC-D with NUP (Markov chain, p/2 while counter = 0):")
    nup = security.mopac_d_nup_params(trh)
    print(f"  uniform ATH* = {nup.uniform_ath_star}, "
          f"NUP ATH* = {nup.nup_ath_star}\n")

    print("What if we sampled less often? (p sweep)")
    print(f"  {'p':>8s} {'C':>4s} {'ATH*':>6s} {'ABO/attack-ACTs':>16s}")
    p = default
    for _ in range(4):
        try:
            params = security.mopac_c_params(trh, p)
        except ValueError:
            break
        attack = security.attack_ath_star(params)
        print(f"  1/{round(1 / p):<6d} {params.critical_updates:>4d} "
              f"{params.ath_star:>6d} {attack:>16d}")
        p /= 2
    print("\n(smaller p means fewer updates but a lower ATH*: the "
          "attacker triggers ABO sooner and benign hot rows alert more)")


if __name__ == "__main__":
    derive(int(sys.argv[1]) if len(sys.argv) > 1 else 500)
