"""Rendezvous ring: agreement, minimal disruption, spread."""

import pytest

from repro.fabric.ring import Ring, node_weight, rank_nodes

NODES = ["unix:/run/n0.sock", "unix:/run/n1.sock", "unix:/run/n2.sock"]
KEYS = [f"key-{n:04d}" for n in range(300)]


class TestAgreement:
    def test_membership_order_is_irrelevant(self):
        forward = Ring(NODES)
        backward = Ring(list(reversed(NODES)))
        assert forward == backward
        for key in KEYS[:50]:
            assert forward.owners(key) == backward.owners(key)

    def test_owner_order_is_deterministic(self):
        ring = Ring(NODES)
        for key in KEYS[:50]:
            assert ring.owners(key) == ring.owners(key)
            assert ring.owner(key) == ring.owners(key)[0]

    def test_owner_order_is_a_permutation(self):
        ring = Ring(NODES)
        for key in KEYS[:50]:
            assert sorted(ring.owners(key)) == ring.nodes

    def test_count_truncates(self):
        ring = Ring(NODES)
        assert ring.owners("k", count=2) == ring.owners("k")[:2]

    def test_weight_is_pure(self):
        assert node_weight("k", "n") == node_weight("k", "n")
        assert node_weight("k", "a") != node_weight("k", "b")

    def test_rank_breaks_ties_totally(self):
        # identical inputs rank identically no matter the list order
        assert rank_nodes("k", NODES) == rank_nodes("k",
                                                    list(reversed(NODES)))


class TestMinimalDisruption:
    def test_removal_only_moves_the_lost_nodes_keys(self):
        ring = Ring(NODES)
        lost = NODES[1]
        survivor_ring = ring.without(lost)
        moved = 0
        for key in KEYS:
            before = ring.owner(key)
            after = survivor_ring.owner(key)
            if before == lost:
                moved += 1
                assert after != lost
                # the new owner is the key's next rendezvous choice
                assert after == ring.owners(key)[1]
            else:
                assert after == before
        assert moved > 0  # the lost node owned something

    def test_without_unknown_node_is_identity(self):
        ring = Ring(NODES)
        assert ring.without("unix:/run/ghost.sock") == ring


class TestSpread:
    def test_keys_spread_over_all_nodes(self):
        groups = Ring(NODES).assignment(KEYS)
        assert sorted(groups) == sorted(NODES)
        # uniform weights: no node starves or hoards (300 keys over
        # 3 nodes; a lopsided hash would blow way past these bounds)
        for keys in groups.values():
            assert 50 <= len(keys) <= 150

    def test_assignment_preserves_input_order(self):
        groups = Ring(NODES).assignment(KEYS)
        for node, keys in groups.items():
            assert keys == [k for k in KEYS if Ring(NODES).owner(k) == node]


class TestValidation:
    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            Ring([])

    def test_blank_entries_stripped(self):
        ring = Ring(["  a ", "", "b", "   "])
        assert ring.nodes == ["a", "b"]

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Ring(["a", "b", " a "])

    def test_single_node_ring_owns_everything(self):
        ring = Ring(["solo"])
        assert all(ring.owner(key) == "solo" for key in KEYS[:10])
