"""Shared-directory remote tier: blobs, claims, tiered read-through."""

import json

import pytest

from repro.exec.cache import ResultCache, point_key
from repro.fabric.tiers import SharedDirTier, make_tiered_cache
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)
POINT = DesignPoint(workload="add", design="baseline", **FAST)


@pytest.fixture(scope="module")
def result():
    return run_point(POINT)


@pytest.fixture
def tier(tmp_path):
    return SharedDirTier(tmp_path / "remote")


class TestBlobs:
    def test_round_trip(self, tier):
        tier.put_blob("ab" * 32, {"x": 1})
        assert tier.get_blob("ab" * 32) == {"x": 1}
        assert len(tier) == 1

    def test_miss_returns_none(self, tier):
        assert tier.get_blob("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tier):
        key = "ab" * 32
        tier.put_blob(key, {"x": 1})
        tier._blob_path(key).write_text("{trunc", encoding="utf-8")
        assert tier.get_blob(key) is None

    def test_overwrite_is_atomic_replace(self, tier):
        key = "ab" * 32
        tier.put_blob(key, {"x": 1})
        tier.put_blob(key, {"x": 2})
        assert tier.get_blob(key) == {"x": 2}
        assert len(tier) == 1


class TestClaims:
    def test_exactly_one_claimant_wins(self, tier):
        assert tier.claim("k1", "node-a") is True
        assert tier.claim("k1", "node-b") is False
        assert tier.claim_owner("k1") == "node-a"

    def test_release_requires_ownership(self, tier):
        tier.claim("k1", "node-a")
        tier.release("k1", "node-b")  # not the owner: must not unlink
        assert tier.claim_owner("k1") == "node-a"
        tier.release("k1", "node-a")
        assert tier.claim_owner("k1") is None
        assert tier.claims() == []

    def test_claim_age(self, tier):
        assert tier.claim_age_s("k1") is None
        tier.claim("k1", "node-a")
        age = tier.claim_age_s("k1")
        assert age is not None and age >= 0.0

    def test_steal_transfers_ownership(self, tier):
        tier.claim("k1", "dead-node")
        assert tier.steal_claim("k1", "node-b") is True
        assert tier.claim_owner("k1") == "node-b"
        # the original holder's release must now be a no-op
        tier.release("k1", "dead-node")
        assert tier.claim_owner("k1") == "node-b"

    def test_steal_of_missing_claim_loses(self, tier):
        assert tier.steal_claim("k1", "node-b") is False
        assert tier.claims() == []

    def test_claims_listing_sorted(self, tier):
        tier.claim("bb", "n")
        tier.claim("aa", "n")
        assert tier.claims() == ["aa", "bb"]


class TestTieredCache:
    def make(self, tmp_path, tag, **kwargs):
        kwargs.setdefault("claim_ttl_s", 30.0)
        return make_tiered_cache(tmp_path / f"{tag}-local",
                                 tmp_path / "remote", owner=tag,
                                 **kwargs)

    def test_read_through_populates_local(self, tmp_path, result):
        writer = self.make(tmp_path, "writer")
        writer.put(POINT, result)
        writer.close()  # drain the write-behind queue
        assert writer.remote.writes == 1

        reader = self.make(tmp_path, "reader")
        back = reader.get(POINT)
        assert back is not None and back.ipcs == result.ipcs
        assert reader.remote.hits == 1
        # the fill landed locally: next lookup never leaves the node
        assert ResultCache(tmp_path / "reader-local").get(POINT) is not None

    def test_miss_counts_once_per_lookup(self, tmp_path):
        cache = self.make(tmp_path, "n0")
        assert cache.get(POINT) is None
        assert cache.remote.misses == 1

    def test_peek_remote_never_counts_a_miss(self, tmp_path):
        cache = self.make(tmp_path, "n0")
        assert cache.peek_remote(POINT) is None
        assert cache.remote.misses == 0
        assert cache.remote.hit_rate == 0.0

    def test_put_claimed_publishes_then_releases(self, tmp_path, result):
        cache = self.make(tmp_path, "n0")
        key = point_key(POINT, cache.salt)
        assert cache.try_claim(key) is True
        assert cache.remote.claims == 1
        cache.put_claimed(POINT, result)
        cache.flush()
        # after the FIFO drains: result visible AND claim gone — never
        # the reverse order
        assert cache.tier.get_blob(key) is not None
        assert cache.tier.claims() == []

    def test_claim_denied_counted(self, tmp_path):
        first = self.make(tmp_path, "n0")
        second = self.make(tmp_path, "n1")
        key = point_key(POINT, first.salt)
        assert first.try_claim(key) is True
        assert second.try_claim(key) is False
        assert second.remote.claim_denied == 1

    def test_steal_counted(self, tmp_path):
        first = self.make(tmp_path, "n0")
        second = self.make(tmp_path, "n1")
        key = point_key(POINT, first.salt)
        first.try_claim(key)
        assert second.steal_claim(key) is True
        assert second.remote.steals == 1

    def test_ttl_knob_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_CLAIM_TTL_S", "2.5")
        cache = make_tiered_cache(tmp_path / "local",
                                  tmp_path / "remote", owner="n0")
        assert cache.claim_ttl_s == 2.5

    def test_undecodable_remote_entry_is_a_miss(self, tmp_path):
        cache = self.make(tmp_path, "n0")
        key = point_key(POINT, cache.salt)
        cache.tier.put_blob(key, {"not": "a result"})
        assert cache.get(POINT) is None
        assert cache.remote.misses == 1
