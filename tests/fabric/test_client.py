"""FabricClient against fake nodes: sharding, hedging, failover."""

import pytest

from repro.exec.cache import point_key
from repro.fabric.client import FabricClient, FabricError
from repro.fabric.ring import Ring
from repro.serve.client import ServeError
from repro.sim.runner import DesignPoint

NODES = ["unix:/run/n0.sock", "unix:/run/n1.sock", "unix:/run/n2.sock"]


def make_points(count, seed=0):
    return [DesignPoint(workload=f"w{seed}-{n}", design="baseline")
            for n in range(count)]


def fake_result(point):
    return {"workload": point.workload, "design": point.design}


class FakeClient:
    """Scriptable stand-in for ServeClient (no sockets)."""

    def __init__(self, address):
        self.address = address
        self.jobs = {}
        self.submits = []       # (job_id, keys, hedge) in arrival order
        self.down = False       # transport failure on every call
        self.shed = False       # admission refusal on submit (503)
        self.auto_done = True   # submitted jobs complete instantly
        self._counter = 0

    def _check_up(self):
        if self.down:
            raise ConnectionRefusedError(f"{self.address} down")

    def healthz(self):
        self._check_up()
        depth, bound = (1, 1) if self.shed else (0, 0)
        return {"status": "ok", "draining": False,
                "queue_depth": depth, "max_queue": bound}

    def submit(self, points, priority=0, timeout_s=None, hedge=False):
        self._check_up()
        if self.shed:
            raise ServeError(503, {"error": "queue full"})
        self._counter += 1
        job_id = f"{self.address}#j{self._counter}"
        state = "done" if self.auto_done else "running"
        self.jobs[job_id] = {"points": list(points), "state": state}
        self.submits.append((job_id, [point_key(p) for p in points],
                             hedge))
        return job_id

    def finish(self, job_id=None):
        for jid, job in self.jobs.items():
            if job_id in (None, jid):
                job["state"] = "done"

    def status(self, job_id):
        self._check_up()
        if job_id not in self.jobs:
            raise ServeError(404, {"error": "unknown job"})
        return {"state": self.jobs[job_id]["state"]}

    def result(self, job_id):
        self._check_up()
        return [fake_result(p) for p in self.jobs[job_id]["points"]]


@pytest.fixture
def fleet():
    return {node: FakeClient(node) for node in NODES}


@pytest.fixture
def fabric(fleet, monkeypatch):
    # the wait loop must spin, not sleep, under test
    monkeypatch.setattr("repro.fabric.client._sleep", lambda s: None)

    def make(**kwargs):
        kwargs.setdefault("hedge_after_s", None)
        return FabricClient(NODES, client_factory=fleet.__getitem__,
                            **kwargs)
    return make


class TestSharding:
    def test_each_key_lands_on_its_rendezvous_owner(self, fabric, fleet):
        points = make_points(8)
        run = fabric().submit(points)
        ring = Ring(NODES)
        for job in run.jobs:
            for key in job.keys:
                assert ring.owner(key) == job.node
        submitted = [key for node in fleet.values()
                     for _, keys, _ in node.submits for key in keys]
        assert sorted(submitted) == sorted(run.unique)

    def test_duplicates_collapse_and_fan_back_out(self, fabric):
        points = make_points(3)
        results = fabric().run(points + [points[0]])
        assert len(results) == 4
        assert results[3] == results[0]
        assert [r["workload"] for r in results[:3]] == \
            [p.workload for p in points]

    def test_empty_submission_rejected(self, fabric):
        with pytest.raises(ValueError, match="no points"):
            fabric().submit([])

    def test_output_matches_submission_order(self, fabric):
        points = make_points(6)
        results = fabric().run(points)
        assert [r["workload"] for r in results] == \
            [p.workload for p in points]


class TestAdmission:
    def test_shed_node_rerouted_around_at_placement(self, fabric, fleet):
        points = make_points(8)
        client = fabric()
        ring = Ring(NODES)
        shedding = ring.owner(point_key(points[0]))
        fleet[shedding].shed = True
        run = client.submit(points)
        assert all(job.node != shedding for job in run.jobs)
        assert client.router.sheds >= 1
        # shed keys went to their NEXT rendezvous choice, not anywhere
        for job in run.jobs:
            for key in job.keys:
                preferred = [n for n in ring.owners(key)
                             if n != shedding]
                assert job.node == preferred[0]

    def test_submit_refusal_replaces_mid_flight(self, fabric, fleet):
        # healthz admits, then the submit itself 503s (queue filled
        # between probe and submit): the client must re-place
        points = make_points(8)
        client = fabric()
        victim = fleet[NODES[0]]
        original = victim.submit

        def refuse(points, **kwargs):
            raise ServeError(503, {"error": "queue full"})
        victim.submit = refuse
        run = client.submit(points)
        victim.submit = original
        assert all(job.node != NODES[0] for job in run.jobs)
        assert client.stats()["fabric.submit_retries"] >= 1
        assert client.wait(run) is not None

    def test_whole_fabric_saturated_raises(self, fabric, fleet):
        for node in fleet.values():
            node.shed = True
        with pytest.raises(Exception):  # NoNodeAvailable from place_all
            fabric().submit(make_points(2))


class TestHedging:
    def test_slow_job_hedges_once_to_next_owner(self, fabric, fleet):
        points = make_points(4)
        for node in fleet.values():
            node.auto_done = False
        client = fabric(hedge_after_s=0.0)
        run = client.submit(points)
        primaries = {job.node for job in run.jobs}
        client._poll_job(run, run.jobs[0])   # first poll: hedge fires
        client._poll_job(run, run.jobs[0])   # second poll: no re-hedge
        hedges = [job for job in run.jobs if job.hedge]
        assert len(hedges) == 1
        hedge = hedges[0]
        assert hedge.node != run.jobs[0].node
        assert hedge.keys == run.jobs[0].keys
        # the server was told it is a hedge (serve.jobs_hedged feeds
        # the dashboards)
        _, _, flagged = fleet[hedge.node].submits[-1]
        assert flagged is True
        assert client.stats()["fabric.hedges"] == 1
        # completion still resolves every point exactly once
        for node in fleet.values():
            node.finish()
        results = client.wait(run)
        assert len(results) == len(points)

    def test_hedge_disabled_when_unset(self, fabric, fleet):
        for node in fleet.values():
            node.auto_done = False
        client = fabric(hedge_after_s=None)
        run = client.submit(make_points(4))
        for job in list(run.jobs):
            client._poll_job(run, job)
        assert all(not job.hedge for job in run.jobs)

    def test_hedge_never_duplicates_a_resolved_key(self, fabric, fleet):
        points = make_points(4)
        for node in fleet.values():
            node.auto_done = False
        client = fabric(hedge_after_s=0.0)
        run = client.submit(points)
        first = run.jobs[0]
        for key in first.keys:
            run.results[key] = {"already": "resolved"}
        client._poll_job(run, first)
        assert all(not job.hedge for job in run.jobs)


class TestFailover:
    def test_lost_node_keys_complete_on_survivors(self, fabric, fleet):
        points = make_points(8)
        client = fabric(node_down_after=2)
        run = client.submit(points)
        lost = run.jobs[0].node
        fleet[lost].down = True
        results = client.wait(run, timeout_s=30.0)
        assert [r["workload"] for r in results] == \
            [p.workload for p in points]
        assert client.stats()["fabric.failovers"] == 1
        replacement = [job for job in run.jobs
                       if job.node != lost and
                       set(job.keys) & set(run.jobs[0].keys)]
        assert replacement and all(job.node != lost
                                   for job in replacement)

    def test_forgotten_job_fails_over_immediately(self, fabric, fleet):
        # a 404 means the node lost its journal: no point retrying it
        points = make_points(6)
        client = fabric(node_down_after=5)
        run = client.submit(points)
        first = run.jobs[0]
        del fleet[first.node].jobs[first.job_id]
        results = client.wait(run, timeout_s=30.0)
        assert len(results) == len(points)
        assert client.stats()["fabric.failovers"] == 1

    def test_transient_blip_below_threshold_recovers(self, fabric, fleet):
        points = make_points(4)
        for node in fleet.values():
            node.auto_done = False
        client = fabric(node_down_after=3)
        run = client.submit(points)
        job = run.jobs[0]
        fleet[job.node].down = True
        client._poll_job(run, job)
        assert job.failures == 1 and not job.closed
        fleet[job.node].down = False
        fleet[job.node].finish()
        client._poll_job(run, job)
        assert job.failures == 0 and job.closed
        assert client.stats()["fabric.failovers"] == 0

    def test_failed_job_with_no_twin_raises(self, fabric, fleet):
        for node in fleet.values():
            node.auto_done = False
        client = fabric()
        run = client.submit(make_points(3))
        job = run.jobs[0]
        fleet[job.node].jobs[job.job_id]["state"] = "failed"
        with pytest.raises(FabricError, match="failed"):
            client.wait(run, timeout_s=5.0)

    def test_all_nodes_down_raises(self, fabric, fleet):
        client = fabric(node_down_after=1)
        run = client.submit(make_points(3))
        for node in fleet.values():
            node.down = True
        with pytest.raises(FabricError):
            client.wait(run, timeout_s=5.0)


class TestAttach:
    def test_round_trip_resumes_a_run(self, fabric, fleet):
        points = make_points(5)
        client = fabric()
        run = client.submit(points)
        record = run.describe()
        assert record["points"] == 5 and record["unique"] == 5

        resumed = client.attach(points, record["jobs"])
        assert [(j.node, j.job_id, j.keys) for j in resumed.jobs] == \
            [(j.node, j.job_id, j.keys) for j in run.jobs]
        results = client.wait(resumed)
        assert [r["workload"] for r in results] == \
            [p.workload for p in points]

    def test_stray_keys_rejected(self, fabric):
        client = fabric()
        run = client.submit(make_points(3))
        record = run.describe()
        with pytest.raises(FabricError, match="re-planned"):
            client.attach(make_points(3, seed=9), record["jobs"])

    def test_uncovered_points_rejected(self, fabric):
        client = fabric()
        points = make_points(3)
        record = client.submit(points).describe()
        with pytest.raises(FabricError, match="no submitted job"):
            client.attach(points + make_points(1, seed=9),
                          record["jobs"])


class TestValidation:
    def test_node_down_after_must_be_positive(self, fleet):
        with pytest.raises(ValueError, match="node_down_after"):
            FabricClient(NODES, node_down_after=0,
                         client_factory=fleet.__getitem__,
                         hedge_after_s=None)

    def test_wait_times_out_loudly(self, fabric, fleet, monkeypatch):
        for node in fleet.values():
            node.auto_done = False
        client = fabric()
        run = client.submit(make_points(2))
        clock = iter([0.0] * 10 + [100.0] * 10)
        monkeypatch.setattr("repro.fabric.client._mono_s",
                            lambda: next(clock))
        with pytest.raises(FabricError, match="unresolved after"):
            client.wait(run, timeout_s=1.0)
