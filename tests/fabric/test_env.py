"""Every fabric knob parses strictly through repro.exec.env."""

import pathlib
import re

import pytest

import repro.fabric as fabric
from repro.exec.env import EnvKnobError

#: Knobs with numeric shapes (the ones with interesting failure modes).
NUMERIC = (fabric.CLAIM_TTL_ENV, fabric.HEDGE_ENV, fabric.MAX_QUEUE_ENV)


class TestKnobRegistry:
    def test_every_source_literal_is_registered(self):
        # the meta-invariant: any REPRO_* name mentioned anywhere in
        # the fabric package must be in ENV_KNOBS, i.e. readable only
        # through a strict repro.exec.env parser — a knob added without
        # registering it here fails this test before it can rot
        package = pathlib.Path(fabric.__file__).parent
        mentioned = set()
        for path in package.rglob("*.py"):
            mentioned |= set(re.findall(r'"(REPRO_[A-Z0-9_]+)"',
                                        path.read_text(encoding="utf-8")))
        assert mentioned
        assert mentioned <= set(fabric.ENV_KNOBS)

    @pytest.mark.parametrize("name", sorted(fabric.ENV_KNOBS))
    def test_unset_yields_the_default_silently(self, monkeypatch, name):
        monkeypatch.delenv(name, raising=False)
        fabric.ENV_KNOBS[name]()  # must not raise

    @pytest.mark.parametrize("name", sorted(fabric.ENV_KNOBS))
    def test_blank_counts_as_unset(self, monkeypatch, name):
        monkeypatch.setenv(name, "   ")
        assert fabric.ENV_KNOBS[name]() == self._default(name)

    @staticmethod
    def _default(name):
        return {fabric.REMOTE_DIR_ENV: None,
                fabric.CLAIM_TTL_ENV: fabric.DEFAULT_CLAIM_TTL_S,
                fabric.HEDGE_ENV: None,
                fabric.MAX_QUEUE_ENV: None,
                fabric.NODES_ENV: []}[name]

    @pytest.mark.parametrize("name", NUMERIC)
    def test_garbage_rejected_naming_the_variable(self, monkeypatch,
                                                  name):
        monkeypatch.setenv(name, "banana")
        with pytest.raises(EnvKnobError, match=name):
            fabric.ENV_KNOBS[name]()


class TestKnobShapes:
    def test_claim_ttl_default_and_override(self, monkeypatch):
        monkeypatch.delenv(fabric.CLAIM_TTL_ENV, raising=False)
        assert fabric.claim_ttl_s() == fabric.DEFAULT_CLAIM_TTL_S
        monkeypatch.setenv(fabric.CLAIM_TTL_ENV, "2.5")
        assert fabric.claim_ttl_s() == 2.5

    @pytest.mark.parametrize("bad", ["0", "-1", "nan"])
    def test_claim_ttl_must_be_positive_finite(self, monkeypatch, bad):
        monkeypatch.setenv(fabric.CLAIM_TTL_ENV, bad)
        with pytest.raises(EnvKnobError, match=fabric.CLAIM_TTL_ENV):
            fabric.claim_ttl_s()

    def test_hedge_unset_disables_hedging(self, monkeypatch):
        monkeypatch.delenv(fabric.HEDGE_ENV, raising=False)
        assert fabric.hedge_s() is None

    def test_hedge_zero_rejected_not_hot_looped(self, monkeypatch):
        # 0 would hedge every job on its first poll — a config error,
        # not a fast setting
        monkeypatch.setenv(fabric.HEDGE_ENV, "0")
        with pytest.raises(EnvKnobError, match="> 0"):
            fabric.hedge_s()

    def test_max_queue_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(fabric.MAX_QUEUE_ENV, "0")
        with pytest.raises(EnvKnobError, match=">= 1"):
            fabric.max_queue()
        monkeypatch.setenv(fabric.MAX_QUEUE_ENV, "1")
        assert fabric.max_queue() == 1

    def test_nodes_split_and_stripped(self, monkeypatch):
        monkeypatch.setenv(fabric.NODES_ENV,
                           " unix:/a.sock , ,unix:/b.sock ")
        assert fabric.fabric_nodes() == ["unix:/a.sock", "unix:/b.sock"]

    def test_remote_dir_passthrough(self, monkeypatch):
        monkeypatch.setenv(fabric.REMOTE_DIR_ENV, " /mnt/fabric ")
        assert fabric.remote_dir() == "/mnt/fabric"
