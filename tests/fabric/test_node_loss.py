"""SIGKILL a real node mid-campaign: survivors finish, bit-identically.

The satellite contract for the fabric (docs/fabric.md): with N serve
subprocesses sharing one remote tier, killing one node -9 while it is
simulating must leave the campaign able to complete on the survivors
with results bit-identical to a serial run, and must leave no orphaned
in-flight claim on the tier.
"""

import os
import signal
import time

import pytest

from repro.fabric.client import FabricClient
from repro.fabric.smoke import start_node, stop_fabric
from repro.fabric.tiers import SharedDirTier
from repro.serve.smoke import comparable, serial_reference, smoke_points


@pytest.fixture(scope="module")
def points():
    return smoke_points(seed=11)


@pytest.fixture(scope="module")
def expected(points):
    return serial_reference(points)  # already comparable() documents


def boot(tmp_path, count):
    remote = tmp_path / "remote"
    addresses, processes = [], []
    for n in range(count):
        address = f"unix:{tmp_path / f'n{n}.sock'}"
        addresses.append(address)
        processes.append(start_node(
            tmp_path / f"n{n}-state", address, remote,
            node_id=f"n{n}", workers=1, claim_ttl_s=1.0))
    return remote, addresses, processes


def drain_claims(tier, deadline_s=10.0):
    """Claims release on the write-behind FIFO; give it a beat."""
    waited = 0.0
    while tier.claims() and waited < deadline_s:
        time.sleep(0.1)
        waited += 0.1
    return tier.claims()


@pytest.mark.parametrize("nodes", [2, 3])
def test_sigkilled_node_fails_over_bit_identically(tmp_path, points,
                                                   expected, nodes):
    remote, addresses, processes = boot(tmp_path, nodes)
    by_address = dict(zip(addresses, processes))
    fabric = FabricClient(addresses, hedge_after_s=None,
                          node_down_after=2, timeout_s=10.0)
    try:
        for client in fabric.clients.values():
            client.wait_ready()
        run = fabric.submit(points)
        victim = max(run.jobs, key=lambda job: len(job.keys)).node
        time.sleep(0.3)  # let the victim start simulating
        process = by_address[victim]
        # the whole process group: a bare kill() would orphan the
        # node's forked pool workers, which hold the listening socket
        os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)

        results = fabric.wait(run, timeout_s=300.0)
        assert [comparable(result) for result in results] == expected
        assert fabric.stats()["fabric.failovers"] >= 1
        # no orphaned in-flight entries once the survivors drain
        assert drain_claims(SharedDirTier(remote)) == []
    finally:
        code = stop_fabric([p for p in processes if p.poll() is None])
    assert code == 0, f"survivor shutdown exited {code}"
