"""Fast engine internals: SoA timing state, fallbacks, engine selection.

End-to-end bit-identity across the whole design grid lives in
``tests/check/test_determinism.py``; these tests cover the pieces on
their own — the numpy/pure-Python SoA paths, the generic-iterator and
LLC fallbacks, and the ``REPRO_ENGINE`` plumbing.
"""

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.cpu.trace import TraceItem
from repro.dram.timing import ddr5_base
from repro.mitigations.prac import BaselinePolicy
from repro.sim.fastpath import FastSystem
from repro.sim.runner import resolve_engine
from repro.sim.soa import NUMPY_MIN_BANKS, TimingSoA, _np
from repro.sim.system import System


def small_config(cores=2):
    dram = DRAMConfig(subchannels=2, banks_per_subchannel=4,
                      rows_per_bank=256,
                      timing=ddr5_base().scaled_refresh(1 / 256))
    return SystemConfig(dram=dram, cores=cores)


def fixed_trace(n, stride=1, gap=20, start=0):
    return iter([TraceItem(gap, (start + i * stride) * 64)
                 for i in range(n)])


def run_engine(system_cls, **kw):
    config = small_config()
    traces = [fixed_trace(200, start=i * 10_000)
              for i in range(config.cores)]
    system = system_cls(config,
                        lambda i: BaselinePolicy(config.dram.timing),
                        traces, 5_000, **kw)
    return system.run()


def seeded_soa(banks, force_python):
    soa = TimingSoA(banks, force_python=force_python)
    for i in range(banks):
        soa.open_row[i] = i % 3 - 1       # mix of closed and open
        soa.ready_pre[i] = 100 * i
        soa.blocked_until[i] = 70 * (banks - i)
    return soa


class TestTimingSoA:
    def test_numpy_activation_threshold(self):
        small = TimingSoA(NUMPY_MIN_BANKS - 1)
        large = TimingSoA(NUMPY_MIN_BANKS)
        assert not small.batched
        assert large.batched == (_np is not None)

    def test_force_python_disables_numpy(self):
        assert not TimingSoA(64, force_python=True).batched

    @pytest.mark.skipif(_np is None, reason="numpy not installed")
    @pytest.mark.parametrize("banks", [NUMPY_MIN_BANKS, 37, 64])
    def test_block_all_paths_identical(self, banks):
        fast = seeded_soa(banks, force_python=False)
        slow = seeded_soa(banks, force_python=True)
        assert fast.batched and not slow.batched
        for until in (0, 35 * banks, 10 ** 9):
            fast.block_all(until)
            slow.block_all(until)
            assert fast.blocked_until == slow.blocked_until
        # values must come back as Python ints (JSON-serialisable)
        assert all(type(v) is int for v in fast.blocked_until)

    @pytest.mark.skipif(_np is None, reason="numpy not installed")
    @pytest.mark.parametrize("banks", [NUMPY_MIN_BANKS, 37, 64])
    def test_close_bound_paths_identical(self, banks):
        fast = seeded_soa(banks, force_python=False)
        slow = seeded_soa(banks, force_python=True)
        for now in (0, 50 * banks, 10 ** 9):
            assert fast.close_bound(now) == slow.close_bound(now)
            assert type(fast.close_bound(now)) is int

    @pytest.mark.skipif(_np is None, reason="numpy not installed")
    def test_close_bound_all_closed_floors_at_now(self):
        soa = TimingSoA(32)
        soa.open_row[:] = [-1] * 32
        soa.ready_pre[:] = [999] * 32
        assert soa.close_bound(123) == 123


class TestFallbackPaths:
    def test_generic_iterator_traces_match_reference(self):
        # hand-rolled TraceItem iterators miss the block-trace fast
        # path entirely; the per-item fallback must still be identical
        fast = run_engine(FastSystem)
        reference = run_engine(System)
        assert fast.elapsed_ps == reference.elapsed_ps
        assert [s.finish_ps for s in fast.core_stats] == \
            [s.finish_ps for s in reference.core_stats]
        assert fast.total_requests == reference.total_requests

    def test_llc_runs_match_reference(self):
        # LLC configs route through the reference dispatch closure —
        # the fast engine must fall back, not mis-simulate
        fast = run_engine(FastSystem, use_llc=True)
        reference = run_engine(System, use_llc=True)
        assert fast.elapsed_ps == reference.elapsed_ps
        assert [s.finish_ps for s in fast.core_stats] == \
            [s.finish_ps for s in reference.core_stats]

    def test_llc_filters_traffic_on_fast_engine(self):
        def reuse_traces(config):
            # every core hammers a handful of lines: near-total reuse
            return [fixed_trace(200, stride=0, start=i)
                    for i in range(config.cores)]

        config = small_config()
        with_llc = FastSystem(
            config, lambda i: BaselinePolicy(config.dram.timing),
            reuse_traces(config), 5_000, use_llc=True).run()
        without = FastSystem(
            config, lambda i: BaselinePolicy(config.dram.timing),
            reuse_traces(config), 5_000).run()
        assert with_llc.total_requests < without.total_requests


class TestEngineSelection:
    def test_reference_resolves_to_system(self):
        assert resolve_engine("reference") is System

    def test_fast_resolves_to_fastsystem(self):
        assert resolve_engine("fast") is FastSystem

    def test_env_knob_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert resolve_engine() is FastSystem
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine() is System

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="turbo"):
            resolve_engine("turbo")
