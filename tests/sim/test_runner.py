"""Experiment runner: design points, caching, slowdown, sweeps."""

import pytest

from repro.sim.runner import (DesignPoint, clear_cache, simulate, slowdown,
                              sweep, weighted_speedup)

FAST = dict(instructions=8_000, rows_per_bank=512, refresh_scale=1 / 256)


class TestDesignPoint:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            DesignPoint(workload="mcf", design="magic")

    def test_baseline_projection(self):
        point = DesignPoint(workload="mcf", design="prac", trh=250,
                            drain_on_ref=4, chips=8, **FAST)
        base = point.baseline()
        assert base.design == "baseline"
        assert base.workload == point.workload
        assert base.instructions == point.instructions
        # mitigation-only knobs are dropped
        assert base.chips == 1

    def test_baseline_keeps_row_activity_collection(self):
        point = DesignPoint(workload="mcf", design="prac", trh=500,
                            collect_row_activity=True, **FAST)
        assert point.baseline().collect_row_activity

    def test_hashable(self):
        a = DesignPoint(workload="mcf", design="prac")
        b = DesignPoint(workload="mcf", design="prac")
        assert a == b
        assert len({a, b}) == 1


class TestSimulateAndCache:
    def test_cache_returns_same_object(self):
        clear_cache()
        point = DesignPoint(workload="xalancbmk", design="baseline", **FAST)
        a = simulate(point)
        b = simulate(point)
        assert a is b

    def test_cache_bypass(self):
        point = DesignPoint(workload="xalancbmk", design="baseline", **FAST)
        a = simulate(point)
        b = simulate(point, use_cache=False)
        assert a is not b
        assert a.elapsed_ps == b.elapsed_ps  # still deterministic


class TestSlowdown:
    def test_baseline_slowdown_is_zero(self):
        point = DesignPoint(workload="xalancbmk", design="baseline", **FAST)
        assert slowdown(point) == pytest.approx(0.0, abs=1e-9)

    def test_prac_slowdown_positive(self):
        point = DesignPoint(workload="mcf", design="prac", trh=500,
                            instructions=30_000)
        assert slowdown(point) > 0.02

    def test_mopac_c_cheaper_than_prac(self):
        prac = DesignPoint(workload="mcf", design="prac", trh=500,
                           instructions=30_000)
        mopac = DesignPoint(workload="mcf", design="mopac-c", trh=500,
                            instructions=30_000)
        assert slowdown(mopac) < slowdown(prac)


class TestWeightedSpeedup:
    def test_identical_results_unity(self):
        point = DesignPoint(workload="xalancbmk", design="baseline", **FAST)
        result = simulate(point)
        assert weighted_speedup(result, result) == pytest.approx(1.0)


class TestSweep:
    def test_sweep_covers_workloads(self):
        result = sweep(["xalancbmk", "cam4"], "prac", 500, **FAST)
        assert set(result.slowdowns) == {"xalancbmk", "cam4"}
        assert result.design == "prac"
        assert isinstance(result.average, float)
        name, value = result.worst
        assert name in result.slowdowns
