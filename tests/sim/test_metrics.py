"""Speedup / fairness metrics."""

import pytest

from repro.sim.runner import (DesignPoint, fairness, harmonic_speedup,
                              simulate, weighted_speedup)

FAST = dict(instructions=12_000, rows_per_bank=512, refresh_scale=1 / 256)


@pytest.fixture(scope="module")
def pair():
    base = simulate(DesignPoint(workload="mcf", design="baseline", **FAST))
    prac = simulate(DesignPoint(workload="mcf", design="prac", trh=500,
                                **FAST))
    return base, prac


class TestMetrics:
    def test_identity_values(self, pair):
        base, _ = pair
        assert weighted_speedup(base, base) == pytest.approx(1.0)
        assert harmonic_speedup(base, base) == pytest.approx(1.0)
        assert fairness(base, base) == pytest.approx(1.0)

    def test_prac_below_unity(self, pair):
        base, prac = pair
        assert weighted_speedup(prac, base) < 1.0
        assert harmonic_speedup(prac, base) < 1.0

    def test_harmonic_at_most_arithmetic(self, pair):
        base, prac = pair
        assert harmonic_speedup(prac, base) <= \
            weighted_speedup(prac, base) + 1e-9

    def test_fairness_in_unit_interval(self, pair):
        base, prac = pair
        assert 0 < fairness(prac, base) <= 1.0

    def test_rate_mode_is_fair(self, pair):
        """Eight identical copies should progress nearly equally."""
        base, prac = pair
        assert fairness(prac, base) > 0.85
