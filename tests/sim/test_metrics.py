"""Speedup / fairness metrics."""

import pytest

from repro.config import SystemConfig
from repro.cpu.core import CoreStats
from repro.sim.runner import (DesignPoint, fairness, harmonic_speedup,
                              simulate, weighted_speedup)
from repro.sim.system import SystemResult

FAST = dict(instructions=12_000, rows_per_bank=512, refresh_scale=1 / 256)


def synthetic_result(ipcs):
    """A SystemResult whose per-core IPCs are exactly ``ipcs``."""
    config = SystemConfig.reduced(rows_per_bank=512)
    finish = 1_000_000  # 1 us
    cores = [CoreStats(instructions=round(ipc * finish * config.core_ghz
                                          / 1000.0),
                       requests=0, finish_ps=finish)
             for ipc in ipcs]
    result = SystemResult(config=config, core_stats=cores, mc_stats=[],
                          policy_stats=[], elapsed_ps=finish)
    for want, got in zip(ipcs, result.ipcs):
        assert got == pytest.approx(want, rel=1e-6)
    return result


@pytest.fixture(scope="module")
def pair():
    base = simulate(DesignPoint(workload="mcf", design="baseline", **FAST))
    prac = simulate(DesignPoint(workload="mcf", design="prac", trh=500,
                                **FAST))
    return base, prac


class TestMetrics:
    def test_identity_values(self, pair):
        base, _ = pair
        assert weighted_speedup(base, base) == pytest.approx(1.0)
        assert harmonic_speedup(base, base) == pytest.approx(1.0)
        assert fairness(base, base) == pytest.approx(1.0)

    def test_prac_below_unity(self, pair):
        base, prac = pair
        assert weighted_speedup(prac, base) < 1.0
        assert harmonic_speedup(prac, base) < 1.0

    def test_harmonic_at_most_arithmetic(self, pair):
        base, prac = pair
        assert harmonic_speedup(prac, base) <= \
            weighted_speedup(prac, base) + 1e-9

    def test_fairness_in_unit_interval(self, pair):
        base, prac = pair
        assert 0 < fairness(prac, base) <= 1.0

    def test_rate_mode_is_fair(self, pair):
        """Eight identical copies should progress nearly equally."""
        base, prac = pair
        assert fairness(prac, base) > 0.85


class TestZeroBaselineCores:
    """Regression: cores with zero baseline IPC must be excluded from
    both the sum *and* the divisor, not only the sum."""

    def test_weighted_speedup_ignores_idle_cores(self):
        result = synthetic_result([0.5, 0.0])
        baseline = synthetic_result([1.0, 0.0])
        # only core 0 carries signal: WS is 0.5, not 0.5 / 2
        assert weighted_speedup(result, baseline) == pytest.approx(0.5)

    def test_matches_harmonic_filtering(self):
        result = synthetic_result([1.0, 0.0])
        baseline = synthetic_result([1.0, 0.0])
        assert weighted_speedup(result, baseline) == pytest.approx(1.0)
        assert harmonic_speedup(result, baseline) == pytest.approx(1.0)

    def test_all_zero_baseline(self):
        result = synthetic_result([1.0, 1.0])
        baseline = synthetic_result([0.0, 0.0])
        assert weighted_speedup(result, baseline) == 0.0
