"""_RowActivityMonitor window accounting (Table 4 inputs)."""

from repro.sim.system import _RowActivityMonitor


def monitor(trefw=1000, trefi=100, banks=1):
    return _RowActivityMonitor(banks, trefw, trefi)


class TestWindowAccounting:
    def test_partial_trailing_window_not_counted(self):
        m = monitor()
        for _ in range(64):
            m.notify(10, 0, 0, 7)  # all inside window [0, 1000)
        stats = m.finalize(2500)
        # two *completed* windows; the [2000, 2500) remainder is not one
        assert stats.windows == 2
        assert stats.act64_total == 1

    def test_partial_window_activity_discarded(self):
        m = monitor()
        for _ in range(64):
            m.notify(10, 0, 0, 7)       # window 1: hot
        for _ in range(64):
            m.notify(2100, 0, 0, 9)     # partial window [2000, 2500)
        stats = m.finalize(2500)
        assert stats.windows == 2
        # the trailing partial window's hot row must not inflate ACT-64+
        assert stats.act64_total == 1
        assert stats.total_acts == 128

    def test_idle_windows_counted(self):
        m = monitor()
        m.notify(10, 0, 0, 7)
        stats = m.finalize(5000)
        # [0,1000) .. [4000,5000): five completed windows, four idle
        assert stats.windows == 5

    def test_exact_boundary(self):
        m = monitor()
        for _ in range(64):
            m.notify(10, 0, 0, 7)
        stats = m.finalize(2000)
        assert stats.windows == 2
        assert stats.act64_total == 1

    def test_no_acts_at_all(self):
        m = monitor()
        stats = m.finalize(3500)
        assert stats.windows == 3
        assert stats.total_acts == 0
        assert stats.act64 == 0.0

    def test_act200_threshold(self):
        m = monitor()
        for _ in range(200):
            m.notify(10, 0, 0, 7)
        for _ in range(199):
            m.notify(20, 0, 1, 7)  # different bank, below threshold
        stats = m.finalize(1000)
        assert stats.windows == 1
        assert stats.act200_total == 1
        assert stats.act64_total == 2

    def test_short_run_reports_one_truncated_window(self):
        # elapsed < trefw: no completed window exists, so the whole run
        # counts as one truncated window instead of an empty census
        m = monitor()
        for _ in range(64):
            m.notify(10, 0, 0, 7)
        stats = m.finalize(500)
        assert stats.windows == 1
        assert stats.act64_total == 1

    def test_zero_elapsed_reports_nothing(self):
        stats = monitor().finalize(0)
        assert stats.windows == 0
        assert stats.act64 == 0.0

    def test_act_at_exact_boundary_belongs_to_next_window(self):
        # windows are half-open [start, start + tREFW): an ACT at
        # exactly k * tREFW opens window k+1, it does not close window k
        m = monitor()
        for _ in range(63):
            m.notify(10, 0, 0, 7)
        m.notify(1000, 0, 0, 7)  # 64th ACT, but in the next window
        stats = m.finalize(2000)
        assert stats.windows == 2
        assert stats.act64_total == 0

    def test_hot_row_split_across_boundary_not_counted(self):
        m = monitor()
        for _ in range(32):
            m.notify(10, 0, 0, 7)
        for _ in range(32):
            m.notify(1010, 0, 0, 7)  # same row, next window
        stats = m.finalize(2000)
        assert stats.total_acts == 64
        assert stats.act64_total == 0

    def test_acts_straddling_boundary_count_in_their_windows(self):
        m = monitor()
        for _ in range(64):
            m.notify(999, 0, 0, 7)   # last tick of window 1
        for _ in range(64):
            m.notify(1000, 0, 0, 7)  # first tick of window 2
        stats = m.finalize(2000)
        assert stats.windows == 2
        assert stats.act64_total == 2

    def test_large_jump_skips_empty_windows_exactly(self):
        # the closed-form skip in _advance_to must count every empty
        # window a big idle gap crosses — no more, no fewer
        m = monitor()
        for _ in range(64):
            m.notify(10, 0, 0, 7)
        m.notify(987_654, 0, 0, 9)   # jump over 986 idle windows
        stats = m.finalize(1_000_000)
        assert stats.windows == 1000
        assert stats.act64_total == 1
        assert stats.total_acts == 65

    def test_jump_to_exact_multiple_boundary(self):
        m = monitor()
        m.notify(0, 0, 0, 7)
        m.notify(5000, 0, 0, 7)      # exactly 5 * tREFW
        stats = m.finalize(6000)
        assert stats.windows == 6
        assert stats.total_acts == 2

    def test_per_window_means_use_completed_windows(self):
        m = monitor(banks=2)
        for _ in range(64):
            m.notify(10, 0, 0, 7)
        stats = m.finalize(4000)
        assert stats.act64 == \
            stats.act64_total / stats.windows / stats.banks
        assert stats.act64 == 1 / (4 * 2)
