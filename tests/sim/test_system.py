"""Full-system simulator: end-to-end runs on tiny configurations."""

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.cpu.trace import TraceItem
from repro.dram.timing import ddr5_base
from repro.mitigations.prac import BaselinePolicy
from repro.sim.system import System


def small_config(cores=2):
    dram = DRAMConfig(subchannels=2, banks_per_subchannel=4,
                      rows_per_bank=256,
                      timing=ddr5_base().scaled_refresh(1 / 256))
    return SystemConfig(dram=dram, cores=cores)


def fixed_trace(n, stride=1, gap=20, start=0):
    return iter([TraceItem(gap, (start + i * stride) * 64)
                 for i in range(n)])


def run_system(config=None, traces=None, instructions=5_000, **kw):
    config = config or small_config()
    if traces is None:
        traces = [fixed_trace(100, start=i * 10_000)
                  for i in range(config.cores)]
    system = System(config, lambda i: BaselinePolicy(config.dram.timing),
                    traces, instructions, **kw)
    return system.run()


class TestCompletion:
    def test_run_finishes(self):
        result = run_system()
        assert result.elapsed_ps > 0

    def test_all_requests_serviced(self):
        result = run_system()
        # 100 reads+writes per core reach DRAM (no LLC filtering)
        assert result.total_requests == 200

    def test_core_stats_cover_budget(self):
        result = run_system(instructions=5_000)
        for stats in result.core_stats:
            assert stats.instructions == 5_000

    def test_ipcs_positive_and_bounded(self):
        result = run_system()
        for ipc in result.ipcs:
            assert 0 < ipc <= 4.0


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_system()
        b = run_system()
        assert a.elapsed_ps == b.elapsed_ps
        assert [s.finish_ps for s in a.core_stats] == \
            [s.finish_ps for s in b.core_stats]


class TestSequentialLocality:
    def test_sequential_trace_gets_row_hits(self):
        config = small_config(cores=1)
        traces = [fixed_trace(400, stride=1, gap=5)]
        result = run_system(config, traces)
        assert result.row_buffer_hit_rate > 0.5

    def test_strided_trace_gets_no_hits(self):
        config = small_config(cores=1)
        # stride of mop_lines * banks * subchannels lines -> same bank,
        # different row every time
        stride = 4 * 4 * 2 * 64
        traces = [iter([TraceItem(5, i * stride) for i in range(300)])]
        result = run_system(config, traces)
        assert result.row_buffer_hit_rate < 0.05


class TestLLCMode:
    def test_llc_filters_rereferences(self):
        config = small_config(cores=1)
        # the same 16 lines over and over: everything after the first
        # touch hits in the LLC
        items = [TraceItem(10, (i % 16) * 64) for i in range(500)]
        result = run_system(config, [iter(items)], instructions=10_000,
                            use_llc=True)
        assert result.total_requests == 16

    def test_no_llc_sends_everything(self):
        config = small_config(cores=1)
        items = [TraceItem(10, (i % 16) * 64) for i in range(500)]
        result = run_system(config, [iter(items)], instructions=10_000,
                            use_llc=False)
        assert result.total_requests == 500


class TestLLCHitCompletion:
    """Regression: LLC hits must schedule a core completion.

    Without it a core that fills its miss window on cache-resident data
    waits on the hit's request id forever (the deadlock), and hits are
    modelled as free instead of costing the LLC lookup latency.
    """

    def hot_items(self, n=400):
        # 16 lines touched repeatedly: 16 cold misses, then pure hits
        return [TraceItem(10, (i % 16) * 64) for i in range(n)]

    def test_tiny_window_run_completes(self):
        config = small_config(cores=1)
        result = run_system(config, [iter(self.hot_items())],
                            instructions=10_000, use_llc=True,
                            windows=[1])
        # window=1 forces the core to wait on every access in turn; the
        # run finishing at all proves hit completions are delivered
        assert result.core_stats[0].instructions == 10_000
        assert result.total_requests == 16

    def test_hits_cost_llc_latency(self):
        config = small_config(cores=1)
        n = 400
        result = run_system(config, [iter(self.hot_items(n))],
                            instructions=10_000, use_llc=True,
                            windows=[1])
        # serialized on a window of 1, every hit pays ~llc_hit_ps
        assert result.elapsed_ps >= (n - 16) * config.llc_hit_ps

    def test_write_hits_do_not_block(self):
        config = small_config(cores=1)
        reads = [TraceItem(10, (i % 16) * 64) for i in range(400)]
        writes = [TraceItem(10, (i % 16) * 64, is_write=True)
                  for i in range(400)]
        t_reads = run_system(config, [iter(reads)], instructions=10_000,
                             use_llc=True, windows=[1]).elapsed_ps
        t_writes = run_system(config, [iter(writes)], instructions=10_000,
                              use_llc=True, windows=[1]).elapsed_ps
        assert t_writes < t_reads


class TestRowActivity:
    def test_monitor_collects_acts(self):
        config = small_config(cores=1)
        traces = [fixed_trace(300, stride=64)]  # conflict-heavy
        result = run_system(config, traces, collect_row_activity=True)
        assert result.row_activity is not None
        assert result.row_activity.total_acts > 0

    def test_monitor_absent_by_default(self):
        result = run_system()
        assert result.row_activity is None


class TestValidation:
    def test_trace_count_must_match_cores(self):
        config = small_config(cores=2)
        with pytest.raises(ValueError, match="traces"):
            System(config, lambda i: BaselinePolicy(config.dram.timing),
                   [fixed_trace(10)], 1000)

    def test_windows_must_match_traces(self):
        config = small_config(cores=2)
        with pytest.raises(ValueError, match="windows"):
            System(config, lambda i: BaselinePolicy(config.dram.timing),
                   [fixed_trace(10), fixed_trace(10)], 1000, windows=[256])


class TestWritebacksDoNotBlock:
    def test_write_heavy_trace_finishes_fast(self):
        config = small_config(cores=1)
        reads = [TraceItem(50, i * 64) for i in range(200)]
        writes = [TraceItem(50, i * 64, is_write=True) for i in range(200)]
        t_reads = run_system(config, [iter(reads)]).elapsed_ps
        t_writes = run_system(config, [iter(writes)]).elapsed_ps
        # writebacks never block retirement, so the write run is
        # dispatch-limited and faster
        assert t_writes < t_reads
