"""SystemResult derived statistics."""

import pytest

from repro.sim.runner import DesignPoint, simulate

FAST = dict(instructions=15_000, rows_per_bank=512, refresh_scale=1 / 256)


@pytest.fixture(scope="module")
def result():
    return simulate(DesignPoint(workload="mcf", design="baseline", **FAST))


class TestDerivedStats:
    def test_bus_utilization_in_range(self, result):
        assert 0 < result.bus_utilization() < 1

    def test_bandwidth_positive_and_bounded(self, result):
        # DDR5-6000 peak for 2 sub-channels is 48 GB/s
        assert 0 < result.bandwidth_gbps() < 48

    def test_mean_ipc(self, result):
        assert result.mean_ipc() == pytest.approx(
            sum(result.ipcs) / len(result.ipcs))

    def test_total_activations_at_most_requests(self, result):
        assert 0 < result.total_activations <= result.total_requests

    def test_summary_mentions_key_numbers(self, result):
        text = result.summary()
        assert "RBHR" in text
        assert "GB/s" in text
        assert f"{result.total_requests} requests" in text

    def test_rbhr_consistent_with_acts(self, result):
        # hits = column accesses that did not need a fresh ACT
        implied_hit_rate = 1 - result.total_activations / \
            result.total_requests
        assert implied_hit_rate == pytest.approx(
            result.row_buffer_hit_rate, abs=0.05)
