"""End-to-end conservation invariants of the full-system simulator."""

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.cpu.trace import TraceItem
from repro.dram.timing import ddr5_base
from repro.mc.request import MemRequest
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy
from repro.sim.system import System


def small_config(cores=4):
    dram = DRAMConfig(subchannels=2, banks_per_subchannel=4,
                      rows_per_bank=256,
                      timing=ddr5_base().scaled_refresh(1 / 256))
    return SystemConfig(dram=dram, cores=cores)


def mixed_trace(core, n=150):
    for i in range(n):
        yield TraceItem(10 + (i % 7), (core * 50_000 + i * 17) * 64,
                        is_write=(i % 4 == 0))


class _CompletionAudit:
    """Wrap a System to audit request completion behaviour."""

    def __init__(self, system: System):
        self.completions: dict[int, int] = {}
        for mc in system.controllers:
            original = mc.on_complete

            def audited(request: MemRequest, _orig=original):
                assert request.completion_ps is not None
                assert request.completion_ps >= request.arrival_ps
                assert request.request_id not in self.completions
                self.completions[request.request_id] = \
                    request.completion_ps
                _orig(request)

            mc.on_complete = audited


@pytest.fixture(params=["baseline", "prac"])
def run(request):
    config = small_config()
    if request.param == "baseline":
        factory = lambda i: BaselinePolicy(config.dram.timing)  # noqa: E731
    else:
        from repro.dram.timing import ddr5_prac
        timing = ddr5_prac().scaled_refresh(1 / 256)
        factory = lambda i: PRACMoatPolicy(  # noqa: E731
            500, 4, 256, 32, timing=timing)
    system = System(config, factory,
                    [mixed_trace(i) for i in range(config.cores)],
                    instruction_limit=10_000)
    audit = _CompletionAudit(system)
    result = system.run()
    return system, audit, result


class TestConservation:
    def test_every_request_completed_exactly_once(self, run):
        system, audit, result = run
        assert len(audit.completions) == result.total_requests

    def test_no_requests_stranded(self, run):
        system, audit, result = run
        for mc in system.controllers:
            assert mc.pending() == 0

    def test_bank_stats_consistent(self, run):
        system, audit, result = run
        for mc in system.controllers:
            for bank in mc.banks:
                assert bank.stats.activations >= bank.stats.precharges
                # at run end a bank is open iff ACTs exceed PREs
                diff = bank.stats.activations - bank.stats.precharges
                assert diff == (1 if bank.is_open else 0)

    def test_column_accesses_match_requests(self, run):
        system, audit, result = run
        columns = sum(b.stats.reads + b.stats.writes
                      for mc in system.controllers for b in mc.banks)
        assert columns == result.total_requests

    def test_hits_plus_activations_cover_requests(self, run):
        system, audit, result = run
        for stats in result.mc_stats:
            total = stats.row_hits + stats.row_misses + stats.row_conflicts
            assert total == stats.requests
            assert stats.activations == stats.row_misses + \
                stats.row_conflicts

    def test_all_cores_retired_budget(self, run):
        _, _, result = run
        for stats in result.core_stats:
            assert stats.instructions == 10_000
            assert stats.finish_ps > 0
