"""Multi-seed replication statistics."""

import pytest

from repro.sim.replication import Replication, replicate, \
    significantly_faster
from repro.sim.runner import DesignPoint

FAST = dict(instructions=12_000, rows_per_bank=512, refresh_scale=1 / 256)


class TestReplicationMath:
    def _repl(self, samples):
        point = DesignPoint(workload="mcf", design="prac")
        return Replication(point=point, samples=tuple(samples))

    def test_mean(self):
        assert self._repl([0.1, 0.2, 0.3]).mean == pytest.approx(0.2)

    def test_stdev(self):
        assert self._repl([0.1, 0.2, 0.3]).stdev == pytest.approx(0.1)

    def test_ci_shrinks_with_samples(self):
        narrow = self._repl([0.1, 0.2] * 5)
        wide = self._repl([0.1, 0.2])
        assert narrow.ci95 < wide.ci95

    def test_single_sample_infinite_ci(self):
        assert self._repl([0.1]).ci95 == float("inf")

    def test_overlap_symmetric(self):
        a = self._repl([0.10, 0.11, 0.12])
        b = self._repl([0.11, 0.12, 0.13])
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_intervals(self):
        a = self._repl([0.01, 0.011, 0.012])
        b = self._repl([0.30, 0.301, 0.302])
        assert not a.overlaps(b)

    def test_str_format(self):
        assert "±" in str(self._repl([0.1, 0.2]))


class TestReplicateRuns:
    def test_seeds_produce_samples(self):
        point = DesignPoint(workload="xalancbmk", design="mopac-c",
                            trh=500, **FAST)
        result = replicate(point, seeds=(1, 2, 3))
        assert result.n == 3
        assert len(set(result.samples)) >= 2  # seeds actually differ

    def test_empty_seeds_rejected(self):
        point = DesignPoint(workload="xalancbmk", design="prac", **FAST)
        with pytest.raises(ValueError):
            replicate(point, seeds=())

    def test_prac_significantly_slower_than_baselineish(self):
        prac = DesignPoint(workload="mcf", design="prac", trh=500,
                           instructions=20_000)
        mopac = DesignPoint(workload="mcf", design="mopac-d", trh=500,
                            instructions=20_000)
        assert significantly_faster(mopac, prac, seeds=(1, 2, 3))
