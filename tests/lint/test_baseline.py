"""Baseline and suppression machinery."""

import pathlib

import pytest

from repro.lint import Baseline, lint_source
from repro.lint.core import Finding
from repro.lint.suppress import covering, scan

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def finding(rule="determinism", path="a.py", line=3,
            snippet="x = time.time()"):
    return Finding(rule=rule, path=path, line=line, col=4,
                   message="m", snippet=snippet)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_survives_line_drift():
    assert finding(line=3).fingerprint == finding(line=40).fingerprint


def test_fingerprint_changes_with_rule_path_or_source():
    base = finding().fingerprint
    assert finding(rule="env-discipline").fingerprint != base
    assert finding(path="b.py").fingerprint != base
    assert finding(snippet="y = time.time()").fingerprint != base


# ----------------------------------------------------------------------
# Baseline round-trip and partition
# ----------------------------------------------------------------------
def test_round_trip(tmp_path):
    found = [finding(), finding(path="b.py")]
    path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(found).write(path)
    loaded = Baseline.load(path)
    fresh, grandfathered, stale = loaded.partition(found)
    assert fresh == []
    assert len(grandfathered) == 2
    assert stale == 0


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    fresh, grandfathered, stale = baseline.partition([finding()])
    assert len(fresh) == 1 and not grandfathered and stale == 0


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_multiset_matching_needs_one_entry_per_occurrence():
    # two identical violations, one baseline entry: one stays actionable
    baseline = Baseline.from_findings([finding()])
    fresh, grandfathered, stale = baseline.partition(
        [finding(line=3), finding(line=9)])
    assert len(fresh) == 1 and len(grandfathered) == 1 and stale == 0


def test_stale_entries_are_counted():
    baseline = Baseline.from_findings([finding(), finding(path="gone.py")])
    fresh, grandfathered, stale = baseline.partition([finding()])
    assert not fresh and len(grandfathered) == 1 and stale == 1


def test_rules_ledger():
    baseline = Baseline.from_findings(
        [finding(), finding(path="b.py"), finding(rule="env-discipline")])
    assert baseline.rules() == {"determinism": 2, "env-discipline": 1}


def test_repo_baseline_is_committed_and_empty():
    root = pathlib.Path(__file__).parents[2]
    baseline = Baseline.load(root / "lint-baseline.json")
    assert baseline.entries == [], (
        "lint-baseline.json must stay empty: fix violations, don't "
        "grandfather them")


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def test_scan_parses_both_separators():
    waivers, broken = scan([
        "x = 1  # repro: allow(determinism) — em-dash reason",
        "y = 2  # repro: allow(determinism) -- ascii reason",
        "z = 3  # repro: allow(determinism): colon reason",
    ])
    assert len(waivers) == 3 and not broken
    assert all(w.rules == {"determinism"} for w in waivers)


def test_waiver_covers_its_line_and_the_next_only():
    waivers, _ = scan(["# repro: allow(determinism) — why", "x", "y"])
    assert covering(waivers, "determinism", 1)
    assert covering(waivers, "determinism", 2)
    assert not covering(waivers, "determinism", 3)
    assert not covering(waivers, "env-discipline", 2)


def test_multi_rule_waiver():
    waivers, broken = scan(
        ["# repro: allow(determinism, env-discipline) — shared reason"])
    assert not broken
    assert waivers[0].rules == {"determinism", "env-discipline"}


def test_malformed_waivers_reported_not_honored():
    waivers, broken = scan([
        "x  # repro: allowed(determinism) — wrong verb",
        "y  # repro: allow(determinism)",
    ])
    assert not waivers
    assert [b.line for b in broken] == [1, 2]


def test_reasonless_waiver_is_a_hygiene_finding():
    run = lint_source("x = 1  # repro: allow(determinism)\n",
                      module="repro.sim.fixture")
    assert [f.rule for f in run.findings] == ["suppression-hygiene"]
