"""Every rule against its fixture corpus: fires on bad, quiet on good,
honors suppressions. See tests/lint/fixtures/README.md."""

import pathlib

import pytest

from repro.lint import get_rule, lint_paths
from repro.lint.core import RepoContext
from repro.lint.engine import module_for

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule id -> fixture directory (file-rule corpora).
FILE_RULES = {
    "determinism": "determinism",
    "rng-discipline": "rng_discipline",
    "env-discipline": "env_discipline",
    "async-blocking": "async_blocking",
    "stats-namespace": "stats_namespace",
    "suppression-hygiene": "suppression_hygiene",
}


def lint_fixture(path: pathlib.Path, rule_id: str):
    """Lint one fixture file with exactly one rule, no baseline."""
    return lint_paths([path], root=FIXTURES, rules=[get_rule(rule_id)],
                      repo_rules=False)


def fixture_files(rule_id: str, prefix: str) -> list[pathlib.Path]:
    files = sorted((FIXTURES / FILE_RULES[rule_id]).glob(f"{prefix}*.py"))
    assert files, f"no {prefix}* fixtures for {rule_id}"
    return files


@pytest.mark.parametrize("rule_id", sorted(FILE_RULES))
def test_fires_on_every_bad_fixture(rule_id):
    for path in fixture_files(rule_id, "bad"):
        run = lint_fixture(path, rule_id)
        assert run.findings, f"{rule_id} stayed quiet on {path.name}"
        assert all(f.rule == rule_id for f in run.findings)
        assert not run.errors


@pytest.mark.parametrize("rule_id", sorted(FILE_RULES))
def test_quiet_on_every_good_fixture(rule_id):
    for path in fixture_files(rule_id, "good"):
        run = lint_fixture(path, rule_id)
        assert not run.findings, (
            f"{rule_id} fired on {path.name}: "
            f"{[f.message for f in run.findings]}")
        assert not run.errors


@pytest.mark.parametrize("rule_id", sorted(set(FILE_RULES)
                                           - {"suppression-hygiene"}))
def test_suppression_swallows_the_violation(rule_id):
    for path in fixture_files(rule_id, "good_suppressed"):
        run = lint_fixture(path, rule_id)
        assert not run.findings
        assert run.suppressed, (
            f"{path.name} suppressed nothing — the waiver is dead "
            f"or the violation is gone")
        assert all(f.rule == rule_id for f in run.suppressed)


def test_findings_carry_fix_hints_and_positions():
    path = FIXTURES / "determinism" / "bad.py"
    run = lint_fixture(path, "determinism")
    for finding in run.findings:
        assert finding.fix_hint
        assert finding.line > 0
        assert finding.snippet.strip()
        assert finding.severity == "error"


def test_determinism_counts_every_bad_site():
    # time.time, perf_counter, datetime.now, os.urandom, hash()
    run = lint_fixture(FIXTURES / "determinism" / "bad.py", "determinism")
    assert len(run.findings) == 5


def test_scope_gates_the_rule():
    # the same blocking source outside repro.serve is not async-blocking's
    # business: scoped rules never fire on foreign modules
    bad = FIXTURES / "async_blocking" / "bad.py"
    source = bad.read_text().replace(
        "# repro-lint-module: repro.serve.fixture_bad",
        "# repro-lint-module: repro.tools.fixture_bad")
    from repro.lint import lint_source
    run = lint_source(source, module="repro.tools.fixture_bad")
    assert not [f for f in run.findings if f.rule == "async-blocking"]


def test_module_override_comment_wins_over_layout():
    bad = FIXTURES / "determinism" / "bad.py"
    module = module_for(bad, FIXTURES, bad.read_text())
    assert module == "repro.sim.fixture_bad"


# ----------------------------------------------------------------------
# registry-completeness: repo-level fixtures
# ----------------------------------------------------------------------
def completeness_findings(repo_name: str):
    rule = get_rule("registry-completeness")
    repo = RepoContext(root=FIXTURES / "registry_completeness" / repo_name)
    return rule.check_repo(repo)


def test_completeness_quiet_on_good_repo():
    assert completeness_findings("good_repo") == []


def test_completeness_fires_on_every_gap():
    messages = [f.message for f in completeness_findings("bad_repo")]
    assert len(messages) == 5
    assert any("'alpha' has no seed corpus" in m for m in messages)
    assert any("'beta' has no seed corpus" in m for m in messages)
    assert any("'beta' has no row" in m for m in messages)
    assert any("'beta' is not exercised" in m for m in messages)
    assert any("stale seed corpus: 'orphan'" in m for m in messages)


def test_completeness_skips_repos_without_a_registry(tmp_path):
    rule = get_rule("registry-completeness")
    assert rule.check_repo(RepoContext(root=tmp_path)) == []
