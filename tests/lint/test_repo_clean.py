"""The gate itself: the shipped tree holds every invariant.

This is ``make lint`` as a test — if it fails here it fails in CI, with
the offending file:line in the assertion message.
"""

import pathlib

from repro.lint import Baseline, lint_paths
from repro.lint.report import render_text

ROOT = pathlib.Path(__file__).parents[2]


def test_src_repro_lints_clean():
    baseline = Baseline.load(ROOT / "lint-baseline.json")
    run = lint_paths([ROOT / "src" / "repro"], root=ROOT,
                     baseline=baseline)
    assert run.clean, "\n" + render_text(run)
    assert run.stale_baseline == 0


def test_env_discipline_has_no_grandfathered_debt():
    baseline = Baseline.load(ROOT / "lint-baseline.json")
    assert baseline.rules()["env-discipline"] == 0, (
        "env-discipline landed with zero baseline entries; route new "
        "environment access through repro.exec.env instead")


def test_the_documented_clock_waivers_are_live():
    # the serve/exec clock helpers carry reasoned determinism waivers
    # (docs/static-analysis.md); they must keep covering real findings —
    # if this set changes, the waiver story in the docs changes with it
    run = lint_paths([ROOT / "src" / "repro"], root=ROOT)
    assert run.suppressed, "expected the documented serve/exec waivers"
    assert {f.rule for f in run.suppressed} == {"determinism"}
    covered_files = {f.path for f in run.suppressed}
    assert "src/repro/serve/server.py" in covered_files
    assert "src/repro/exec/engine.py" in covered_files
