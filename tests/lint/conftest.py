"""Keep pytest out of the fixture corpus.

Fixture files are *parsed* by the linter, never imported — some are
deliberately broken (global RNG, blocking calls, a fixture repo whose
``test_contract.py`` is not a real test module), so collection must
skip the whole tree.
"""

collect_ignore_glob = ["fixtures/*"]
