"""The linter's own completeness: every rule has a corpus and catalog
entry, and the fixture corpus stays inside the documented shape."""

import pathlib

from repro.lint import all_rules
from repro.lint.core import SEVERITIES

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def fixture_dir(rule_id: str) -> pathlib.Path:
    return FIXTURES / rule_id.replace("-", "_")


def test_every_registered_rule_has_a_fixture_corpus():
    for rule in all_rules():
        directory = fixture_dir(rule.id)
        assert directory.is_dir(), (
            f"rule {rule.id!r} has no fixture corpus under "
            f"tests/lint/fixtures/ — every rule ships proof it fires")
        bad = list(directory.glob("bad*"))
        good = list(directory.glob("good*"))
        assert bad, f"{rule.id}: no bad* fixture"
        assert good, f"{rule.id}: no good* fixture"


def test_every_rule_is_fully_described():
    for rule in all_rules():
        assert rule.id and rule.id == rule.id.lower()
        assert rule.severity in SEVERITIES
        assert rule.description, f"{rule.id}: empty description"
        assert rule.fix_hint, f"{rule.id}: a finding must say how to fix"


def test_rule_ids_are_unique_and_stable():
    ids = [rule.id for rule in all_rules()]
    assert len(ids) == len(set(ids))
    # the documented contract set (docs/static-analysis.md): removing or
    # renaming one is an interface change, update the docs and this list
    assert set(ids) == {
        "determinism", "rng-discipline", "env-discipline",
        "async-blocking", "stats-namespace", "registry-completeness",
        "suppression-hygiene",
    }


def test_no_stray_fixture_directories():
    known = {fixture_dir(rule.id).name for rule in all_rules()}
    on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
    assert on_disk <= known, f"orphan fixture dirs: {on_disk - known}"


def test_fixture_files_declare_their_module():
    for path in FIXTURES.rglob("*.py"):
        if "registry_completeness" in path.parts:
            continue  # fixture repos are addressed by path layout
        head = path.read_text().splitlines()[:5]
        assert any("repro-lint-module:" in line for line in head), (
            f"{path} does not opt into a lint scope")
