# repro-lint-module: repro.serve.fixture_good
"""Async code awaiting asyncio equivalents; sync helpers are exempt."""
import asyncio
import time


async def drain(journal):
    await asyncio.sleep(0.5)
    text = await asyncio.to_thread(journal.read_text)
    return text


def sync_helper(path):
    # judged at its call sites, not here
    time.sleep(0.01)
    with open(path) as handle:
        return handle.read()
