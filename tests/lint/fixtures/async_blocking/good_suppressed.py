# repro-lint-module: repro.serve.fixture_waived
"""A waived blocking call (e.g. startup-only IO before serving)."""


async def boot(config_path):
    # repro: allow(async-blocking) — one-shot startup read before serving
    with open(config_path) as handle:
        return handle.read()
