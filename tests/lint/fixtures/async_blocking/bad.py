# repro-lint-module: repro.serve.fixture_bad
"""Blocking calls inside coroutines: each one stalls the event loop."""
import pathlib
import subprocess
import time


async def drain(journal: pathlib.Path):
    time.sleep(0.5)
    text = journal.read_text()
    subprocess.run(["sync"])
    with open("state.json") as handle:
        return handle.read(), text
