# repro-lint-module: repro.mc.fixture_bad
"""Global-RNG use in every shape the rule knows."""
import random

import numpy as np


def jitter():
    return random.random()


def noise(n):
    return np.random.rand(n)


def fresh_generator():
    return random.Random()


def fresh_numpy():
    return np.random.default_rng()
