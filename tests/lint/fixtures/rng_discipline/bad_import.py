# repro-lint-module: repro.mc.fixture_bad_import
"""Importing module-level RNG functions is flagged at the import."""
from random import randint


def roll():
    return randint(1, 6)
