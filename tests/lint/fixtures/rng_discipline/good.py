# repro-lint-module: repro.mc.fixture_good
"""Seeded handles only — the shapes repro.rng hands out."""
import random

import numpy as np


def stream(seed):
    return random.Random(seed)


def numpy_stream(seed):
    return np.random.default_rng(seed)


def draw(rng):
    return rng.random()
