# repro-lint-module: repro.mc.fixture_waived
"""A waived global draw (e.g. a demo script's cosmetic shuffle)."""
import random


def cosmetic_pick(items):
    # repro: allow(rng-discipline) — demo-only cosmetic choice, no replay
    return random.choice(items)
