# repro-lint-module: repro.serve.fixture_good_stats
"""Names under declared namespaces, including f-string shapes."""


def wire(registry, board, cache, subchannel, prefix):
    registry.counter("serve.jobs_submitted")
    registry.gauge(f"mc.{subchannel}.row_hits")
    registry.histogram("serve.job_latency_ms", (1, 10, 100))
    registry.register("serve", lambda: {"up": 1})
    cache.register_stats(registry, prefix="exec.cache")
    board.register("serve.pool.points_per_s", lambda: 0.0)
    # dynamically-prefixed mount point: checked where the prefix is chosen
    registry.counter(f"{prefix}.latency_ps.count")
