# repro-lint-module: repro.serve.fixture_bad_stats
"""Metric names outside every declared namespace."""


def wire(registry, board, cache):
    registry.counter("bogus.requests")
    registry.gauge("queue.depth")
    registry.histogram("latency_ms", (1, 10, 100))
    registry.register("daemon", lambda: {"up": 1})
    cache.register_stats(registry, prefix="results.cache")
    board.register("jobs.per_s", lambda: 0.0)
