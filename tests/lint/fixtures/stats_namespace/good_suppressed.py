# repro-lint-module: repro.serve.fixture_waived_stats
"""A waived off-schema name (e.g. a scratch diagnostic counter)."""


def wire(registry):
    # repro: allow(stats-namespace) — scratch diagnostic, not exported
    registry.counter("debug.scratch_probe")
