DESIGNS = registry.names()
