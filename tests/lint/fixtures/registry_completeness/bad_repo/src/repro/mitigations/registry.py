# repro-lint-module: repro.mitigations.fixture_registry
register(MitigationSpec(name="alpha", factory=None))
register(MitigationSpec(name="beta", factory=None))
