DESIGNS = ["alpha"]
