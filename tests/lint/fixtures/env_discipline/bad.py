# repro-lint-module: repro.sim.fixture_bad_env
"""Every spelling of raw environment access."""
import os
from os import environ


def workers():
    return int(os.environ.get("REPRO_WORKERS", "4"))


def cache_dir():
    return os.getenv("REPRO_CACHE_DIR")


def force_serial():
    os.environ["REPRO_SERIAL"] = "1"


def aliased():
    return environ.get("REPRO_LOG")
