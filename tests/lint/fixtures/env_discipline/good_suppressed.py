# repro-lint-module: repro.sim.fixture_waived_env
"""A waived read (e.g. forwarding a whole environment to a child)."""
import os


def child_environment():
    # repro: allow(env-discipline) — forwards the whole env to a child
    return dict(os.environ)
