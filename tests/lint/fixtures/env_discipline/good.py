# repro-lint-module: repro.sim.fixture_good_env
"""Knobs go through the strict parsers."""
from repro.exec.env import env_flag, env_int, env_str, set_knob


def workers():
    return env_int("REPRO_WORKERS", 4, minimum=1)


def cache_dir():
    return env_str("REPRO_CACHE_DIR")


def force_serial():
    set_knob("REPRO_SERIAL", "1")


def full_suite():
    return env_flag("REPRO_FULL")
