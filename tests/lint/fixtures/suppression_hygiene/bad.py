# repro-lint-module: repro.sim.fixture_bad_waivers
"""Every way a waiver can be malformed."""

UNPARSEABLE = 1  # repro: allowed(determinism) — wrong verb

NO_RULES = 2  # repro: allow() — names nothing

NO_REASON = 3  # repro: allow(determinism)

UNKNOWN_RULE = 4  # repro: allow(determinsim) — typo'd rule id
