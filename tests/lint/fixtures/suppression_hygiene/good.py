# repro-lint-module: repro.sim.fixture_good_waivers
"""Well-formed waivers in both separator spellings."""
import time


def heartbeat():
    # repro: allow(determinism) — operator heartbeat, never in results
    return time.monotonic()


def heartbeat_ns():
    # repro: allow(determinism) -- ascii separator works too
    return time.monotonic_ns()
