# repro-lint-module: repro.sim.fixture_waived
"""A host-facing clock read carrying a reasoned waiver."""
import time


def progress_heartbeat():
    # repro: allow(determinism) — operator progress line, never in results
    return time.monotonic()
