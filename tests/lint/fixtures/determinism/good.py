# repro-lint-module: repro.sim.fixture_good
"""Deterministic code: time comes from the simulation, ids from content."""
import hashlib


def stamp_result(result, elapsed_ps):
    result["elapsed_ps"] = elapsed_ps
    return result


def bucket_of(point):
    blob = repr(sorted(point.items())).encode()
    return int(hashlib.sha256(blob).hexdigest(), 16) % 64
