# repro-lint-module: repro.sim.fixture_bad
"""Deterministic-scope module observing the host: every line fires."""
import datetime
import os
import time


def stamp_result(result):
    result["wall_s"] = time.time()
    result["t0"] = time.perf_counter()
    result["day"] = datetime.datetime.now()
    return result


def salt():
    return os.urandom(8)


def bucket_of(point):
    return hash(point) % 64
