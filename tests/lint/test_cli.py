"""``python -m repro.lint`` end to end: exit codes, formats, baseline."""

import json
import pathlib

from repro.lint.cli import main
from repro.lint.core import rule_ids

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
BAD = FIXTURES / "determinism" / "bad.py"
GOOD = FIXTURES / "determinism" / "good.py"


def run_cli(*argv):
    return main(list(argv))


def test_clean_run_exits_zero(capsys):
    assert run_cli(str(GOOD), "--root", str(FIXTURES),
                   "--no-repo-rules") == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_with_locations(capsys):
    assert run_cli(str(BAD), "--root", str(FIXTURES),
                   "--no-repo-rules", "--no-baseline") == 1
    out = capsys.readouterr().out
    assert "determinism/bad.py" in out
    assert "error[determinism]" in out
    assert "hint:" in out


def test_json_format(capsys):
    assert run_cli(str(BAD), "--root", str(FIXTURES),
                   "--no-repo-rules", "--format", "json") == 1
    document = json.loads(capsys.readouterr().out)
    assert document["clean"] is False
    rules = {f["rule"] for f in document["findings"]}
    assert rules == {"determinism"}
    assert all(f["fingerprint"] for f in document["findings"])


def test_rule_filter(capsys):
    # only env-discipline requested: the determinism fixture is clean
    assert run_cli(str(BAD), "--root", str(FIXTURES),
                   "--no-repo-rules", "--rules", "env-discipline") == 0
    capsys.readouterr()


def test_unknown_rule_rejected(capsys):
    import pytest
    with pytest.raises(SystemExit):
        run_cli(str(BAD), "--rules", "no-such-rule")
    capsys.readouterr()


def test_list_rules_prints_catalog(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_update_baseline_then_gate(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    # grandfather the current findings...
    assert run_cli(str(BAD), "--root", str(FIXTURES), "--no-repo-rules",
                   "--baseline", str(baseline),
                   "--update-baseline") == 0
    entries = json.loads(baseline.read_text())["entries"]
    assert entries and all(e["rule"] == "determinism" for e in entries)
    capsys.readouterr()
    # ...so the same run now gates clean, reporting them as baselined
    assert run_cli(str(BAD), "--root", str(FIXTURES), "--no-repo-rules",
                   "--baseline", str(baseline)) == 0
    assert "baselined" in capsys.readouterr().out
    # ...but --no-baseline still shows the debt
    assert run_cli(str(BAD), "--root", str(FIXTURES), "--no-repo-rules",
                   "--baseline", str(baseline), "--no-baseline") == 1
    capsys.readouterr()


def test_unparseable_input_fails_the_run(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert run_cli(str(broken), "--root", str(tmp_path),
                   "--no-repo-rules") == 1
    assert "cannot lint" in capsys.readouterr().out


def test_missing_path_rejected(capsys):
    import pytest
    with pytest.raises(SystemExit):
        run_cli("no/such/dir")
    capsys.readouterr()
