"""Command-line tools (repro.tools.*)."""

import pytest

from repro.cpu.trace import load_trace_file, trace_mpki
from repro.tools import hammer, tables, tracegen


class TestTablesCLI:
    def test_list(self, capsys):
        assert tables.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "tab07" in out and "fig09" in out

    def test_analytic_table(self, capsys):
        assert tables.main(["tab07"]) == 0
        out = capsys.readouterr().out
        assert "176" in out

    def test_every_analytic_name_renders(self):
        for name in tables.ANALYTIC_NAMES:
            if name == "fig14":
                continue  # Monte-Carlo; covered by its own test
            assert tables.render_table(name)

    def test_simulated_table(self, capsys):
        code = tables.main(["fig09", "--workloads", "xalancbmk",
                            "--instructions", "8000"])
        assert code == 0
        assert "mopac-c@500" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        assert tables.main(["tab99"]) == 2

    def test_no_args_lists(self, capsys):
        assert tables.main([]) == 0


class TestHammerCLI:
    def test_secure_design_returns_zero(self, capsys):
        code = hammer.main(["--design", "mopac-d", "--pattern",
                            "double-sided", "--acts", "60000"])
        assert code == 0
        assert "attack defeated" in capsys.readouterr().out

    def test_broken_design_returns_one(self, capsys):
        code = hammer.main(["--design", "baseline", "--pattern",
                            "single-sided", "--acts", "30000",
                            "--refresh-groups", "1024"])
        assert code == 1
        assert "ATTACK SUCCEEDED" in capsys.readouterr().out

    @pytest.mark.parametrize("design", hammer.DESIGNS)
    def test_every_design_constructs(self, design):
        hammer.build_policy(design, 500, 4, 256, 32, seed=1)

    @pytest.mark.parametrize("pattern", hammer.PATTERNS)
    def test_every_pattern_constructs(self, pattern):
        gen = hammer.build_pattern(pattern, banks=4, aggressors=8, seed=1)
        bank, row = next(gen)
        assert bank >= 0 and row >= 0


class TestTracegenCLI:
    def test_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "out.trace"
        code = tracegen.main(["mcf", "--accesses", "2000",
                              "-o", str(path)])
        assert code == 0
        items = load_trace_file(str(path))
        assert len(items) == 2000
        assert trace_mpki(items) == pytest.approx(28.8, rel=0.1)

    def test_list(self, capsys):
        assert tracegen.main(["--list"]) == 0
        assert "masstree" in capsys.readouterr().out

    def test_unknown_workload(self, tmp_path):
        assert tracegen.main(["doom"]) == 2
