"""System configuration (Tables 1 and 3)."""

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.dram.timing import ddr5_prac


class TestDRAMConfig:
    def test_paper_geometry(self):
        config = DRAMConfig.paper()
        assert config.subchannels == 2
        assert config.banks_per_subchannel == 32
        assert config.rows_per_bank == 65536
        assert config.row_bytes == 8192
        assert config.total_banks == 64

    def test_paper_capacity_is_32gb(self):
        assert DRAMConfig.paper().capacity_bytes == 32 * 1024 ** 3

    def test_lines_per_row(self):
        assert DRAMConfig.paper().lines_per_row == 128

    def test_reduced_scales_refresh(self):
        config = DRAMConfig.reduced(rows_per_bank=1024,
                                    refresh_scale=1 / 128)
        assert config.rows_per_bank == 1024
        assert config.timing.tREFW == \
            DRAMConfig.paper().timing.tREFW // 128

    def test_with_timing(self):
        config = DRAMConfig.paper().with_timing(ddr5_prac())
        assert config.timing.tRP == ddr5_prac().tRP

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DRAMConfig(rows_per_bank=0)

    def test_row_must_divide_into_lines(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=100, line_bytes=64)

    def test_mop_must_fit_row(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=128, line_bytes=64, mop_lines=4)


class TestSystemConfig:
    def test_table3_values(self):
        config = SystemConfig.paper()
        assert config.cores == 8
        assert config.core_ghz == 4.0
        assert config.issue_width == 4
        assert config.rob_entries == 256
        assert config.llc_bytes == 8 * 1024 * 1024
        assert config.llc_ways == 16

    def test_ps_per_instruction(self):
        # 4 GHz, 4-wide: 16 instructions per ns
        assert SystemConfig.paper().ps_per_instruction == 62.5

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)

    def test_bad_ghz(self):
        with pytest.raises(ValueError):
            SystemConfig(core_ghz=0)
